//! Edge-case integration tests: degenerate frames must produce sensible
//! analyses (or clean errors), never panics.

use dataprep_eda::prelude::*;
use eda_dataframe::Column;

#[test]
fn empty_frame_overview() {
    let df = DataFrame::empty();
    let cfg = Config::default();
    let a = plot(&df, &[], &cfg).unwrap();
    assert!(a.get("stats").is_some());
    let missing = plot_missing(&df, &[], &cfg).unwrap();
    assert!(missing.get("missing_bar_chart").is_some());
}

#[test]
fn zero_row_frame() {
    let df = DataFrame::new(vec![
        ("a".into(), Column::from_f64(vec![])),
        ("b".into(), Column::from_string(vec![])),
    ])
    .unwrap();
    let cfg = Config::default();
    let overview = plot(&df, &[], &cfg).unwrap();
    assert!(overview.get("stats").is_some());
    let uni = plot(&df, &["a"], &cfg).unwrap();
    assert!(uni.get("stats").is_some());
    let missing = plot_missing(&df, &["a"], &cfg).unwrap();
    assert_eq!(missing.intermediates.len(), 1);
    // Rendering degenerate analyses stays sound.
    let html = render_analysis_html(&uni, &cfg.display);
    assert!(html.contains("</html>"));
}

#[test]
fn single_row_frame() {
    let df = DataFrame::new(vec![
        ("a".into(), Column::from_f64(vec![42.0])),
        ("c".into(), Column::from_strs(&["only"])),
    ])
    .unwrap();
    let cfg = Config::default();
    for cols in [vec![], vec!["a"], vec!["c"]] {
        let a = plot(&df, &cols, &cfg).unwrap();
        assert!(!a.intermediates.is_empty(), "{cols:?}");
    }
    let a = plot(&df, &["a", "c"], &cfg).unwrap();
    assert!(!a.intermediates.is_empty());
}

#[test]
fn all_null_numeric_column() {
    let df = DataFrame::new(vec![
        ("x".into(), Column::from_opt_f64(vec![None; 20])),
        ("y".into(), Column::from_f64((0..20).map(|i| i as f64).collect())),
    ])
    .unwrap();
    let cfg = Config::default();
    let a = plot(&df, &["x"], &cfg).unwrap();
    let Some(Inter::StatsTable(rows)) = a.get("stats") else { panic!() };
    let missing = rows.iter().find(|r| r.label == "missing").unwrap();
    assert!(missing.value.contains("100.0%"));
    // Missing insight fires at 100%.
    assert!(a
        .insights
        .iter()
        .any(|i| i.kind == eda_core::InsightKind::Missing));
    // Bivariate with an all-null side produces (empty) charts, no panic.
    let b = plot(&df, &["x", "y"], &cfg).unwrap();
    assert!(!b.intermediates.is_empty());
    // Missing-impact: dropping x's nulls leaves zero rows.
    let m = plot_missing(&df, &["x", "y"], &cfg).unwrap();
    assert!(m.get("compare_histogram").is_some());
}

#[test]
fn all_nan_numeric_column() {
    // NaN values (not nulls): every statistic over them is undefined,
    // but plot, plot_correlation, and plot_missing must all stay sound.
    let df = DataFrame::new(vec![
        ("nan".into(), Column::from_f64(vec![f64::NAN; 25])),
        ("y".into(), Column::from_f64((0..25).map(|i| i as f64).collect())),
    ])
    .unwrap();
    let cfg = Config::default();
    let a = plot(&df, &["nan"], &cfg).unwrap();
    assert!(a.status.is_ok());
    assert!(a.get("stats").is_some());
    let b = plot(&df, &["nan", "y"], &cfg).unwrap();
    assert!(!b.intermediates.is_empty());
    let corr = plot_correlation(&df, &[], &cfg).unwrap();
    let Some(Inter::Correlation(m)) = corr.get("correlation_matrix:Pearson") else { panic!() };
    assert_eq!(m.get_by_name("nan", "y").unwrap(), None);
    let missing = plot_missing(&df, &["nan"], &cfg).unwrap();
    assert!(missing.get("compare_histogram:y").is_some());
}

#[test]
fn zero_row_frame_correlation_and_missing() {
    let df = DataFrame::new(vec![
        ("a".into(), Column::from_f64(vec![])),
        ("b".into(), Column::from_f64(vec![])),
    ])
    .unwrap();
    let cfg = Config::default();
    // Two numeric columns with zero rows: every coefficient undefined.
    let corr = plot_correlation(&df, &[], &cfg).unwrap();
    let Some(Inter::Correlation(m)) = corr.get("correlation_matrix:Pearson") else { panic!() };
    assert_eq!(m.get_by_name("a", "b").unwrap(), None);
    let missing = plot_missing(&df, &[], &cfg).unwrap();
    assert!(missing.get("missing_bar_chart").is_some());
    let html = render_analysis_html(&corr, &cfg.display);
    assert!(html.contains("</html>"));
}

#[test]
fn single_distinct_value_through_all_entry_points() {
    let df = DataFrame::new(vec![
        ("k".into(), Column::from_f64(vec![3.25; 40])),
        ("c".into(), Column::from_strs(&["only"; 40])),
        ("v".into(), Column::from_f64((0..40).map(|i| i as f64).collect())),
    ])
    .unwrap();
    let cfg = Config::default();
    // Univariate on a one-distinct-value column: histogram collapses to
    // a single bin without panicking.
    let a = plot(&df, &["k"], &cfg).unwrap();
    let Some(Inter::Histogram { counts, .. }) = a.get("histogram") else { panic!() };
    assert_eq!(counts.iter().sum::<u64>(), 40);
    // Bivariate constant-vs-varying and categorical-vs-numeric.
    assert!(!plot(&df, &["k", "v"], &cfg).unwrap().intermediates.is_empty());
    assert!(!plot(&df, &["c", "v"], &cfg).unwrap().intermediates.is_empty());
    // Correlation against a constant is undefined, not a crash.
    let corr = plot_correlation(&df, &[], &cfg).unwrap();
    let Some(Inter::Correlation(m)) = corr.get("correlation_matrix:Pearson") else { panic!() };
    assert_eq!(m.get_by_name("k", "v").unwrap(), None);
    // Missing analysis of a fully-populated constant column.
    let missing = plot_missing(&df, &["k"], &cfg).unwrap();
    assert!(missing.get("compare_histogram:v").is_some());
    // A full report over the degenerate frame stays healthy.
    let r = create_report(&df, &cfg).unwrap();
    assert!(r.failed_sections().is_empty());
}

#[test]
fn constant_columns() {
    let df = DataFrame::new(vec![
        ("k".into(), Column::from_f64(vec![7.5; 30])),
        ("c".into(), Column::from_strs(&["same"; 30])),
    ])
    .unwrap();
    let cfg = Config::default();
    let a = plot(&df, &["k"], &cfg).unwrap();
    assert!(a
        .insights
        .iter()
        .any(|i| i.kind == eda_core::InsightKind::Constant));
    let c = plot(&df, &["c"], &cfg).unwrap();
    assert!(c
        .insights
        .iter()
        .any(|i| i.kind == eda_core::InsightKind::Constant));
    // Correlation with a constant column: undefined cells, no panic.
    let df2 = df
        .with_column("v", Column::from_f64((0..30).map(|i| i as f64).collect()))
        .unwrap();
    let corr = plot_correlation(&df2, &[], &cfg).unwrap();
    let Some(Inter::Correlation(m)) = corr.get("correlation_matrix:Pearson") else {
        panic!()
    };
    assert_eq!(m.get_by_name("k", "v").unwrap(), None);
}

#[test]
fn infinite_values_flow_through() {
    let mut vals: Vec<Option<f64>> = (0..50).map(|i| Some(i as f64)).collect();
    vals[3] = Some(f64::INFINITY);
    vals[7] = Some(f64::NEG_INFINITY);
    let df = DataFrame::new(vec![("x".into(), Column::from_opt_f64(vals))]).unwrap();
    let cfg = Config::default();
    let a = plot(&df, &["x"], &cfg).unwrap();
    let Some(Inter::StatsTable(rows)) = a.get("stats") else { panic!() };
    let inf = rows.iter().find(|r| r.label == "infinite").unwrap();
    assert_eq!(inf.value, "2");
    assert!(a
        .insights
        .iter()
        .any(|i| i.kind == eda_core::InsightKind::Infinite));
    // Histogram ignores the infinities.
    let Some(Inter::Histogram { counts, .. }) = a.get("histogram") else { panic!() };
    assert_eq!(counts.iter().sum::<u64>(), 48);
}

#[test]
fn unicode_and_hostile_category_names() {
    let cats = ["北京", "emoji 🎉", "<script>alert(1)</script>", "quote\"quote", ""];
    let df = DataFrame::new(vec![(
        "c".into(),
        Column::from_string((0..50).map(|i| cats[i % cats.len()].to_string()).collect()),
    )])
    .unwrap();
    let cfg = Config::default();
    let a = plot(&df, &["c"], &cfg).unwrap();
    let html = render_analysis_html(&a, &cfg.display);
    // Script tags must be escaped in the output.
    assert!(!html.contains("<script>alert"));
    assert!(html.contains("&lt;script&gt;"));
    // JSON export stays balanced.
    let json = a.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn single_column_frame_correlation_errors_cleanly() {
    let df = DataFrame::new(vec![(
        "only".into(),
        Column::from_f64((0..10).map(|i| i as f64).collect()),
    )])
    .unwrap();
    let cfg = Config::default();
    assert!(plot_correlation(&df, &[], &cfg).is_err());
    assert!(plot_correlation(&df, &["only"], &cfg).is_err());
}

#[test]
fn report_on_degenerate_frames() {
    let cfg = Config::default();
    // All-categorical frame: no correlation section.
    let df = DataFrame::new(vec![(
        "c".into(),
        Column::from_string((0..40).map(|i| format!("v{}", i % 3)).collect()),
    )])
    .unwrap();
    let r = create_report(&df, &cfg).unwrap();
    assert!(r.correlations.is_empty());
    assert_eq!(r.variables.len(), 1);
    let html = render_report_html(&r, &cfg.display);
    assert!(html.contains("</html>"));
}
