//! End-to-end integration: CSV → frame → analyses → rendered HTML, plus
//! the full report pipeline on generated datasets.

use dataprep_eda::prelude::*;
use eda_dataframe::csv::{read_csv_str, CsvOptions};
use eda_datagen::{generate, kaggle_spec_by_name};

const CSV: &str = "\
price,size,year_built,city
310000,120,1998,Burnaby
450000,180,2005,Vancouver
250000,95,1976,Surrey
420000,160,2011,Vancouver
385000,140,2001,Burnaby
,110,1990,Surrey
405000,150,,Vancouver
298000,99,1988,Surrey
512000,205,2016,Vancouver
343000,130,1999,Burnaby
372000,135,2003,Surrey
455000,170,2014,Vancouver
267000,92,1981,Surrey
399000,149,2009,Burnaby
";

#[test]
fn csv_to_rendered_analysis() {
    let df = read_csv_str(CSV, &CsvOptions::default()).unwrap();
    assert_eq!(df.nrows(), 14);
    let cfg = Config::default();
    let analysis = plot(&df, &["price"], &cfg).unwrap();
    let html = render_analysis_html(&analysis, &cfg.display);
    assert!(html.contains("<svg"));
    assert!(html.contains("Histogram"));
    // Stats computed from the CSV: 9 non-null prices.
    let Some(Inter::StatsTable(rows)) = analysis.get("stats") else { panic!() };
    let count = rows.iter().find(|r| r.label == "count").unwrap();
    assert_eq!(count.value, "14");
    let missing = rows.iter().find(|r| r.label == "missing").unwrap();
    assert!(missing.value.starts_with("1 "));
}

#[test]
fn report_on_table2_dataset_renders() {
    let spec = kaggle_spec_by_name("titanic").unwrap();
    let df = generate(&spec, 42);
    let cfg = Config::default();
    let report = create_report(&df, &cfg).unwrap();
    assert_eq!(report.variables.len(), 12);
    assert_eq!(report.correlations.len(), 3);
    let html = render_report_html(&report, &cfg.display);
    assert!(html.len() > 10_000);
    for col in df.names() {
        assert!(html.contains(col.as_str()), "report misses column {col}");
    }
}

#[test]
fn analyses_are_deterministic() {
    let df = generate(&kaggle_spec_by_name("heart").unwrap(), 1);
    let cfg = Config::default();
    let a = plot(&df, &["num0"], &cfg).unwrap();
    let b = plot(&df, &["num0"], &cfg).unwrap();
    assert_eq!(a.intermediates, b.intermediates);
}

#[test]
fn dataprep_matches_baseline_statistics() {
    // The two tools must agree on the numbers, differing only in how they
    // compute them.
    let df = generate(&kaggle_spec_by_name("women").unwrap(), 5);
    let cfg = Config::default();
    let report = create_report(&df, &cfg).unwrap();
    let baseline = dataprep_eda::baseline::profile(&df);

    // Row/missing counts agree.
    assert_eq!(baseline.overview.rows, df.nrows());
    let dp_missing: usize = df.names().len();
    assert!(dp_missing > 0);

    // Pearson matrices agree cell by cell.
    let dp_pearson = &report.correlations[0];
    let pp_pearson = &baseline.correlations.pearson;
    assert_eq!(dp_pearson.labels, pp_pearson.labels);
    for i in 0..dp_pearson.size() {
        for j in 0..dp_pearson.size() {
            match (dp_pearson.get(i, j), pp_pearson.get(i, j)) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}"),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    // Per-variable means agree.
    for (section, profile) in report.variables.iter().zip(&baseline.variables) {
        assert_eq!(section.name, profile.name);
        if let Some(num) = &profile.numeric {
            let Some(Inter::StatsTable(rows)) = section.intermediates.get("stats") else {
                panic!()
            };
            let mean_row = rows.iter().find(|r| r.label == "mean").unwrap();
            // Parse the formatted mean back and compare loosely.
            let dp_mean: f64 = mean_row.value.parse().unwrap_or(f64::NAN);
            if dp_mean.is_finite() && num.mean.abs() > 1e-6 {
                assert!(
                    ((dp_mean - num.mean) / num.mean).abs() < 0.01,
                    "{}: {dp_mean} vs {}",
                    section.name,
                    num.mean
                );
            }
        }
    }
}

#[test]
fn report_is_faster_than_baseline_on_numeric_data() {
    // The Table 2 headline, asserted end-to-end at small scale (release
    // vs debug timing noise makes this a generous 1.0x bound: DataPrep
    // must at least not lose).
    let spec = kaggle_spec_by_name("credit").unwrap().scaled(0.2);
    let df = generate(&spec, 3);
    let cfg = Config::default();
    let t0 = std::time::Instant::now();
    let _ = dataprep_eda::baseline::profile(&df);
    let pp = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = create_report(&df, &cfg).unwrap();
    let dp = t1.elapsed();
    assert!(
        dp.as_secs_f64() < pp.as_secs_f64() * 1.5,
        "dataprep {dp:?} vs baseline {pp:?}"
    );
}

#[test]
fn config_snippets_flow_from_howto_to_result() {
    // The Figure 1 customization loop: guide → config pair → new result.
    let df = read_csv_str(CSV, &CsvOptions::default()).unwrap();
    let base = Config::default();
    let analysis = plot(&df, &["price"], &base).unwrap();
    let guide = analysis.howto("histogram");
    let bins_entry = guide
        .entries
        .iter()
        .find(|e| e.spec.key == "hist.bins")
        .expect("hist.bins in guide");
    assert_eq!(bins_entry.spec.default, "50");

    let custom = Config::from_pairs(vec![("hist.bins", "5")]).unwrap();
    let redone = plot(&df, &["price"], &custom).unwrap();
    let Some(Inter::Histogram { counts, .. }) = redone.get("histogram") else {
        panic!()
    };
    assert_eq!(counts.len(), 5);
}
