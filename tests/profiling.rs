//! Profiling acceptance tests: `plot(df)` with `engine.profile = true`
//! on the bitcoin-shaped dataset yields a Performance tab (one Gantt row
//! per worker, a top-K slowest table) and a Chrome-trace export whose
//! complete-span count equals the executed-task count.

use eda_core::{create_report, plot, Config};
use eda_datagen::bitcoin::bitcoin_spec;
use eda_datagen::generate;
use eda_render::layout::{render_analysis_html, render_report_html};

fn bitcoin_df() -> eda_dataframe::DataFrame {
    generate(&bitcoin_spec(20_000), 42)
}

#[test]
fn profiled_plot_produces_performance_tab_and_chrome_trace() {
    let df = bitcoin_df();
    let cfg = Config::from_pairs(vec![("engine.profile", "true")]).unwrap();
    let analysis = plot(&df, &[], &cfg).expect("overview analysis");
    let stats = analysis.stats.as_ref().expect("stats recorded");
    let trace = stats.trace.as_ref().expect("profiled run carries a trace");

    // --- HTML surface ---------------------------------------------------
    let html = render_analysis_html(&analysis, &cfg.display);
    assert!(html.contains("Performance"), "missing Performance tab");
    assert!(html.contains("Worker timeline"), "missing Gantt chart");
    assert!(html.contains("Slowest tasks"), "missing top-K table");
    // ≥ 1 Gantt row (lane label) per worker.
    for w in 0..stats.workers {
        assert!(html.contains(&format!(">w{w}<")), "missing Gantt lane w{w}");
    }

    // --- Chrome trace ---------------------------------------------------
    let json = trace.to_chrome_trace();
    assert!(!json.is_empty());
    let executed = stats.tasks_run + stats.tasks_failed + stats.tasks_timed_out;
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        executed,
        "complete-event count must equal executed task count"
    );
    // Skipped tasks appear as instants, never as complete events.
    assert_eq!(json.matches("\"ph\":\"i\"").count(), stats.tasks_skipped);
}

#[test]
fn profiled_report_exports_consistent_trace() {
    let df = bitcoin_df();
    let cfg = Config::from_pairs(vec![("engine.profile", "true")]).unwrap();
    let report = create_report(&df, &cfg).expect("report");
    let trace = report.stats.trace.as_ref().expect("trace attached");

    assert_eq!(trace.spans.len(), report.stats.live_nodes, "one span per live node");
    let html = render_report_html(&report, &cfg.display);
    assert!(html.contains("<h2>Performance</h2>"));
    assert!(html.contains("critical path"));

    let executed =
        report.stats.tasks_run + report.stats.tasks_failed + report.stats.tasks_timed_out;
    assert_eq!(trace.to_chrome_trace().matches("\"ph\":\"X\"").count(), executed);
}

#[test]
fn profile_off_keeps_reports_trace_free() {
    let df = bitcoin_df();
    let cfg = Config::default();
    let report = create_report(&df, &cfg).expect("report");
    assert!(report.stats.trace.is_none(), "untraced run must not allocate spans");
    let html = render_report_html(&report, &cfg.display);
    assert!(!html.contains("<h2>Performance</h2>"));
}
