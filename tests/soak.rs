//! Fault-injection soak: many `create_report` runs under a rotating mix
//! of injected faults (transient panics, wedged kernels, hard panics)
//! and memory budgets, asserting the engine never aborts, never
//! deadlocks, and every degraded section carries diagnostics.
//!
//! `soak_quick` (always on) does 100 runs in a few seconds. `soak_long`
//! (`--ignored`; the CI fault-soak job runs it) loops for ~30 wall-clock
//! seconds and writes a JSON summary to the path in `EDA_SOAK_SUMMARY`.

use std::time::{Duration, Instant};

use eda_core::{create_report, Config, InsightKind, SectionStatus};
use eda_dataframe::{Column, DataFrame};
use eda_taskgraph::{inject, FaultInjector};

fn frame() -> DataFrame {
    let n = 1_200;
    DataFrame::new(vec![
        (
            "price".into(),
            Column::from_opt_f64(
                (0..n)
                    .map(|i| if i % 24 == 0 { None } else { Some(50.0 + ((i * 31) % 900) as f64) })
                    .collect(),
            ),
        ),
        ("size".into(), Column::from_f64((0..n).map(|i| 10.0 + ((i * 7) % 120) as f64).collect())),
        ("city".into(), Column::from_string((0..n).map(|i| format!("c{}", i % 5)).collect())),
    ])
    .unwrap()
}

#[derive(Default)]
struct SoakTally {
    runs: usize,
    failed_sections: usize,
    tasks_retried: usize,
    tasks_cancelled: usize,
    tasks_budget_exceeded: usize,
    approximated: usize,
}

/// One soak iteration: pick a fault and a budget from the iteration
/// index, run a full report, and assert the invariants that must hold
/// under *any* mix — `Ok` result, diagnostics on every degraded section.
fn soak_iteration(df: &DataFrame, i: usize, tally: &mut SoakTally) {
    let fault = i % 4;
    // Wedged kernels only terminate via the run deadline; everything
    // else runs un-deadlined so degradation is attributable to the fault.
    let deadline = if fault == 3 { "80" } else { "0" };
    let workers = if i.is_multiple_of(2) { "1" } else { "4" };
    let budget = match i % 3 {
        0 => "0",                 // off
        1 => &(64 << 20).to_string(), // roomy: 64 MiB
        _ => "32000",             // tiny: guaranteed pressure on 1200 rows
    };
    let config = Config::from_pairs(vec![
        ("engine.cache_budget_bytes", "0"),
        ("engine.workers", workers),
        ("engine.task_retries", "2"),
        ("engine.run_deadline_ms", deadline),
        ("engine.memory_budget_bytes", budget),
    ])
    .unwrap();

    let _guard = match fault {
        1 => Some(inject::arm(FaultInjector::transient_on("moments:price", 1))),
        2 => Some(inject::arm(FaultInjector::panic_on("freq:city"))),
        3 => Some(inject::arm(FaultInjector::wedge_on("moments:price", Duration::from_secs(5)))),
        _ => None,
    };

    let report = create_report(df, &config)
        .unwrap_or_else(|e| panic!("soak run {i} aborted instead of degrading: {e}"));

    for (name, status) in report.failed_sections() {
        match status {
            SectionStatus::Failed { error, root_task, .. } => {
                assert!(!error.is_empty(), "run {i}: section {name} lost its diagnostics");
                assert!(!root_task.is_empty(), "run {i}: section {name} lost its root cause");
            }
            SectionStatus::Ok => unreachable!(),
        }
        tally.failed_sections += 1;
    }
    // A transient fault under a retry budget must heal completely.
    if fault == 1 {
        let price = report.variables.iter().find(|v| v.name == "price").unwrap();
        assert!(price.status.is_ok(), "run {i}: retry did not heal the transient fault");
    }

    tally.runs += 1;
    tally.tasks_retried += report.stats.tasks_retried;
    tally.tasks_cancelled += report.stats.tasks_cancelled;
    tally.tasks_budget_exceeded += report.stats.tasks_budget_exceeded;
    tally.approximated +=
        usize::from(report.insights.iter().any(|n| n.kind == InsightKind::Approximated));
}

/// The cross-run expectations: the mix must have exercised every
/// governance mechanism at least once.
fn assert_mechanisms_fired(tally: &SoakTally) {
    assert!(tally.tasks_retried >= 1, "no transient fault ever retried");
    assert!(tally.tasks_cancelled >= 1, "no wedged run was ever deadline-cancelled");
    assert!(
        tally.tasks_budget_exceeded >= 1 || tally.approximated >= 1,
        "no run ever hit the memory budget"
    );
    assert!(tally.failed_sections >= 1, "faults never degraded anything");
}

#[test]
fn soak_quick() {
    let df = frame();
    let mut tally = SoakTally::default();
    for i in 0..100 {
        soak_iteration(&df, i, &mut tally);
    }
    assert_eq!(tally.runs, 100);
    assert_mechanisms_fired(&tally);
}

/// The CI soak job: loop the same mix for ~30 seconds and leave a
/// machine-readable summary behind. Reaching the end at all is the
/// no-abort/no-deadlock claim; the summary quantifies the coverage.
#[test]
#[ignore = "30s wall-clock; run by the CI fault-soak job"]
fn soak_long() {
    let df = frame();
    let mut tally = SoakTally::default();
    let started = Instant::now();
    let mut i = 0;
    while started.elapsed() < Duration::from_secs(30) {
        soak_iteration(&df, i, &mut tally);
        i += 1;
    }
    assert_mechanisms_fired(&tally);

    if let Ok(path) = std::env::var("EDA_SOAK_SUMMARY") {
        let summary = format!(
            concat!(
                "{{\"runs\": {}, \"elapsed_s\": {:.1}, \"aborts\": 0, ",
                "\"failed_sections\": {}, \"tasks_retried\": {}, ",
                "\"tasks_cancelled\": {}, \"tasks_budget_exceeded\": {}, ",
                "\"approximated_reports\": {}}}\n"
            ),
            tally.runs,
            started.elapsed().as_secs_f64(),
            tally.failed_sections,
            tally.tasks_retried,
            tally.tasks_cancelled,
            tally.tasks_budget_exceeded,
            tally.approximated,
        );
        std::fs::write(&path, summary).expect("write soak summary");
    }
}
