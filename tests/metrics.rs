//! Telemetry integration tests through the public API.
//!
//! The acceptance bar of the metrics layer: `engine.metrics` off (the
//! default) leaves output bit-identical to a config that never mentions
//! it; on, every run folds into the process-lifetime registry, attaches
//! a snapshot to its stats, surfaces a "Process lifetime" row group in
//! the Performance tab, and exports through the public
//! [`eda_core::metrics_snapshot`] in both Prometheus and JSON forms.
//!
//! The registry is process-global and tests share one process, so
//! metered-run assertions check *deltas* between consecutive snapshots,
//! never absolute values.

use std::time::Duration;

use eda_core::{create_report, metrics_snapshot, plot, Config};
use eda_dataframe::{Column, DataFrame};
use eda_render::layout::{render_analysis_html, render_report_html};

fn frame(n: usize) -> DataFrame {
    DataFrame::new(vec![
        (
            "price".into(),
            Column::from_opt_f64(
                (0..n)
                    .map(|i| if i % 24 == 0 { None } else { Some(50.0 + ((i * 31) % 900) as f64) })
                    .collect(),
            ),
        ),
        ("size".into(), Column::from_f64((0..n).map(|i| 10.0 + ((i * 7) % 120) as f64).collect())),
        ("city".into(), Column::from_string((0..n).map(|i| format!("c{}", i % 5)).collect())),
    ])
    .unwrap()
}

/// Session cache off so runs are deterministic regardless of what other
/// tests warmed, mirroring the governance golden test.
fn cfg(pairs: &[(&str, &str)]) -> Config {
    let mut all = vec![("engine.cache_budget_bytes", "0")];
    all.extend_from_slice(pairs);
    Config::from_pairs(all).unwrap()
}

// ---------------------------------------------------------------- golden

/// `engine.metrics = false` (the default) must be invisible: same stats,
/// same bytes of HTML as a config that never mentions the knob — even
/// when other tests in this process have already latched the registry on.
#[test]
fn metrics_off_is_bit_identical_to_unset() {
    let df = frame(300);
    let baseline = cfg(&[]);
    let explicit = cfg(&[("engine.metrics", "false")]);

    let mut a = create_report(&df, &baseline).unwrap();
    let mut b = create_report(&df, &explicit).unwrap();
    assert!(a.stats.fully_succeeded(), "{:?}", a.stats);
    assert!(a.stats.metrics.is_none(), "unmetered run must not carry a snapshot");
    assert!(b.stats.metrics.is_none());

    a.stats.elapsed = Duration::ZERO;
    b.stats.elapsed = Duration::ZERO;
    assert_eq!(a.stats, b.stats);

    let html_a = render_report_html(&a, &baseline.display);
    let html_b = render_report_html(&b, &explicit.display);
    assert_eq!(html_a, html_b, "explicit-default metrics knob changed the rendered bytes");
    assert!(!html_a.contains("Process lifetime"));
}

// ------------------------------------------------------------- recording

/// Metered runs attach a snapshot and the registry's lifetime counters
/// grow monotonically run over run.
#[test]
fn metered_runs_attach_monotone_snapshots() {
    let df = frame(400);
    let metered = cfg(&[("engine.metrics", "true")]);

    let first = plot(&df, &[], &metered).unwrap();
    let snap1 = first.stats.as_ref().unwrap().metrics.clone().expect("snapshot attached");
    let second = plot(&df, &["price"], &metered).unwrap();
    let snap2 = second.stats.as_ref().unwrap().metrics.clone().expect("snapshot attached");

    let runs1 = snap1.counter("eda_runs_total").unwrap();
    let runs2 = snap2.counter("eda_runs_total").unwrap();
    assert!(runs2 > runs1, "runs_total stalled: {runs1} -> {runs2}");
    let tasks1 = snap1.counter("eda_tasks_run_total").unwrap();
    let tasks2 = snap2.counter("eda_tasks_run_total").unwrap();
    assert!(
        tasks2 >= tasks1 + second.stats.as_ref().unwrap().tasks_run as u64,
        "tasks_run_total under-counted: {tasks1} -> {tasks2}"
    );
    // The second run's own tasks landed in the duration histogram.
    let h1 = snap1.histogram("eda_task_duration_us").unwrap();
    let h2 = snap2.histogram("eda_task_duration_us").unwrap();
    assert!(h2.count > h1.count);

    // The public snapshot is at least as far along as the run-attached
    // one and exports through both formats.
    let now = metrics_snapshot();
    assert!(now.counter("eda_runs_total").unwrap() >= runs2);
    let prom = now.to_prometheus();
    assert!(prom.contains("# TYPE eda_runs_total counter"), "{prom}");
    assert!(prom.contains("# TYPE eda_task_duration_us histogram"));
    let json = now.to_json();
    assert!(json.contains("\"eda_runs_total\":"), "{json}");
}

/// Kernel morsel telemetry flows through the `eda-stats` sink into the
/// registry once a metered run has connected it. The "size" column is
/// null-free, so its moments sketch takes the contiguous-slice path —
/// one of the instrumented morsel boundaries.
#[test]
fn metered_runs_record_kernel_morsels() {
    let df = frame(2_000);
    let metered = cfg(&[("engine.metrics", "true")]);
    let before = metrics_snapshot().counter("eda_morsel_rows_total").unwrap();
    plot(&df, &["size"], &metered).unwrap();
    let after = metrics_snapshot().counter("eda_morsel_rows_total").unwrap();
    assert!(after > before, "no morsel rows recorded: {before} -> {after}");
}

// -------------------------------------------------------------- rendering

/// Profile + metrics adds the lifetime row group to the Performance tab;
/// profile alone renders the tab without it.
#[test]
fn performance_tab_gains_lifetime_rows_only_when_metered() {
    let df = frame(300);

    let profiled = cfg(&[("engine.profile", "true")]);
    let plain = plot(&df, &[], &profiled).unwrap();
    let html = render_analysis_html(&plain, &profiled.display);
    assert!(html.contains("Run metrics"), "profiled run renders the Performance tab");
    assert!(!html.contains("Process lifetime"), "unmetered run must not show lifetime rows");

    let both = cfg(&[("engine.profile", "true"), ("engine.metrics", "true")]);
    let metered = plot(&df, &[], &both).unwrap();
    let html = render_analysis_html(&metered, &both.display);
    assert!(html.contains("Process lifetime"), "metered+profiled run shows lifetime rows");
    assert!(html.contains("runs recorded"));
    assert!(html.contains("tasks run / pruned"));
}
