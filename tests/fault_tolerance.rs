//! Fault-tolerance integration tests through the public API.
//!
//! The acceptance bar: a `create_report` run where one column's kernels
//! are rigged to fail still completes, renders every other section,
//! reports the failure in the diagnostics panel, and counts the failure
//! in `ExecStats` — on both the single-thread and the pool scheduler.

use eda_core::{create_report, plot, Config, SectionStatus};
use eda_dataframe::{Column, DataFrame};
use eda_render::layout::render_report_html;
use eda_taskgraph::{inject, FaultInjector, FaultMode, FaultPlan, FaultTarget};

fn frame() -> DataFrame {
    let n = 240;
    DataFrame::new(vec![
        (
            "price".into(),
            Column::from_opt_f64(
                (0..n)
                    .map(|i| if i % 24 == 0 { None } else { Some(50.0 + ((i * 31) % 900) as f64) })
                    .collect(),
            ),
        ),
        ("size".into(), Column::from_f64((0..n).map(|i| 10.0 + ((i * 7) % 120) as f64).collect())),
        ("city".into(), Column::from_string((0..n).map(|i| format!("c{}", i % 5)).collect())),
    ])
    .unwrap()
}

fn config_with_workers(workers: usize) -> Config {
    Config::from_pairs(vec![("engine.workers", &workers.to_string() as &str)]).unwrap()
}

/// The acceptance-criteria run, parameterized over the scheduler.
fn poisoned_column_still_yields_partial_report(workers: usize) {
    let df = frame();
    let cfg = config_with_workers(workers);
    let _guard = inject::arm(FaultInjector::panic_on("freq:city"));

    let report = create_report(&df, &cfg).expect("degraded, not failed");

    // The failure is counted and attributed.
    assert!(report.stats.tasks_failed >= 1, "{:?}", report.stats);
    assert!(!report.stats.fully_succeeded());

    // The poisoned column's section is degraded with a root cause…
    let city = report.variables.iter().find(|v| v.name == "city").unwrap();
    match &city.status {
        SectionStatus::Failed { root_task, error, .. } => {
            assert!(root_task.contains("freq:city"), "{root_task}");
            assert!(error.contains("panicked"), "{error}");
        }
        SectionStatus::Ok => panic!("city section should have degraded"),
    }

    // …while every other column's section is fully computed.
    for name in ["price", "size"] {
        let var = report.variables.iter().find(|v| v.name == name).unwrap();
        assert!(var.status.is_ok(), "{name} should be healthy");
        assert!(var.intermediates.iter().count() > 0, "{name} lost its charts");
    }
    assert!(report.correlations_status.is_ok());
    assert_eq!(report.correlations.len(), 3);
    assert!(report.missing_status.is_ok());

    // The rendered page carries the diagnostics panel plus live charts.
    let html = render_report_html(&report, &cfg.display);
    assert!(html.contains("eda-error"));
    assert!(html.contains("section unavailable"));
    assert!(html.contains("freq:city"));
    assert!(html.matches("<svg").count() > 5, "healthy sections must still render");
}

#[test]
fn poisoned_column_partial_report_single_thread() {
    poisoned_column_still_yields_partial_report(1);
}

#[test]
fn poisoned_column_partial_report_pool() {
    poisoned_column_still_yields_partial_report(4);
}

#[test]
fn plot_degrades_instead_of_erroring() {
    let df = frame();
    let cfg = Config::default();
    let _guard = inject::arm(FaultInjector::panic_on("moments:price"));
    let a = plot(&df, &["price"], &cfg).expect("degraded analysis, not Err");
    match &a.status {
        SectionStatus::Failed { root_task, .. } => {
            assert!(root_task.contains("moments:price"), "{root_task}")
        }
        SectionStatus::Ok => panic!("analysis should have degraded"),
    }
    assert!(a.intermediates.iter().count() == 0);
    // Untouched columns are unaffected by the armed injector's target.
    let b = plot(&df, &["city"], &cfg).unwrap();
    assert!(b.status.is_ok());
}

#[test]
fn stalled_task_times_out_under_deadline() {
    let df = frame();
    let cfg = Config::from_pairs(vec![("engine.task_deadline_ms", "40")]).unwrap();
    let _guard = inject::arm(FaultInjector::stall_on(
        "sorted_values:price",
        std::time::Duration::from_millis(120),
    ));
    let report = create_report(&df, &cfg).expect("timeout degrades, not fails");
    assert!(report.stats.tasks_timed_out >= 1, "{:?}", report.stats);
    let price = report.variables.iter().find(|v| v.name == "price").unwrap();
    match &price.status {
        SectionStatus::Failed { error, .. } => assert!(error.contains("deadline"), "{error}"),
        SectionStatus::Ok => panic!("price should have timed out"),
    }
    let city = report.variables.iter().find(|v| v.name == "city").unwrap();
    assert!(city.status.is_ok());
}

#[test]
fn garbage_payload_fails_the_consumer_not_the_run() {
    // Enough rows for several partitions, so the per-partition histogram
    // map tasks feed a real tree-reduce task: that consumer — not the
    // whole run — is what chokes on the garbage payload.
    let n = 20_000;
    let df = DataFrame::new(vec![
        ("price".into(), Column::from_f64((0..n).map(|i| 50.0 + ((i * 31) % 900) as f64).collect())),
        ("city".into(), Column::from_string((0..n).map(|i| format!("c{}", i % 5)).collect())),
    ])
    .unwrap();
    let cfg = Config::default();
    let _guard = inject::arm(FaultInjector::new(vec![FaultPlan {
        target: FaultTarget::NameContains("histogram:price".into()),
        mode: FaultMode::Garbage,
    }]));
    let report = create_report(&df, &cfg).expect("garbage degrades, not fails");
    assert!(report.stats.tasks_failed >= 1, "{:?}", report.stats);
    // The histogram reduce consumed the garbage: price degrades…
    let price = report.variables.iter().find(|v| v.name == "price").unwrap();
    assert!(!price.status.is_ok());
    // …but sections that never touch the histogram survive.
    assert!(report.missing_status.is_ok());
    let city = report.variables.iter().find(|v| v.name == "city").unwrap();
    assert!(city.status.is_ok());
}

#[test]
fn injected_stall_dominates_the_profile() {
    // Tracing × fault-injection interop: a stalled kernel must surface
    // as the longest span and be named in the top-K slowest table.
    let df = frame();
    let cfg = Config::from_pairs(vec![("engine.profile", "true")]).unwrap();
    let stall = std::time::Duration::from_millis(60);
    let _guard = inject::arm(FaultInjector::stall_on("moments:price", stall));

    let report = create_report(&df, &cfg).expect("stall without deadline still completes");
    let trace = report.stats.trace.as_ref().expect("profiled run carries a trace");

    let top = trace.top_k(5);
    assert!(!top.is_empty());
    assert!(top[0].name.contains("moments:price"), "stalled task should rank first: {top:?}");
    assert!(top[0].duration() >= stall, "span {:?} shorter than the stall", top[0].duration());

    // The rendered top-K table names the stalled task first.
    let html = render_report_html(&report, &cfg.display);
    let perf = html.find("<h2>Performance</h2>").expect("performance section");
    let slow = html[perf..].find("moments:price").expect("stalled task in top-K table");
    assert!(slow > 0);
}

#[test]
fn unarmed_runs_are_untouched() {
    let df = frame();
    for workers in [1usize, 4] {
        let cfg = config_with_workers(workers);
        let report = create_report(&df, &cfg).unwrap();
        assert!(report.stats.fully_succeeded(), "{:?}", report.stats);
        assert!(report.failed_sections().is_empty());
    }
}
