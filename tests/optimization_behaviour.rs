//! Integration tests for the paper's performance mechanisms: computation
//! sharing, fine-grained task scoping, two-phase equivalence, and engine
//! agreement — asserted on observable behaviour (task counts, results),
//! not wall time.

use dataprep_eda::prelude::*;
use eda_core::compute::overview::plan_overview;
use eda_core::compute::ComputeContext;
use eda_datagen::{generate, kaggle_spec_by_name};
use eda_taskgraph::Engine;

fn dataset() -> DataFrame {
    generate(&kaggle_spec_by_name("titanic").unwrap(), 42)
}

#[test]
fn report_shares_computations_across_sections() {
    let df = dataset();
    // Cache off: this test compares task counts with and without CSE, and
    // the cross-call result cache would serve the second report wholesale.
    let shared_cfg = Config::from_pairs(vec![("engine.cache_budget_bytes", "0")]).unwrap();
    let shared = create_report(&df, &shared_cfg).unwrap();
    let unshared_cfg = Config::from_pairs(vec![
        ("engine.share_computations", "false"),
        ("engine.cache_budget_bytes", "0"),
    ])
    .unwrap();
    let unshared = create_report(&df, &unshared_cfg).unwrap();

    assert!(shared.stats.cse_hits > 20, "cse hits: {}", shared.stats.cse_hits);
    assert_eq!(unshared.stats.cse_hits, 0);
    assert!(
        unshared.stats.tasks_run as f64 > shared.stats.tasks_run as f64 * 1.3,
        "unshared {} vs shared {}",
        unshared.stats.tasks_run,
        shared.stats.tasks_run
    );

    // Sharing must not change the results.
    assert_eq!(shared.variables.len(), unshared.variables.len());
    for (a, b) in shared.variables.iter().zip(&unshared.variables) {
        assert_eq!(a.intermediates, b.intermediates, "column {}", a.name);
    }
}

#[test]
fn fine_grained_tasks_run_fewer_tasks_than_report() {
    let df = dataset();
    let cfg = Config::default();
    let single = plot(&df, &["num0"], &cfg).unwrap();
    let report = create_report(&df, &cfg).unwrap();
    let single_tasks = single.stats.unwrap().tasks_run;
    assert!(
        single_tasks * 3 < report.stats.tasks_run,
        "single {} vs report {}",
        single_tasks,
        report.stats.tasks_run
    );
}

#[test]
fn two_phase_boundary_does_not_change_correlations() {
    let df = dataset();
    let eager = plot_correlation(&df, &[], &Config::default()).unwrap();
    let lazy_cfg = Config::from_pairs(vec![("engine.eager_finish", "false")]).unwrap();
    let lazy = plot_correlation(&df, &[], &lazy_cfg).unwrap();
    for name in ["Pearson", "Spearman", "KendallTau"] {
        let key = format!("correlation_matrix:{name}");
        let (Some(Inter::Correlation(a)), Some(Inter::Correlation(b))) =
            (eager.get(&key), lazy.get(&key))
        else {
            panic!("missing {key}")
        };
        assert_eq!(a.labels, b.labels);
        for i in 0..a.size() {
            for j in 0..a.size() {
                match (a.get(i, j), b.get(i, j)) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }
}

#[test]
fn partition_count_does_not_change_results() {
    let df = dataset();
    let base = plot(&df, &["num0"], &Config::default()).unwrap();
    for nparts in ["1", "3", "7"] {
        let cfg = Config::from_pairs(vec![("engine.npartitions", nparts)]).unwrap();
        let other = plot(&df, &["num0"], &cfg).unwrap();
        assert_eq!(
            base.intermediates, other.intermediates,
            "results changed with npartitions={nparts}"
        );
    }
}

#[test]
fn all_engines_compute_identical_overview_payload_counts() {
    let df = dataset();
    let cfg = Config::default();
    let mut expected: Option<usize> = None;
    for engine in [
        Engine::SingleThread,
        Engine::LazyParallel { workers: 2 },
        Engine::EagerPerOp { workers: 2 },
    ] {
        let mut ctx = ComputeContext::new(&df, &cfg);
        let plan = plan_overview(&mut ctx);
        let outputs = plan.outputs();
        let payloads = ctx.execute_with(engine, &outputs);
        match expected {
            None => expected = Some(payloads.len()),
            Some(e) => assert_eq!(payloads.len(), e),
        }
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let df = dataset();
    let base = plot_missing(&df, &[], &Config::default()).unwrap();
    let cfg = Config::from_pairs(vec![("engine.workers", "4")]).unwrap();
    let multi = plot_missing(&df, &[], &cfg).unwrap();
    assert_eq!(base.intermediates, multi.intermediates);
}
