//! Property-based integration tests: the task-centric API must never
//! panic and must keep its structural guarantees on arbitrary small
//! frames (mixed types, arbitrary null patterns, repeated values).

use dataprep_eda::prelude::*;
use eda_dataframe::Column;
use proptest::prelude::*;

/// An arbitrary small frame with one numeric, one integer, and one
/// categorical column, each with its own null pattern.
fn arb_frame() -> impl Strategy<Value = DataFrame> {
    let floats = prop::collection::vec(
        prop::option::of(-1.0e4..1.0e4f64),
        3..60,
    );
    let ints = prop::collection::vec(prop::option::of(-500i64..500), 3..60);
    let cats = prop::collection::vec(prop::option::of(0u8..6), 3..60);
    (floats, ints, cats).prop_map(|(f, i, c)| {
        let n = f.len().min(i.len()).min(c.len());
        DataFrame::new(vec![
            ("f".into(), Column::from_opt_f64(f[..n].to_vec())),
            ("i".into(), Column::from_opt_i64(i[..n].to_vec())),
            (
                "c".into(),
                Column::from_opt_string(
                    c[..n]
                        .iter()
                        .map(|v| v.map(|x| format!("cat{x}")))
                        .collect(),
                ),
            ),
        ])
        .expect("valid frame")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plot_never_panics_and_produces_charts(df in arb_frame()) {
        let cfg = Config::default();
        let overview = plot(&df, &[], &cfg).unwrap();
        prop_assert!(overview.intermediates.len() > df.ncols());
        for col in ["f", "i", "c"] {
            let a = plot(&df, &[col], &cfg).unwrap();
            prop_assert!(a.get("stats").is_some());
            prop_assert!(a.intermediates.len() >= 3);
        }
    }

    #[test]
    fn bivariate_never_panics(df in arb_frame()) {
        let cfg = Config::default();
        for pair in [["f", "i"], ["f", "c"], ["c", "f"], ["i", "c"]] {
            let a = plot(&df, &pair, &cfg).unwrap();
            prop_assert!(!a.intermediates.is_empty(), "{pair:?}");
        }
    }

    #[test]
    fn missing_analysis_never_panics(df in arb_frame()) {
        let cfg = Config::default();
        let overview = plot_missing(&df, &[], &cfg).unwrap();
        prop_assert_eq!(overview.intermediates.len(), 4);
        let impact = plot_missing(&df, &["f"], &cfg).unwrap();
        // One comparison per other column.
        prop_assert_eq!(impact.intermediates.len(), df.ncols() - 1);
        let pair = plot_missing(&df, &["f", "i"], &cfg).unwrap();
        prop_assert!(pair.get("compare_histogram").is_some()
            || pair.get("compare_bars").is_some());
    }

    #[test]
    fn histogram_counts_match_non_null_rows(df in arb_frame()) {
        let cfg = Config::default();
        let a = plot(&df, &["f"], &cfg).unwrap();
        // Semantic detection may call low-cardinality data categorical;
        // in that case the invariant is on the bar chart instead.
        if let Some(Inter::Histogram { counts, .. }) = a.get("histogram") {
            let col = df.column("f").unwrap();
            let finite = col
                .numeric_iter()
                .unwrap()
                .flatten()
                .filter(|v| v.is_finite())
                .count() as u64;
            prop_assert_eq!(counts.iter().sum::<u64>(), finite);
        }
    }

    #[test]
    fn sharing_never_changes_results(df in arb_frame()) {
        let shared = plot(&df, &["f"], &Config::default()).unwrap();
        let cfg = Config::from_pairs(vec![("engine.share_computations", "false")]).unwrap();
        let unshared = plot(&df, &["f"], &cfg).unwrap();
        prop_assert_eq!(shared.intermediates, unshared.intermediates);
    }

    #[test]
    fn partitioning_never_changes_results(df in arb_frame(), nparts in 1usize..9) {
        let base = plot_missing(&df, &[], &Config::default()).unwrap();
        let cfg = Config::from_pairs(vec![(
            "engine.npartitions",
            &nparts.to_string() as &str,
        )])
        .unwrap();
        let other = plot_missing(&df, &[], &cfg).unwrap();
        prop_assert_eq!(base.intermediates, other.intermediates);
    }

    #[test]
    fn rendering_never_panics(df in arb_frame()) {
        let cfg = Config::default();
        for a in [
            plot(&df, &[], &cfg).unwrap(),
            plot(&df, &["f"], &cfg).unwrap(),
            plot(&df, &["c"], &cfg).unwrap(),
            plot_missing(&df, &[], &cfg).unwrap(),
        ] {
            let html = render_analysis_html(&a, &cfg.display);
            prop_assert!(html.starts_with("<!DOCTYPE html>"));
            prop_assert!(html.ends_with("</html>"));
        }
    }
}
