//! Integration test: the mapping rules of the paper's Figure 2.
//!
//! Each task-centric call must produce exactly the stats/plots the table
//! lists for the detected column types.

use dataprep_eda::prelude::*;
use eda_dataframe::Column;

fn frame() -> DataFrame {
    let n = 300;
    DataFrame::new(vec![
        (
            "num_a".into(),
            Column::from_opt_f64(
                (0..n)
                    .map(|i| if i % 20 == 0 { None } else { Some(((i * 37) % 500) as f64) })
                    .collect(),
            ),
        ),
        (
            "num_b".into(),
            Column::from_f64((0..n).map(|i| ((i * 13) % 400) as f64).collect()),
        ),
        (
            "cat_a".into(),
            Column::from_opt_string(
                (0..n)
                    .map(|i| if i % 25 == 0 { None } else { Some(format!("group {}", i % 5)) })
                    .collect(),
            ),
        ),
        (
            "cat_b".into(),
            Column::from_string((0..n).map(|i| format!("kind{}", i % 3)).collect()),
        ),
    ])
    .unwrap()
}

fn names(a: &Analysis) -> Vec<String> {
    a.chart_names().iter().map(|s| s.to_string()).collect()
}

#[test]
fn row1_overview() {
    // plot(df) → dataset statistics, histogram or bar chart per column.
    let a = plot(&frame(), &[], &Config::default()).unwrap();
    let n = names(&a);
    assert!(n.contains(&"stats".to_string()));
    assert!(n.contains(&"histogram:num_a".to_string()));
    assert!(n.contains(&"histogram:num_b".to_string()));
    assert!(n.contains(&"bar_chart:cat_a".to_string()));
    assert!(n.contains(&"bar_chart:cat_b".to_string()));
    assert_eq!(n.len(), 5);
}

#[test]
fn row2_univariate_numerical() {
    // plot(df, N) → column stats, histogram, KDE plot, normal Q-Q plot,
    // box plot.
    let a = plot(&frame(), &["num_a"], &Config::default()).unwrap();
    assert_eq!(
        names(&a),
        vec!["stats", "histogram", "kde_plot", "qq_plot", "box_plot"]
    );
    assert!(matches!(
        a.task,
        TaskKind::Univariate { semantic: SemanticType::Numerical, .. }
    ));
}

#[test]
fn row2_univariate_categorical() {
    // plot(df, C) → column stats, bar chart, pie chart, word cloud, word
    // frequencies.
    let a = plot(&frame(), &["cat_a"], &Config::default()).unwrap();
    assert_eq!(
        names(&a),
        vec!["stats", "bar_chart", "pie_chart", "word_cloud", "word_frequencies"]
    );
}

#[test]
fn row3_bivariate_nn() {
    // plot(df, N, N) → scatter plot, hexbin plot, binned box plot.
    let a = plot(&frame(), &["num_a", "num_b"], &Config::default()).unwrap();
    assert_eq!(names(&a), vec!["scatter_plot", "hexbin_plot", "binned_box_plot"]);
}

#[test]
fn row3_bivariate_nc_both_orders() {
    // plot(df, N, C) or (C, N) → categorical box plot, multi-line chart.
    for cols in [["num_a", "cat_a"], ["cat_a", "num_a"]] {
        let a = plot(&frame(), &cols, &Config::default()).unwrap();
        assert_eq!(
            names(&a),
            vec!["categorical_box_plot", "multi_line_chart"],
            "{cols:?}"
        );
    }
}

#[test]
fn row3_bivariate_cc() {
    // plot(df, C, C) → nested bar chart, stacked bar chart, heat map.
    let a = plot(&frame(), &["cat_a", "cat_b"], &Config::default()).unwrap();
    let n = names(&a);
    assert!(n.contains(&"nested_bar_chart".to_string()));
    assert!(n.contains(&"stacked_bar_chart".to_string()));
    assert!(n.contains(&"heat_map".to_string()));
}

#[test]
fn rows5_7_correlation() {
    let df = frame();
    let cfg = Config::default();
    // plot_correlation(df) → matrices for Pearson, Spearman, KendallTau.
    let a = plot_correlation(&df, &[], &cfg).unwrap();
    let n = names(&a);
    assert_eq!(
        n,
        vec![
            "correlation_matrix:Pearson",
            "correlation_matrix:Spearman",
            "correlation_matrix:KendallTau"
        ]
    );
    // plot_correlation(df, x) → correlation vectors, all three methods.
    let a = plot_correlation(&df, &["num_a"], &cfg).unwrap();
    let Some(Inter::CorrVectors(v)) = a.get("correlation_vectors") else {
        panic!()
    };
    assert_eq!(v.len(), 3);
    // plot_correlation(df, x, y) → scatter with a regression line.
    let a = plot_correlation(&df, &["num_a", "num_b"], &cfg).unwrap();
    assert!(a.get("regression_scatter").is_some() || a.get("scatter_plot").is_some());
}

#[test]
fn rows8_10_missing() {
    let df = frame();
    let cfg = Config::default();
    // plot_missing(df) → bar chart, spectrum, nullity correlation,
    // dendrogram.
    let a = plot_missing(&df, &[], &cfg).unwrap();
    assert_eq!(
        names(&a),
        vec![
            "missing_bar_chart",
            "missing_spectrum",
            "nullity_correlation",
            "dendrogram"
        ]
    );
    // plot_missing(df, x) → per-column before/after comparison.
    let a = plot_missing(&df, &["num_a"], &cfg).unwrap();
    let n = names(&a);
    assert!(n.contains(&"compare_histogram:num_b".to_string()));
    assert!(n.contains(&"compare_bars:cat_a".to_string()));
    assert_eq!(n.len(), 3); // num_b, cat_a, cat_b
    // plot_missing(df, x, y) with numeric y → histogram, PDF, CDF, box.
    let a = plot_missing(&df, &["num_a", "num_b"], &cfg).unwrap();
    let n = names(&a);
    for chart in ["compare_histogram", "pdf:before", "pdf:after", "cdf:before", "cdf:after", "box_plot"] {
        assert!(n.contains(&chart.to_string()), "missing {chart}");
    }
}

#[test]
fn every_chart_has_a_howto_entry_point() {
    // The how-to guide exists for the main charts of each panel.
    let a = plot(&frame(), &["num_a"], &Config::default()).unwrap();
    for chart in a.chart_names() {
        let guide = a.howto(chart);
        // `stats` and the charts all resolve to a (possibly empty) guide;
        // the headline charts must be non-empty.
        if ["histogram", "kde_plot", "qq_plot", "box_plot"].contains(&chart) {
            assert!(!guide.entries.is_empty(), "{chart} guide empty");
        }
    }
}
