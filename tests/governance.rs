//! Resource-governance integration tests through the public API.
//!
//! The acceptance bar of the governance layer: knobs at their defaults
//! leave reports bit-identical to an ungoverned run; `AnalysisHandle`
//! cancellation stops in-flight work promptly; a run deadline reclaims
//! wedged workers; transient-failure retries un-skip the downstream
//! cone; admission control serializes and sheds; and the memory-budget
//! degradation ladder swaps an OOM-bound run for a flagged approximate
//! one.

use std::time::{Duration, Instant};

use eda_core::{
    create_report, create_report_handle, plot, plot_correlation, Config, EdaError, InsightKind,
    SectionStatus,
};
use eda_dataframe::{Column, DataFrame};
use eda_render::layout::{render_analysis_html, render_report_html};
use eda_taskgraph::{inject, FaultInjector};

fn frame(n: usize) -> DataFrame {
    DataFrame::new(vec![
        (
            "price".into(),
            Column::from_opt_f64(
                (0..n)
                    .map(|i| if i % 24 == 0 { None } else { Some(50.0 + ((i * 31) % 900) as f64) })
                    .collect(),
            ),
        ),
        ("size".into(), Column::from_f64((0..n).map(|i| 10.0 + ((i * 7) % 120) as f64).collect())),
        ("city".into(), Column::from_string((0..n).map(|i| format!("c{}", i % 5)).collect())),
    ])
    .unwrap()
}

/// A config with the session cache off, so every task actually executes
/// (cache-served payloads are neither charged nor counted) and no other
/// test's warm cache changes this test's stats.
fn cfg(pairs: &[(&str, &str)]) -> Config {
    let mut all = vec![("engine.cache_budget_bytes", "0")];
    all.extend_from_slice(pairs);
    Config::from_pairs(all).unwrap()
}

// ---------------------------------------------------------------- golden

/// Governance knobs at their defaults must be invisible: same stats,
/// same bytes of HTML as a config that never mentions them.
#[test]
fn default_knobs_are_bit_identical_to_unset() {
    let df = frame(300);
    let baseline = cfg(&[]);
    let explicit = cfg(&[
        ("engine.memory_budget_bytes", "0"),
        ("engine.run_deadline_ms", "0"),
        ("engine.task_retries", "0"),
        ("engine.max_concurrent_runs", "0"),
    ]);

    let mut a = create_report(&df, &baseline).unwrap();
    let mut b = create_report(&df, &explicit).unwrap();
    assert!(a.stats.fully_succeeded(), "{:?}", a.stats);

    // Wall time is the one legitimately nondeterministic field; zero it
    // on both sides so the comparison covers everything else (it also
    // feeds the report footer, hence zeroing *before* rendering).
    a.stats.elapsed = Duration::ZERO;
    b.stats.elapsed = Duration::ZERO;
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats.tasks_cancelled, 0);
    assert_eq!(a.stats.tasks_retried, 0);
    assert_eq!(a.stats.tasks_budget_exceeded, 0);
    assert_eq!(a.stats.mem_peak_bytes, 0);

    let html_a = render_report_html(&a, &baseline.display);
    let html_b = render_report_html(&b, &explicit.display);
    assert_eq!(html_a, html_b, "explicit-default knobs changed the rendered bytes");
    // (`eda-approx` alone also matches the stylesheet rule, hence the
    // `class=` form.)
    assert!(
        !html_a.contains("class=\"eda-approx\""),
        "ungoverned run must not carry the approx banner"
    );
}

// ----------------------------------------------------------- cancellation

/// `AnalysisHandle::cancel()` stops a large in-flight `create_report`
/// promptly: kernels bail at morsel boundaries and the scheduler stops
/// dispatching, so join returns far sooner than the full run would.
#[test]
fn handle_cancel_stops_inflight_report_promptly() {
    let df = frame(200_000);
    let config = cfg(&[("engine.workers", "4")]);

    let handle = create_report_handle(&df, &config);
    // Let the run get properly underway before pulling the cord.
    std::thread::sleep(Duration::from_millis(30));
    let cancelled_at = Instant::now();
    handle.cancel();
    let report = handle.join().expect("cancelled run degrades, not errors");
    let reclaim = cancelled_at.elapsed();

    // Target ~100ms; the bound is generous for loaded CI machines but
    // still far below what the 200k-row report takes uncancelled.
    assert!(reclaim < Duration::from_millis(1500), "join took {reclaim:?} after cancel");
    let failed = report.failed_sections();
    assert!(!failed.is_empty(), "a cancelled mid-flight report must have degraded sections");
    for (name, status) in &failed {
        match status {
            SectionStatus::Failed { error, .. } => {
                assert!(!error.is_empty(), "{name} lost its diagnostics")
            }
            SectionStatus::Ok => unreachable!(),
        }
    }
    assert!(
        failed.iter().any(|(_, s)| matches!(
            s,
            SectionStatus::Failed { error, .. } if error.contains("cancel")
        )),
        "no section names the cancellation: {failed:?}"
    );
}

/// `engine.run_deadline_ms` reclaims every worker even when one is
/// wedged in a kernel: the wedge observes the run token and the whole
/// call returns around the deadline, not the wedge duration.
#[test]
fn run_deadline_reclaims_wedged_workers() {
    let df = frame(240);
    let config = cfg(&[("engine.workers", "4"), ("engine.run_deadline_ms", "150")]);
    let _guard = inject::arm(FaultInjector::wedge_on("moments:price", Duration::from_secs(8)));

    let started = Instant::now();
    let report = create_report(&df, &config).expect("deadline degrades, not fails");
    let elapsed = started.elapsed();

    assert!(elapsed < Duration::from_secs(4), "workers not reclaimed: took {elapsed:?}");
    assert!(report.stats.tasks_cancelled >= 1, "{:?}", report.stats);
    let price = report.variables.iter().find(|v| v.name == "price").unwrap();
    match &price.status {
        SectionStatus::Failed { error, .. } => {
            assert!(error.contains("deadline") || error.contains("cancel"), "{error}")
        }
        SectionStatus::Ok => panic!("wedged section should have been cancelled"),
    }
}

// ----------------------------------------------------------------- retry

/// A transiently-failing task that succeeds on retry un-skips its whole
/// downstream cone: the analysis comes back healthy, with the retry
/// counted — where zero retries would have degraded it.
#[test]
fn transient_failure_retries_and_unskips_downstream() {
    let df = frame(240);

    // Control: without retries the transient fault degrades the section.
    {
        let _guard = inject::arm(FaultInjector::transient_on("moments:price", 1));
        let a = plot(&df, &["price"], &cfg(&[])).unwrap();
        assert!(!a.status.is_ok(), "transient fault with no retry budget must degrade");
    }

    // With a retry budget the same fault heals and downstream computes.
    let _guard = inject::arm(FaultInjector::transient_on("moments:price", 1));
    let a = plot(&df, &["price"], &cfg(&[("engine.task_retries", "2")])).unwrap();
    assert!(a.status.is_ok(), "{:?}", a.status);
    assert!(a.stats.as_ref().unwrap().tasks_retried >= 1, "{:?}", a.stats);
    assert!(a.get("histogram").is_some(), "downstream cone stayed skipped");
    assert!(a.get("stats").is_some(), "moments consumer stayed skipped");
}

// ------------------------------------------------------------- admission

/// `engine.max_concurrent_runs` both serializes (a queued run eventually
/// completes) and sheds (past the bounded queue, callers get
/// `EdaError::Overloaded` instead of piling up).
#[test]
fn admission_gate_serializes_and_sheds() {
    let df = frame(240);
    let threads = 6;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    let results: Vec<Result<(), EdaError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let df = df.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                s.spawn(move || {
                    // Each run stalls ~60ms so the six calls genuinely
                    // overlap; armed per-thread (injection is
                    // thread-local).
                    let _guard = inject::arm(FaultInjector::stall_on(
                        "moments:price",
                        Duration::from_millis(60),
                    ));
                    let config = cfg(&[("engine.max_concurrent_runs", "1")]);
                    barrier.wait();
                    plot(&df, &["price"], &config).map(|_| ())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(EdaError::Overloaded { .. })))
        .count();
    assert_eq!(ok + shed, threads, "unexpected non-overload error: {results:?}");
    assert!(ok >= 1, "at least the admitted run must complete");
    assert!(shed >= 1, "six simultaneous runs against capacity 1 + queue 2 must shed");
}

// --------------------------------------------------------- budget ladder

/// The degradation ladder end-to-end: discover the run's real footprint
/// with an effectively-unbounded budget, then rerun under ~60% of it —
/// the full-size run exceeds the budget and the engine falls back to a
/// flagged systematic sample instead of failing.
#[test]
fn memory_budget_degrades_to_flagged_sample() {
    let n = 40_000;
    let df = DataFrame::new(vec![
        ("a".into(), Column::from_f64((0..n).map(|i| (i % 977) as f64).collect())),
        ("b".into(), Column::from_f64((0..n).map(|i| ((i * 31) % 613) as f64).collect())),
        ("c".into(), Column::from_f64((0..n).map(|i| ((i * 7) % 389) as f64).collect())),
    ])
    .unwrap();

    // Discovery run: budget far above any real footprint.
    let roomy = cfg(&[("engine.memory_budget_bytes", &(1u64 << 40).to_string())]);
    let full = plot_correlation(&df, &[], &roomy).unwrap();
    assert!(full.status.is_ok(), "{:?}", full.status);
    let peak = full.stats.as_ref().unwrap().mem_peak_bytes;
    assert!(peak > 100_000, "domain sizer should price ColumnPrep by rows, got {peak}");

    // Governed run: 60% of the discovered footprint. The full-size run
    // cannot fit, the quarter-sample retry can.
    let tight = cfg(&[("engine.memory_budget_bytes", &(peak * 3 / 5).to_string())]);
    let degraded = plot_correlation(&df, &[], &tight).unwrap();
    assert!(degraded.status.is_ok(), "ladder should have recovered: {:?}", degraded.status);
    let note = degraded
        .insights
        .iter()
        .find(|i| i.kind == InsightKind::Approximated)
        .expect("budget-degraded output must be flagged approximate");
    assert!(!note.message.is_empty());

    // The rendered page carries the approximate banner.
    let html = render_analysis_html(&degraded, &tight.display);
    assert!(html.contains("class=\"eda-approx\""), "approx banner missing from HTML");
    assert!(!render_analysis_html(&full, &roomy.display).contains("class=\"eda-approx\""));
}

/// A budget so tight even the sampled retry cannot fit leaves the
/// original diagnostics in place: degraded sections with the budget
/// failure named, never an `Err` or a silently-wrong report.
#[test]
fn hopeless_budget_keeps_diagnostics() {
    let df = frame(2_000);
    let config = cfg(&[("engine.memory_budget_bytes", "64")]);
    let report = create_report(&df, &config).expect("budget exhaustion degrades, not fails");
    assert!(report.stats.tasks_budget_exceeded >= 1, "{:?}", report.stats);
    let failed = report.failed_sections();
    assert!(!failed.is_empty());
    assert!(
        failed.iter().any(|(_, s)| matches!(
            s,
            SectionStatus::Failed { error, .. } if error.contains("memory budget")
        )),
        "no section names the budget: {failed:?}"
    );
    // The diagnostics panel renders; no approx banner (nothing succeeded).
    let html = render_report_html(&report, &config.display);
    assert!(html.contains("eda-error"));
}
