//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen::<T>()`, `Rng::gen_range(range)`, `Rng::gen_bool` — on top
//! of the SplitMix64 generator. Not cryptographic, but statistically
//! adequate for synthetic dataset generation and simulation, and fully
//! deterministic per seed (which the datagen determinism tests rely on).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit value (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator, mirroring
/// rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = f64::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for rand's
    /// `StdRng`; every stream is a pure function of the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&u));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn mean_of_unit_draws_is_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
