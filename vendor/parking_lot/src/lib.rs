//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is simply
//! recovered, matching parking_lot's behaviour of ignoring panics in
//! other holders).

use std::sync::{self, TryLockError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that does not poison: panicking while holding the lock leaves
/// it usable by other threads.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`]. Unlike parking_lot's
/// `wait(&mut guard)`, the guard moves through the call (std's shape) —
/// the by-value form needs no unsafe guard juggling. Spurious wakeups
/// are possible, so always wait in a predicate loop.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock, block until notified, then
    /// re-acquire the lock and return the guard (poisoning recovered,
    /// matching [`Mutex::lock`]).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in an rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
