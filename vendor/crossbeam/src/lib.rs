//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the small API subset it actually uses: an unbounded
//! multi-producer multi-consumer channel with disconnect semantics
//! (`recv` fails once every sender is gone and the queue is drained;
//! `send` fails once every receiver is gone). The implementation is a
//! plain `Mutex<VecDeque>` + `Condvar`, which is more than fast enough
//! for the scheduler's coarse-grained task messages.

pub mod channel {
    //! Unbounded mpmc channel with crossbeam-compatible semantics.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone
    /// and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Push a message; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once the channel is both
        /// empty and fully disconnected on the sending side.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(value) => Ok(value),
                None => Err(RecvError),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
