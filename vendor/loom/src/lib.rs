//! Offline stand-in for the `loom` model checker.
//!
//! The real `loom` exhaustively enumerates thread interleavings of a
//! closure under the C11 memory model. This registry-free stand-in keeps
//! the same API surface but checks by *stress iteration*: [`model`] runs
//! the closure many times on real OS threads, and [`thread::spawn`] /
//! [`thread::yield_now`] inject scheduling perturbation so distinct
//! interleavings are actually explored. That trades exhaustiveness for
//! availability — a failing schedule is found probabilistically rather
//! than by enumeration — while keeping the model tests source-compatible
//! with the real tool: swap the dependency and the same tests become
//! exhaustive.
//!
//! Iteration count comes from `EDA_LOOM_ITERS` (default 64). Raise it in
//! CI for deeper exploration; set it to 1 for smoke runs.

/// Run `f` repeatedly, once per stress iteration. Panics inside `f`
/// (assertion failures, poisoned locks, deadlocked joins surfacing as
/// panics) propagate and fail the test, matching `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = std::env::var("EDA_LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64);
    for _ in 0..iters {
        f();
    }
}

/// Thread primitives with extra scheduling perturbation.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Like `std::thread::spawn`, but yields once on entry so sibling
    /// threads race from a staggered start instead of running to
    /// completion in spawn order.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            std::thread::yield_now();
            f()
        })
    }
}

/// Synchronization primitives. Real `loom` wraps these in checked
/// versions; the stand-in uses the `std` originals, so lock semantics
/// (poisoning included) match production code exactly.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_default_iteration_count() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert!(runs.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn spawned_threads_join_with_results() {
        super::model(|| {
            let h = super::thread::spawn(|| 21 * 2);
            assert_eq!(h.join().expect("joined"), 42);
        });
    }
}
