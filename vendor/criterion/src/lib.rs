//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so benches link against
//! this minimal harness instead. It keeps criterion's macro and builder
//! surface (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! and reports a simple mean wall-clock time per iteration — no
//! statistics, no HTML reports, but `cargo bench` runs end to end and
//! prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Use a bare parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it enough times to produce `samples`
    /// measurements.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then the measured runs.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many measured iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, elapsed: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed / bencher.iters as u32;
        println!("bench: {label:<60} {per_iter:>12.2?}/iter ({} iters)", bencher.iters);
    } else {
        println!("bench: {label:<60} (no measurement)");
    }
}

/// Declare a group of benchmark functions. Supports both the simple
/// list form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0usize;
        Criterion::default().sample_size(3).bench_function("probe", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 measured.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", 5), &5, |b, input| {
            b.iter(|| seen = *input);
        });
        group.finish();
        assert_eq!(seen, 5);
    }
}
