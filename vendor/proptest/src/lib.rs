//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate-registry access, so the workspace
//! vendors a small, deterministic property-testing engine with the same
//! macro and combinator surface the test suites use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! * `any::<T>()`, numeric range strategies, tuple strategies
//! * `Just`, `prop_oneof!` (plain and weighted), `.prop_map`, `.prop_filter`
//! * `prop::collection::vec`, `prop::option::of`, `prop::sample::select`
//! * `&str` regex-class strategies of the form `"[class]{m,n}"`
//!
//! Differences from real proptest: failing cases are reported but not
//! shrunk, regression files are ignored, and case generation is a pure
//! function of the test name and case index (stable across runs).

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// SplitMix64-based generator. Each test case gets a stream derived
    //  from the test name and case index, so failures are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derive the generator for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`. Panics if `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

#[doc(hidden)]
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), String>,
{
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, case);
        if let Err(msg) = case_fn(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{}: {msg}", config.cases);
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Object-safe core (`sample`) plus `Sized`-gated combinators, so
    /// `Box<dyn Strategy<Value = V>>` works for heterogeneous unions.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `pred`, resampling (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason, pred }
        }

        /// Erase the concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;
        fn sample(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive samples", self.reason);
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms. Weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = (rng.next_u64() % self.total as u64) as u32;
            for (weight, strat) in &self.arms {
                if pick < *weight {
                    return strat.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Types with a default "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        /// Mostly raw bit patterns (wild magnitudes, infinities, NaNs),
        /// with occasional hand-picked special values.
        fn arbitrary(rng: &mut TestRng) -> Self {
            const SPECIALS: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MAX,
                f64::MIN_POSITIVE,
            ];
            if rng.next_u64().is_multiple_of(8) {
                SPECIALS[rng.below(SPECIALS.len())]
            } else {
                f64::from_bits(rng.next_u64())
            }
        }
    }

    /// The `any::<T>()` strategy object.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// `&str` regex-class strategies: `"[class]{m,n}"` (or `{n}`).
    ///
    /// Supports literal characters, `a-z` ranges, backslash escapes, and
    /// `\PC` ("any printable"). Anything else is rejected loudly — this
    /// is an offline stub, not a regex engine.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, min_len, max_len) = parse_class_pattern(self);
            let len = min_len + rng.below(max_len - min_len + 1);
            (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect()
        }
    }

    fn bad_pattern(pattern: &str) -> ! {
        panic!("unsupported regex pattern {pattern:?} (offline proptest stub supports only \"[class]{{m,n}}\")")
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let inner = pattern.strip_prefix('[').unwrap_or_else(|| bad_pattern(pattern));
        let (class, reps) = inner.split_once(']').unwrap_or_else(|| bad_pattern(pattern));
        let reps = reps
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| bad_pattern(pattern));
        let (min_len, max_len): (usize, usize) = match reps.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().unwrap_or_else(|_| bad_pattern(pattern)),
                hi.parse().unwrap_or_else(|_| bad_pattern(pattern)),
            ),
            None => {
                let n = reps.parse().unwrap_or_else(|_| bad_pattern(pattern));
                (n, n)
            }
        };
        let mut alphabet: Vec<char> = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: anything not in Unicode category C (i.e.
                        // printable). Approximate with printable ASCII plus
                        // a spread of non-ASCII printables.
                        if chars.next() != Some('C') {
                            bad_pattern(pattern);
                        }
                        alphabet.extend((0x20u8..=0x7E).map(char::from));
                        alphabet.extend(['é', 'ß', 'λ', 'Ж', '中', '‑', '✓']);
                    }
                    Some(esc) => alphabet.push(esc),
                    None => bad_pattern(pattern),
                },
                lo if chars.peek() == Some(&'-') => {
                    chars.next();
                    match chars.next() {
                        Some(hi) => alphabet.extend((lo..=hi).filter(|c| c.is_ascii())),
                        // Trailing '-' is a literal.
                        None => {
                            alphabet.push(lo);
                            alphabet.push('-');
                        }
                    }
                }
                c => alphabet.push(c),
            }
        }
        if alphabet.is_empty() || min_len > max_len {
            bad_pattern(pattern);
        }
        (alphabet, min_len, max_len)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generate vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `Some` from `inner` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed, non-empty list.
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len())].clone()
        }
    }

    /// Pick uniformly from `choices`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select { choices }
    }
}

/// Define property tests. Mirrors proptest's surface: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Assert inside a proptest body; failure fails the case with context
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left,
            ));
        }
    }};
}

/// Choose between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface matching `use proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path used as `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let strat = (0i64..10).prop_map(|v| v * 2);
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn filter_resamples() {
        let strat = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_weighted_hits_all_arms() {
        let strat = prop_oneof![3 => Just(1), 1 => Just(2)];
        let mut rng = TestRng::from_seed(11);
        let draws: Vec<i32> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
        let ones = draws.iter().filter(|&&v| v == 1).count();
        assert!(ones > 100, "weighting ignored: {ones}/200");
    }

    #[test]
    fn regex_class_strategy_respects_shape() {
        let strat = "[a-c_]{2,4}";
        let mut rng = TestRng::from_seed(13);
        for _ in 0..100 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')));
        }
    }

    #[test]
    fn printable_class_excludes_controls() {
        let strat = "[\\PC]{0,20}";
        let mut rng = TestRng::from_seed(17);
        for _ in 0..100 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn vec_and_option_and_select() {
        let strat = prop::collection::vec(prop::option::of(0u8..4), 1..6);
        let mut rng = TestRng::from_seed(19);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
        let sel = prop::sample::select(vec![10, 20]);
        let draws: Vec<i32> = (0..50).map(|_| sel.sample(&mut rng)).collect();
        assert!(draws.contains(&10) && draws.contains(&20));
    }

    // The macro-generated shape itself, including config and multiple
    // parameters.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generated_case(x in 0i64..50, flip in any::<bool>()) {
            prop_assert!(x >= 0);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
            prop_assert_ne!(x, -1);
        }
    }
}
