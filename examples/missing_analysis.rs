//! Missing-value analysis on a BirdStrike-shaped dataset: overview, the
//! impact of one column's nulls on the rest, and the before/after detail
//! for a single pair (paper Figure 2, rows 8–10).
//!
//! Run with: `cargo run --example missing_analysis`

use dataprep_eda::prelude::*;
use eda_datagen::generate;
use eda_datagen::userstudy::birdstrike_spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let df = generate(&birdstrike_spec(20_000), 11);
    let config = Config::default();

    // "I want an overview of the missing value analysis result."
    let overview = plot_missing(&df, &[], &config)?;
    if let Some(inter) = overview.get("missing_bar_chart") {
        print!("{}", eda_render::ascii::render("missing_bar_chart", inter));
    }

    // "I want to understand the impact of removing the missing values
    //  from repair_cost on other columns."
    let impact = plot_missing(&df, &["repair_cost"], &config)?;
    println!(
        "impact charts: {} before/after comparisons",
        impact.intermediates.len()
    );
    for insight in &impact.insights {
        println!("insight: {}", insight.message);
    }

    // "...on speed_knots specifically": histogram, PDF, CDF, box plots.
    let pair = plot_missing(&df, &["repair_cost", "speed_knots"], &config)?;
    println!("pair charts: {:?}", pair.chart_names());
    if let Some(inter) = pair.get("box_plot") {
        print!("{}", eda_render::ascii::render("box_plot", inter));
    }

    let html = render_analysis_html(&pair, &config.display);
    let path = std::env::temp_dir().join("dataprep_missing.html");
    std::fs::write(&path, html)?;
    println!("wrote {}", path.display());
    Ok(())
}
