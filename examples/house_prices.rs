//! The paper's running example (Figure 1): a data scientist building a
//! house-price regression model removes outliers from `price`, inspects
//! the filtered distribution, and customizes the histogram via the
//! how-to guide.
//!
//! Run with: `cargo run --example house_prices`

use dataprep_eda::prelude::*;
use eda_dataframe::Bitmap;
use eda_datagen::spec::quick::*;
use eda_datagen::{generate, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic training data with the paper's five columns.
    let spec = DatasetSpec {
        name: "houses".into(),
        rows: 20_000,
        columns: vec![
            lognormal("price", 12.8, 0.4, 0.01), // right-skewed prices
            normal("size", 140.0, 40.0, 0.02),
            ints("year_built", 1950, 2020, 0.05),
            cat("city", 12, 0.0),
            cat("house_type", 4, 0.0),
        ],
    };
    let df = generate(&spec, 7);
    let config = Config::default();

    // Figure 1, line 1: df[df["price"] < 1_400_000]
    let threshold = 1_400_000.0;
    let price = df.column("price")?;
    let mask: Bitmap = (0..df.nrows())
        .map(|i| {
            price
                .get(i)
                .ok()
                .and_then(|v| v.as_f64())
                .is_none_or(|v| v < threshold) // keep nulls; drop outliers
        })
        .collect();
    let filtered = df.filter(&mask)?;
    println!(
        "removed {} outliers above ${threshold}",
        df.nrows() - filtered.nrows()
    );

    // Figure 1, line 2: plot(df, "price")
    let analysis = plot(&filtered, &["price"], &config)?;
    if let Some(inter) = analysis.get("stats") {
        print!("{}", eda_render::ascii::render("stats", inter));
    }
    for insight in &analysis.insights {
        println!("insight: {}", insight.message);
    }

    // Figure 1, part D: the how-to guide tells us how to change the bins.
    let guide = analysis.howto("histogram");
    println!("\n{guide}");

    // Figure 1, part E: re-run with more bins, copied from the guide.
    let custom = Config::from_pairs(vec![("hist.bins", "200")])?;
    let detailed = plot(&filtered, &["price"], &custom)?;
    let Some(Inter::Histogram { counts, .. }) = detailed.get("histogram") else {
        panic!("histogram expected");
    };
    println!("re-plotted histogram with {} bins", counts.len());

    let html = render_analysis_html(&detailed, &custom.display);
    let path = std::env::temp_dir().join("dataprep_house_prices.html");
    std::fs::write(&path, html)?;
    println!("wrote {}", path.display());
    Ok(())
}
