//! Time-series analysis on a bitcoin-shaped price series — the paper's
//! §7 future-work task ("stock price analysis"), implemented with the
//! same task-centric architecture, plus the sampling extension with its
//! user notification.
//!
//! Run with: `cargo run --example timeseries`

use dataprep_eda::prelude::*;
use eda_dataframe::Column;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic daily price series: trend + weekly seasonality + noise.
    let n = 2000usize;
    let t: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let price: Vec<f64> = (0..n)
        .map(|i| {
            let trend = 0.4 * i as f64;
            let weekly = 25.0 * (std::f64::consts::TAU * i as f64 / 7.0).sin();
            let noise = ((i * 2654435761) % 1000) as f64 / 50.0;
            4000.0 + trend + weekly + noise
        })
        .collect();
    let df = DataFrame::new(vec![
        ("day".into(), Column::from_f64(t)),
        ("price".into(), Column::from_f64(price)),
    ])?;

    let config = Config::default();
    let analysis = plot_timeseries(&df, "day", "price", &config)?;
    if let Some(inter) = analysis.get("stats") {
        print!("{}", eda_render::ascii::render("stats", inter));
    }
    for insight in &analysis.insights {
        println!("insight: {}", insight.message);
    }

    // The sampling extension: analyze a 200-row systematic sample, with
    // the notification the paper's §7 asks for.
    let approx = Config::from_pairs(vec![("engine.sample_rows", "200")])?;
    let sampled = plot_timeseries(&df, "day", "price", &approx)?;
    println!("\nwith sampling:");
    for insight in &sampled.insights {
        println!("insight: {}", insight.message);
    }

    let html = render_analysis_html(&analysis, &config.display);
    let path = std::env::temp_dir().join("dataprep_timeseries.html");
    std::fs::write(&path, html)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
