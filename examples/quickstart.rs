//! Quickstart: load a CSV, run the three task-centric calls, write an
//! HTML panel.
//!
//! Run with: `cargo run --example quickstart`

use dataprep_eda::prelude::*;
use eda_dataframe::csv::{read_csv_str, CsvOptions};

const CSV: &str = "\
price,size,year_built,city,house_type
310000,120,1998,Burnaby,detached
450000,180,2005,Vancouver,detached
250000,95,1976,Surrey,apartment
420000,160,2011,Vancouver,townhouse
385000,140,2001,Burnaby,townhouse
295000,88,1985,Surrey,apartment
512000,210,2018,Vancouver,detached
330000,125,1995,Burnaby,apartment
,110,1990,Surrey,apartment
405000,150,,Vancouver,townhouse
372000,135,2003,Surrey,apartment
455000,170,2014,Vancouver,detached
267000,92,1981,Surrey,apartment
399000,149,2009,Burnaby,townhouse
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In real use: let df = read_csv("houses.csv")?;
    let df = read_csv_str(CSV, &CsvOptions::default())?;
    println!("loaded {} rows x {} columns", df.nrows(), df.ncols());
    println!("{df}");

    let config = Config::default();

    // Task 1: "I want an overview of the dataset."
    let overview = plot(&df, &[], &config)?;
    println!("overview produced: {:?}", overview.chart_names());

    // Task 2: "I want to understand price."
    let price = plot(&df, &["price"], &config)?;
    for (name, inter) in price.intermediates.iter() {
        if name == "stats" || name == "histogram" {
            print!("{}", eda_render::ascii::render(name, inter));
        }
    }

    // Task 3: correlation + missing overviews.
    let corr = plot_correlation(&df, &[], &config)?;
    let missing = plot_missing(&df, &[], &config)?;
    println!(
        "correlation charts: {:?}; missing charts: {:?}",
        corr.chart_names(),
        missing.chart_names()
    );

    // Write the univariate panel as a self-contained HTML page.
    let html = render_analysis_html(&price, &config.display);
    let path = std::env::temp_dir().join("dataprep_quickstart.html");
    std::fs::write(&path, html)?;
    println!("wrote {}", path.display());
    Ok(())
}
