//! Correlation analysis for feature selection (paper §3.1): find features
//! correlated with the target and redundant feature pairs.
//!
//! Run with: `cargo run --example feature_selection`

use dataprep_eda::prelude::*;
use eda_dataframe::Column;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Features with known structure: size drives price; rooms ≈ size
    // (redundant); noise is irrelevant.
    let n = 5000;
    let size: Vec<f64> = (0..n).map(|i| 60.0 + ((i * 37) % 200) as f64).collect();
    let rooms: Vec<f64> = size.iter().map(|s| (s / 35.0).round()).collect();
    let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
    let price: Vec<f64> = size
        .iter()
        .zip(&noise)
        .map(|(s, e)| 2500.0 * s + 40.0 * e + 100_000.0)
        .collect();
    let df = DataFrame::new(vec![
        ("size".into(), Column::from_f64(size)),
        ("rooms".into(), Column::from_f64(rooms)),
        ("noise".into(), Column::from_f64(noise)),
        ("price".into(), Column::from_f64(price)),
    ])?;
    let config = Config::default();

    // Overview: the full matrices.
    let overview = plot_correlation(&df, &[], &config)?;
    if let Some(inter) = overview.get("correlation_matrix:Pearson") {
        print!("{}", eda_render::ascii::render("pearson", inter));
    }
    for insight in &overview.insights {
        println!("insight: {}", insight.message);
    }

    // Detail: how does everything correlate with the target?
    let target = plot_correlation(&df, &["price"], &config)?;
    let Some(Inter::CorrVectors(vectors)) = target.get("correlation_vectors") else {
        panic!("vectors expected");
    };
    println!("\ncorrelation with price:");
    for (method, entries) in vectors {
        let formatted: Vec<String> = entries
            .iter()
            .map(|(c, r)| format!("{c}={}", r.map_or("-".into(), |v| format!("{v:.2}"))))
            .collect();
        println!("  {method}: {}", formatted.join("  "));
    }

    // Pair: the regression line for the strongest feature.
    let pair = plot_correlation(&df, &["size", "price"], &config)?;
    if let Some(Inter::RegressionScatter { slope, intercept, r2, .. }) =
        pair.get("regression_scatter")
    {
        println!("\nprice ≈ {slope:.0} * size + {intercept:.0}   (R² = {r2:.3})");
    }
    Ok(())
}
