//! Full profile report on a titanic-shaped dataset: the single-graph
//! `create_report` plus the self-contained HTML page, with the execution
//! stats that explain the Table 2 speedups.
//!
//! Run with: `cargo run --example profile_report`

use dataprep_eda::prelude::*;
use eda_datagen::{generate, kaggle_spec_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = kaggle_spec_by_name("titanic").expect("table 2 dataset");
    let df = generate(&spec, 42);
    println!("profiling {} ({} rows x {} cols)", spec.name, df.nrows(), df.ncols());

    let config = Config::default();
    let report = create_report(&df, &config)?;

    println!(
        "sections: overview({}) + {} variables + {} correlation matrices + missing({})",
        report.overview.len(),
        report.variables.len(),
        report.correlations.len(),
        report.missing.len()
    );
    println!(
        "one shared graph: {} tasks executed, {} insertions deduplicated (CSE), {:.3}s",
        report.stats.tasks_run,
        report.stats.cse_hits,
        report.stats.elapsed.as_secs_f64()
    );
    for insight in report.insights.iter().take(8) {
        println!("insight: {}", insight.message);
    }

    let html = render_report_html(&report, &config.display);
    let path = std::env::temp_dir().join("dataprep_report.html");
    std::fs::write(&path, html)?;
    println!("wrote {}", path.display());
    Ok(())
}
