//! # dataprep-eda
//!
//! A Rust reproduction of **DataPrep.EDA: Task-Centric Exploratory Data
//! Analysis for Statistical Modeling in Python** (SIGMOD 2021).
//!
//! One function call = one EDA task:
//!
//! ```
//! use dataprep_eda::prelude::*;
//!
//! // The paper's running example: house-price data.
//! let df = DataFrame::new(vec![
//!     ("price".into(), Column::from_f64(vec![310_000.0, 450_000.0, 250_000.0, 420_000.0])),
//!     ("size".into(), Column::from_f64(vec![120.0, 180.0, 95.0, 160.0])),
//!     ("city".into(), Column::from_strs(&["Burnaby", "Vancouver", "Surrey", "Vancouver"])),
//! ]).unwrap();
//!
//! let config = Config::default();
//! let overview = plot(&df, &[], &config).unwrap();          // "an overview of the dataset"
//! let univariate = plot(&df, &["price"], &config).unwrap(); // "I want to understand price"
//! assert!(univariate.get("histogram").is_some());
//! let corr = plot_correlation(&df, &[], &config).unwrap();  // correlation overview
//! let missing = plot_missing(&df, &[], &config).unwrap();   // missing-value overview
//! # let _ = (overview, corr, missing);
//! ```
//!
//! The workspace mirrors the paper's architecture; see DESIGN.md for the
//! crate inventory and EXPERIMENTS.md for the reproduced tables/figures.

#![warn(missing_docs)]

pub use eda_baseline as baseline;
pub use eda_core as core;
pub use eda_dataframe as dataframe;
pub use eda_datagen as datagen;
pub use eda_io as io;
pub use eda_render as render;
pub use eda_stats as stats;
pub use eda_studysim as studysim;
pub use eda_taskgraph as taskgraph;

/// The most common imports in one place.
pub mod prelude {
    pub use eda_core::{
        convert_to_edaf, create_report, create_report_handle, load_csv, load_data,
        metrics_snapshot, plot, plot_correlation, plot_handle, plot_missing, plot_timeseries,
        Analysis, AnalysisHandle, Config, Insight, Inter, MetricsSnapshot, Report, SemanticType,
        TaskKind,
    };
    pub use eda_dataframe::{csv::read_csv, Column, DataFrame};
    pub use eda_render::{render_analysis_html, render_report_html};
}
