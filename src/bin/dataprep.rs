//! `dataprep` — a command-line front end for the task-centric EDA API.
//!
//! ```text
//! dataprep report <data> [-o report.html] [-c key=value]... [--metrics out.prom|out.json]
//! dataprep plot <data> [col] [col2] [-o out.html] [-c key=value]...
//! dataprep corr <data> [col] [col2] [-o out.html]
//! dataprep missing <data> [col] [col2] [-o out.html]
//! dataprep ts <data> <time-col> <value-col> [-o out.html]
//! dataprep convert <in.csv> <out.edaf> [-c key=value]...
//! ```
//!
//! `<data>` is a CSV file, or an `.edaf` binary columnar file (written
//! by `convert`) whose columns load without re-parsing. CSV ingestion
//! honours `engine.ingest_chunk_bytes` / `engine.workers` /
//! `engine.mmap` for chunked parallel loads.
//!
//! Single-column tasks also print their stats tables and charts to the
//! terminal (ASCII), mirroring the notebook experience of the paper's
//! Figure 1 for shell users.

use std::process::ExitCode;

use dataprep_eda::prelude::*;
use eda_render::ascii;

struct Args {
    command: String,
    positional: Vec<String>,
    output: Option<String>,
    config_pairs: Vec<(String, String)>,
    metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut positional = Vec::new();
    let mut output = None;
    let mut config_pairs = Vec::new();
    let mut metrics = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-o" | "--output" => {
                output = Some(argv.next().ok_or("missing value after -o")?);
            }
            "-c" | "--config" => {
                let pair = argv.next().ok_or("missing value after -c")?;
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
                config_pairs.push((k.to_string(), v.to_string()));
            }
            "--metrics" => {
                metrics = Some(argv.next().ok_or("missing value after --metrics")?);
            }
            "-h" | "--help" => return Err(usage()),
            _ => positional.push(a),
        }
    }
    Ok(Args { command, positional, output, config_pairs, metrics })
}

fn usage() -> String {
    "usage:\n  dataprep report  <data> [-o report.html] [-c key=value]...\n  \
     dataprep plot    <data> [col] [col2] [-o out.html] [-c key=value]...\n  \
     dataprep corr    <data> [col] [col2] [-o out.html]\n  \
     dataprep missing <data> [col] [col2] [-o out.html]\n  \
     dataprep ts      <data> <time-col> <value-col> [-o out.html]\n  \
     dataprep convert <in.csv> <out.edaf> [-c key=value]...\n\n\
     <data> is a CSV file or an .edaf columnar file written by convert\n\
     config keys are the how-to-guide keys, e.g. -c hist.bins=200 or -c engine.ingest_chunk_bytes=4194304\n\
     --metrics <path> dumps process telemetry after the run (.json = JSON, else Prometheus text)"
        .to_string()
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let path = args.positional.first().ok_or("missing <data> argument")?;

    let mut config = Config::default();
    for (k, v) in &args.config_pairs {
        config.set(k, v).map_err(|e| e.to_string())?;
    }

    if args.command == "convert" {
        let [input, output] = args.positional.as_slice() else {
            return Err("convert needs <in.csv> <out.edaf>".into());
        };
        let info =
            convert_to_edaf(input, output, &config).map_err(|e| format!("converting {input}: {e}"))?;
        let in_bytes = std::fs::metadata(input).map_or(0, |m| m.len());
        eprintln!(
            "wrote {output}: {} rows x {} columns, {} -> {} bytes",
            info.nrows,
            info.ncols(),
            in_bytes,
            info.file_bytes
        );
        return Ok(());
    }

    let df = load_data(path, &config).map_err(|e| format!("reading {path}: {e}"))?;
    eprintln!("loaded {path}: {} rows x {} columns", df.nrows(), df.ncols());

    // `--metrics <path>` implies the knob: dumping an all-zero registry
    // because the run never opted in would only confuse.
    if args.metrics.is_some() {
        config.set("engine.metrics", "true").map_err(|e| e.to_string())?;
    }
    let columns: Vec<&str> = args.positional[1..].iter().map(String::as_str).collect();

    let html = match args.command.as_str() {
        "report" => {
            let report = create_report(&df, &config).map_err(|e| e.to_string())?;
            eprintln!(
                "{} tasks executed, {} shared, {:.3}s",
                report.stats.tasks_run,
                report.stats.cse_hits,
                report.stats.elapsed.as_secs_f64()
            );
            for i in &report.insights {
                println!("insight: {}", i.message);
            }
            render_report_html(&report, &config.display)
        }
        "plot" | "corr" | "missing" => {
            let analysis = match args.command.as_str() {
                "plot" => plot(&df, &columns, &config),
                "corr" => plot_correlation(&df, &columns, &config),
                _ => plot_missing(&df, &columns, &config),
            }
            .map_err(|e| e.to_string())?;
            for (name, inter) in analysis.intermediates.iter() {
                print!("{}", ascii::render(name, inter));
            }
            for i in &analysis.insights {
                println!("insight: {}", i.message);
            }
            render_analysis_html(&analysis, &config.display)
        }
        "ts" => {
            let [_, time, value] = args.positional.as_slice() else {
                return Err("ts needs <data.csv> <time-col> <value-col>".into());
            };
            let analysis =
                plot_timeseries(&df, time, value, &config).map_err(|e| e.to_string())?;
            for (name, inter) in analysis.intermediates.iter() {
                print!("{}", ascii::render(name, inter));
            }
            for i in &analysis.insights {
                println!("insight: {}", i.message);
            }
            render_analysis_html(&analysis, &config.display)
        }
        other => return Err(format!("unknown command {other:?}\n\n{}", usage())),
    };

    if let Some(out) = &args.output {
        std::fs::write(out, html).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if let Some(out) = &args.metrics {
        // `.json` gets the JSON export; anything else the Prometheus
        // text exposition format (the `/metrics` endpoint payload).
        let snap = metrics_snapshot();
        let body = if out.ends_with(".json") { snap.to_json() } else { snap.to_prometheus() };
        std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
