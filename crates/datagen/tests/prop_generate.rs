//! Property-based tests for the dataset generator: shapes, missing
//! rates, and determinism over arbitrary specs.

use eda_datagen::spec::quick::*;
use eda_datagen::{generate, DatasetSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (
        1usize..400,
        0.0f64..0.5,
        2usize..30,
        prop::sample::select(vec![0u8, 1, 2, 3, 4, 5, 6]),
    )
        .prop_map(|(rows, missing, cardinality, kind)| {
            let column = match kind {
                0 => normal("col", 5.0, 2.0, missing),
                1 => lognormal("col", 1.0, 0.5, missing),
                2 => uniform("col", -10.0, 10.0, missing),
                3 => ints("col", -50, 50, missing),
                4 => cat("col", cardinality, missing),
                5 => text("col", 3, cardinality, missing),
                _ => boolean("col", 0.4, missing),
            };
            DatasetSpec { name: "prop".into(), rows, columns: vec![column] }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_shape_matches_spec(spec in arb_spec(), seed in any::<u64>()) {
        let df = generate(&spec, seed);
        prop_assert_eq!(df.nrows(), spec.rows);
        prop_assert_eq!(df.ncols(), 1);
    }

    #[test]
    fn determinism(spec in arb_spec(), seed in any::<u64>()) {
        prop_assert_eq!(generate(&spec, seed), generate(&spec, seed));
    }

    #[test]
    fn missing_rate_within_tolerance(spec in arb_spec(), seed in any::<u64>()) {
        let df = generate(&spec, seed);
        let rate = df.column("col").unwrap().null_count() as f64 / spec.rows.max(1) as f64;
        let expected = spec.columns[0].missing_rate;
        // Binomial noise bound: 4 standard deviations plus slack for tiny n.
        let sigma = (expected * (1.0 - expected) / spec.rows as f64).sqrt();
        prop_assert!(
            (rate - expected).abs() <= 4.0 * sigma + 0.08,
            "rate {rate} vs expected {expected} (n = {})",
            spec.rows
        );
    }

    #[test]
    fn scaled_specs_generate_scaled_frames(spec in arb_spec(), factor in 0.05f64..3.0) {
        let scaled = spec.scaled(factor);
        let df = generate(&scaled, 7);
        prop_assert_eq!(df.nrows(), scaled.rows);
        prop_assert!(scaled.rows >= 10);
    }
}
