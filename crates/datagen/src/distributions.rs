//! Sampling primitives (kept dependency-light: only `rand`'s uniform
//! source; shapes like normal and Zipf are derived here).

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Precomputed cumulative weights for Zipf-like categorical sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build for `n` categories with popularity `1 / rank^exponent`.
    pub fn new(n: usize, exponent: f64) -> ZipfTable {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Sample a category index in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_is_skewed() {
        let t = ZipfTable::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let t = ZipfTable::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 200.0, "{counts:?}");
        }
    }

    #[test]
    fn zipf_single_category() {
        let t = ZipfTable::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 0);
    }
}
