//! Synthetic clones of the paper's 15 Kaggle datasets (Table 2).
//!
//! Shapes (#rows, #numeric/#categorical columns) are copied from the
//! table itself; cardinalities and missing rates follow the well-known
//! character of each dataset (e.g. `titanic` has a heavily-missing age
//! column, `rain` is missing-rich, `hotel` has many categoricals).

use crate::spec::quick::*;
use crate::spec::{ColumnSpec, DatasetSpec};

/// Build a spec with `n_num` numeric and `n_cat` categorical columns,
/// varying distribution families and cardinalities deterministically.
fn shaped(
    name: &str,
    rows: usize,
    n_num: usize,
    n_cat: usize,
    missing_rate: f64,
    max_cardinality: usize,
) -> DatasetSpec {
    let mut columns: Vec<ColumnSpec> = Vec::with_capacity(n_num + n_cat);
    for i in 0..n_num {
        // Rotate distribution families so datasets exercise all kernels.
        let missing = if i % 3 == 0 { missing_rate } else { 0.0 };
        columns.push(match i % 4 {
            0 => normal(&format!("num{i}"), 50.0 * (i + 1) as f64, 10.0, missing),
            1 => lognormal(&format!("num{i}"), 2.0, 0.8, missing),
            2 => uniform(&format!("num{i}"), 0.0, 1000.0, missing),
            _ => ints(&format!("num{i}"), 0, 5000, missing),
        });
    }
    for i in 0..n_cat {
        let missing = if i % 4 == 1 { missing_rate } else { 0.0 };
        let cardinality = [3, 8, 25, max_cardinality][i % 4].max(2);
        if i % 5 == 4 {
            columns.push(text(&format!("cat{i}"), 4, 200, missing));
        } else {
            columns.push(cat(&format!("cat{i}"), cardinality, missing));
        }
    }
    DatasetSpec { name: name.into(), rows, columns }
}

/// The 15 dataset shapes of the paper's Table 2, in table order.
pub fn kaggle_specs() -> Vec<DatasetSpec> {
    vec![
        shaped("heart", 303, 14, 0, 0.01, 10),
        shaped("diabetes", 768, 9, 0, 0.0, 10),
        shaped("automobile", 205, 10, 16, 0.05, 30),
        shaped("titanic", 891, 7, 5, 0.20, 100),
        shaped("women", 8_553, 5, 5, 0.05, 60),
        shaped("credit", 30_000, 25, 0, 0.0, 10),
        shaped("solar", 33_000, 7, 4, 0.02, 20),
        shaped("suicide", 28_000, 6, 6, 0.03, 100),
        shaped("diamonds", 54_000, 8, 3, 0.0, 8),
        shaped("chess", 20_000, 6, 10, 0.02, 400),
        shaped("adult", 49_000, 6, 9, 0.02, 40),
        shaped("basketball", 53_000, 21, 10, 0.05, 300),
        shaped("conflicts", 34_000, 10, 15, 0.10, 200),
        shaped("rain", 142_000, 17, 7, 0.15, 50),
        shaped("hotel", 119_000, 20, 12, 0.08, 180),
    ]
}

/// Look up one of the Table 2 specs by name.
pub fn kaggle_spec_by_name(name: &str) -> Option<DatasetSpec> {
    kaggle_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The (rows, numeric, categorical) shape for each dataset as printed
    /// in the paper's Table 2.
    const TABLE2: &[(&str, usize, usize, usize)] = &[
        ("heart", 303, 14, 0),
        ("diabetes", 768, 9, 0),
        ("automobile", 205, 10, 16),
        ("titanic", 891, 7, 5),
        ("women", 8_553, 5, 5),
        ("credit", 30_000, 25, 0),
        ("solar", 33_000, 7, 4),
        ("suicide", 28_000, 6, 6),
        ("diamonds", 54_000, 8, 3),
        ("chess", 20_000, 6, 10),
        ("adult", 49_000, 6, 9),
        ("basketball", 53_000, 21, 10),
        ("conflicts", 34_000, 10, 15),
        ("rain", 142_000, 17, 7),
        ("hotel", 119_000, 20, 12),
    ];

    #[test]
    fn fifteen_datasets_matching_table2_shapes() {
        let specs = kaggle_specs();
        assert_eq!(specs.len(), 15);
        for ((name, rows, n, c), spec) in TABLE2.iter().zip(&specs) {
            assert_eq!(&spec.name, name);
            assert_eq!(spec.rows, *rows, "{name} rows");
            assert_eq!(spec.nc_split(), (*n, *c), "{name} N/C split");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(kaggle_spec_by_name("titanic").is_some());
        assert!(kaggle_spec_by_name("nonexistent").is_none());
    }

    #[test]
    fn generated_titanic_has_missing_values() {
        let spec = kaggle_spec_by_name("titanic").unwrap();
        let df = crate::generate(&spec, 1);
        assert!(df.total_null_count() > 0);
        assert_eq!(df.nrows(), 891);
        assert_eq!(df.ncols(), 12);
    }

    #[test]
    fn column_names_unique_in_all_specs() {
        for spec in kaggle_specs() {
            let mut names: Vec<&str> = spec.columns.iter().map(|c| c.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), spec.columns.len(), "{}", spec.name);
        }
    }
}
