//! # eda-datagen
//!
//! Deterministic synthetic dataset generators for the `dataprep-eda`
//! experiments.
//!
//! The paper evaluates on 15 Kaggle datasets (Table 2), the 4.7M-row
//! bitcoin dataset (Figure 6), and two user-study datasets (§6.3). Those
//! files cannot ship with this repository, so each is replaced by a
//! generator parameterized to the dataset's **published shape** — row
//! count, numeric/categorical column split, cardinalities, missing rates —
//! which is what the paper's performance results depend on (see DESIGN.md,
//! "Substitutions"). Every generator is seeded, so runs are reproducible.

#![warn(missing_docs)]

pub mod bitcoin;
pub mod distributions;
pub mod generator;
pub mod kaggle;
pub mod spec;
pub mod userstudy;

pub use generator::generate;
pub use kaggle::{kaggle_specs, kaggle_spec_by_name};
pub use spec::{ColumnSpec, DatasetSpec, Distribution};
