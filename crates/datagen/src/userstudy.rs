//! The two user-study dataset shapes (paper §6.3).
//!
//! * **BirdStrike**: ~220K strike reports × 12 columns (the "small"
//!   dataset of the study).
//! * **DelayedFlights**: ~5.8M records × 14 columns (the "complex"
//!   dataset; Pandas-profiling visibly fails to scale on it, which drives
//!   the study's headline numbers).

use crate::spec::quick::*;
use crate::spec::DatasetSpec;

/// BirdStrike-shaped spec (row count configurable for scaled runs).
pub fn birdstrike_spec(rows: usize) -> DatasetSpec {
    DatasetSpec {
        name: "BirdStrike".into(),
        rows,
        columns: vec![
            ints("record_id", 1, 10_000_000, 0.0),
            cat("airport", 2_360, 0.01),
            cat("state", 52, 0.02),
            cat("species", 600, 0.05),
            cat("phase_of_flight", 8, 0.10),
            cat("sky", 4, 0.08),
            normal("height_ft", 800.0, 900.0, 0.15),
            normal("speed_knots", 140.0, 40.0, 0.20),
            ints("engines", 1, 4, 0.05),
            lognormal("repair_cost", 8.0, 2.0, 0.40),
            boolean("damage", 0.35, 0.0),
            text("remarks", 8, 400, 0.25),
        ],
    }
}

/// Original BirdStrike row count.
pub const BIRDSTRIKE_ROWS: usize = 220_000;

/// DelayedFlights-shaped spec.
pub fn delayed_flights_spec(rows: usize) -> DatasetSpec {
    DatasetSpec {
        name: "DelayedFlights".into(),
        rows,
        columns: vec![
            ints("year", 2008, 2008, 0.0),
            ints("month", 1, 12, 0.0),
            ints("day_of_week", 1, 7, 0.0),
            cat("carrier", 20, 0.0),
            cat("origin", 300, 0.0),
            cat("dest", 300, 0.0),
            normal("dep_delay", 10.0, 35.0, 0.02),
            normal("arr_delay", 8.0, 38.0, 0.02),
            normal("distance", 730.0, 560.0, 0.0),
            normal("air_time", 104.0, 67.0, 0.02),
            lognormal("carrier_delay", 2.0, 1.5, 0.78),
            lognormal("weather_delay", 1.0, 1.5, 0.78),
            lognormal("nas_delay", 1.5, 1.4, 0.78),
            boolean("cancelled", 0.02, 0.0),
        ],
    }
}

/// Original DelayedFlights row count.
pub const DELAYED_FLIGHTS_ROWS: usize = 5_819_079;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birdstrike_shape() {
        let spec = birdstrike_spec(1000);
        assert_eq!(spec.columns.len(), 12);
        let df = crate::generate(&spec, 1);
        assert_eq!(df.nrows(), 1000);
        // Heavy missingness in repair_cost.
        let rate = df.column("repair_cost").unwrap().null_count() as f64 / 1000.0;
        assert!(rate > 0.3, "rate {rate}");
    }

    #[test]
    fn delayed_flights_shape() {
        let spec = delayed_flights_spec(500);
        assert_eq!(spec.columns.len(), 14);
        let df = crate::generate(&spec, 1);
        assert_eq!(df.nrows(), 500);
    }

    #[test]
    fn complex_dataset_is_larger() {
        // Compile-time property of the published row counts.
        const { assert!(DELAYED_FLIGHTS_ROWS > BIRDSTRIKE_ROWS * 20) };
    }
}
