//! Dataset shape specifications.

/// How one column's values are distributed.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Gaussian floats.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Log-normal floats (right-skewed, e.g. prices).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std of the underlying normal.
        sigma: f64,
    },
    /// Uniform floats over a range.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Uniform integers over an inclusive range.
    IntRange {
        /// Lower bound.
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Categorical labels with a Zipf-like popularity skew.
    Categorical {
        /// Number of distinct categories.
        cardinality: usize,
        /// Zipf exponent (0 = uniform; ~1 = natural skew).
        exponent: f64,
    },
    /// Short text values of several words (exercises the word kernels).
    Text {
        /// Words per value.
        words: usize,
        /// Vocabulary size.
        vocabulary: usize,
    },
    /// Booleans with the given probability of `true`.
    Bool {
        /// P(true).
        p_true: f64,
    },
}

/// One column of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Value distribution.
    pub distribution: Distribution,
    /// Fraction of rows that are null.
    pub missing_rate: f64,
}

impl ColumnSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, distribution: Distribution, missing_rate: f64) -> Self {
        ColumnSpec { name: name.into(), distribution, missing_rate }
    }

    /// Whether the generated column is numeric storage.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.distribution,
            Distribution::Normal { .. }
                | Distribution::LogNormal { .. }
                | Distribution::Uniform { .. }
                | Distribution::IntRange { .. }
        )
    }
}

/// A full synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (matches the paper's Table 2 where applicable).
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column specifications.
    pub columns: Vec<ColumnSpec>,
}

impl DatasetSpec {
    /// Count of `(numeric, categorical)` columns — the `N/C` split the
    /// paper's Table 2 reports.
    pub fn nc_split(&self) -> (usize, usize) {
        let n = self.columns.iter().filter(|c| c.is_numeric()).count();
        (n, self.columns.len() - n)
    }

    /// Scale the row count by a factor (used to run the benchmarks at
    /// reduced size on small machines).
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        DatasetSpec {
            name: self.name.clone(),
            rows: ((self.rows as f64 * factor) as usize).max(10),
            columns: self.columns.clone(),
        }
    }
}

/// Helpers to cut down the noise of building many column specs.
pub mod quick {
    use super::*;

    /// Normal numeric column.
    pub fn normal(name: &str, mean: f64, std: f64, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::Normal { mean, std }, missing)
    }

    /// Log-normal numeric column.
    pub fn lognormal(name: &str, mu: f64, sigma: f64, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::LogNormal { mu, sigma }, missing)
    }

    /// Uniform numeric column.
    pub fn uniform(name: &str, lo: f64, hi: f64, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::Uniform { lo, hi }, missing)
    }

    /// Integer column.
    pub fn ints(name: &str, lo: i64, hi: i64, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::IntRange { lo, hi }, missing)
    }

    /// Categorical column.
    pub fn cat(name: &str, cardinality: usize, missing: f64) -> ColumnSpec {
        ColumnSpec::new(
            name,
            Distribution::Categorical { cardinality, exponent: 1.0 },
            missing,
        )
    }

    /// Text column.
    pub fn text(name: &str, words: usize, vocabulary: usize, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::Text { words, vocabulary }, missing)
    }

    /// Boolean column.
    pub fn boolean(name: &str, p_true: f64, missing: f64) -> ColumnSpec {
        ColumnSpec::new(name, Distribution::Bool { p_true }, missing)
    }
}

#[cfg(test)]
mod tests {
    use super::quick::*;
    use super::*;

    #[test]
    fn nc_split_counts() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 10,
            columns: vec![
                normal("a", 0.0, 1.0, 0.0),
                ints("b", 0, 5, 0.0),
                cat("c", 3, 0.0),
                boolean("d", 0.5, 0.0),
            ],
        };
        assert_eq!(spec.nc_split(), (2, 2));
    }

    #[test]
    fn scaled_changes_rows_only() {
        let spec = DatasetSpec {
            name: "t".into(),
            rows: 1000,
            columns: vec![normal("a", 0.0, 1.0, 0.0)],
        };
        let s = spec.scaled(0.1);
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns, spec.columns);
        // Floor of 10 rows.
        assert_eq!(spec.scaled(0.000001).rows, 10);
    }

    #[test]
    fn numeric_detection() {
        assert!(uniform("u", 0.0, 1.0, 0.0).is_numeric());
        assert!(lognormal("l", 0.0, 1.0, 0.0).is_numeric());
        assert!(!text("t", 3, 100, 0.0).is_numeric());
        assert!(!cat("c", 5, 0.0).is_numeric());
    }
}
