//! Spec → DataFrame generation.

use eda_dataframe::{Column, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::{standard_normal, ZipfTable};
use crate::spec::{ColumnSpec, DatasetSpec, Distribution};

/// Generate a dataframe from a spec, deterministically from `seed`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> DataFrame {
    let pairs: Vec<(String, Column)> = spec
        .columns
        .iter()
        .enumerate()
        .map(|(i, col)| {
            // Independent stream per column: column order changes never
            // perturb other columns' values.
            let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
            (col.name.clone(), generate_column(col, spec.rows, &mut rng))
        })
        .collect();
    DataFrame::new(pairs).expect("spec columns have unique names")
}

fn generate_column(spec: &ColumnSpec, rows: usize, rng: &mut StdRng) -> Column {
    let missing = spec.missing_rate.clamp(0.0, 1.0);
    let is_null = |rng: &mut StdRng| missing > 0.0 && rng.gen::<f64>() < missing;
    match &spec.distribution {
        Distribution::Normal { mean, std } => Column::from_opt_f64(
            (0..rows)
                .map(|_| {
                    if is_null(rng) {
                        None
                    } else {
                        Some(mean + std * standard_normal(rng))
                    }
                })
                .collect(),
        ),
        Distribution::LogNormal { mu, sigma } => Column::from_opt_f64(
            (0..rows)
                .map(|_| {
                    if is_null(rng) {
                        None
                    } else {
                        Some((mu + sigma * standard_normal(rng)).exp())
                    }
                })
                .collect(),
        ),
        Distribution::Uniform { lo, hi } => Column::from_opt_f64(
            (0..rows)
                .map(|_| {
                    if is_null(rng) {
                        None
                    } else {
                        Some(rng.gen_range(*lo..*hi))
                    }
                })
                .collect(),
        ),
        Distribution::IntRange { lo, hi } => Column::from_opt_i64(
            (0..rows)
                .map(|_| {
                    if is_null(rng) {
                        None
                    } else {
                        Some(rng.gen_range(*lo..=*hi))
                    }
                })
                .collect(),
        ),
        Distribution::Categorical { cardinality, exponent } => {
            let table = ZipfTable::new(*cardinality, *exponent);
            Column::from_opt_string(
                (0..rows)
                    .map(|_| {
                        if is_null(rng) {
                            None
                        } else {
                            Some(format!("{}_{}", spec.name, table.sample(rng)))
                        }
                    })
                    .collect(),
            )
        }
        Distribution::Text { words, vocabulary } => {
            let table = ZipfTable::new(*vocabulary, 1.0);
            Column::from_opt_string(
                (0..rows)
                    .map(|_| {
                        if is_null(rng) {
                            None
                        } else {
                            let text: Vec<String> = (0..*words)
                                .map(|_| format!("word{}", table.sample(rng)))
                                .collect();
                            Some(text.join(" "))
                        }
                    })
                    .collect(),
            )
        }
        Distribution::Bool { p_true } => Column::from_opt_bool(
            (0..rows)
                .map(|_| {
                    if is_null(rng) {
                        None
                    } else {
                        Some(rng.gen::<f64>() < *p_true)
                    }
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::quick::*;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            rows: 2000,
            columns: vec![
                normal("n", 10.0, 2.0, 0.1),
                lognormal("ln", 0.0, 1.0, 0.0),
                uniform("u", -1.0, 1.0, 0.0),
                ints("i", 0, 100, 0.05),
                cat("c", 7, 0.02),
                text("t", 3, 50, 0.0),
                boolean("b", 0.3, 0.0),
            ],
        }
    }

    #[test]
    fn shape_matches_spec() {
        let df = generate(&spec(), 42);
        assert_eq!(df.nrows(), 2000);
        assert_eq!(df.ncols(), 7);
        assert_eq!(df.column("n").unwrap().dtype(), eda_dataframe::DataType::Float64);
        assert_eq!(df.column("i").unwrap().dtype(), eda_dataframe::DataType::Int64);
        assert_eq!(df.column("c").unwrap().dtype(), eda_dataframe::DataType::Str);
        assert_eq!(df.column("b").unwrap().dtype(), eda_dataframe::DataType::Bool);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&spec(), 42);
        let b = generate(&spec(), 42);
        assert_eq!(a, b);
        let c = generate(&spec(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn missing_rates_approximate_spec() {
        let df = generate(&spec(), 7);
        let rate = |name: &str| df.column(name).unwrap().null_count() as f64 / 2000.0;
        assert!((rate("n") - 0.1).abs() < 0.03, "n: {}", rate("n"));
        assert!((rate("i") - 0.05).abs() < 0.02);
        assert_eq!(rate("ln"), 0.0);
    }

    #[test]
    fn distributions_have_expected_shapes() {
        let df = generate(&spec(), 9);
        let n = df.column("n").unwrap().numeric_nonnull().unwrap();
        let mean = n.iter().sum::<f64>() / n.len() as f64;
        assert!((mean - 10.0).abs() < 0.3);
        // Log-normal values are positive and right-skewed.
        let ln = df.column("ln").unwrap().numeric_nonnull().unwrap();
        assert!(ln.iter().all(|&v| v > 0.0));
        let ln_mean = ln.iter().sum::<f64>() / ln.len() as f64;
        let mut sorted = ln.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(ln_mean > median, "right skew: mean {ln_mean} > median {median}");
        // Uniform bounds.
        let u = df.column("u").unwrap().numeric_nonnull().unwrap();
        assert!(u.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn categorical_cardinality_respected() {
        let df = generate(&spec(), 5);
        let mut seen = std::collections::HashSet::new();
        for v in df.column("c").unwrap().display_iter().flatten() {
            seen.insert(v);
        }
        assert!(seen.len() <= 7);
        assert!(seen.len() >= 5); // popular categories all appear
    }

    #[test]
    fn column_streams_are_independent() {
        // Reordering columns must not change per-column content.
        let mut reordered = spec();
        reordered.columns.swap(1, 2);
        let a = generate(&spec(), 42);
        let b = generate(&reordered, 42);
        // Column "n" is at index 0 in both: identical values.
        assert_eq!(a.column("n").unwrap(), b.column("n").unwrap());
    }
}
