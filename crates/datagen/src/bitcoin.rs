//! The bitcoin historical-data dataset shape (paper §6.2, Figure 6).
//!
//! The Kaggle original has ~4.7M rows × 8 columns of minute-bar market
//! data: timestamp, OHLC prices, volumes, and weighted price. All columns
//! are numeric, which is exactly why the paper uses it for the engine and
//! scalability experiments.

use crate::spec::quick::*;
use crate::spec::DatasetSpec;

/// Rows of the original dataset.
pub const BITCOIN_ROWS: usize = 4_700_000;

/// The bitcoin-shaped spec with a configurable row count (the paper's
/// Figure 6(b) duplicates it up to 100M rows; small machines scale down).
pub fn bitcoin_spec(rows: usize) -> DatasetSpec {
    DatasetSpec {
        name: "bitcoin".into(),
        rows,
        columns: vec![
            ints("timestamp", 1_325_000_000, 1_610_000_000, 0.0),
            lognormal("open", 6.0, 1.5, 0.01),
            lognormal("high", 6.0, 1.5, 0.01),
            lognormal("low", 6.0, 1.5, 0.01),
            lognormal("close", 6.0, 1.5, 0.01),
            lognormal("volume_btc", 1.0, 1.2, 0.01),
            lognormal("volume_currency", 7.0, 1.4, 0.01),
            lognormal("weighted_price", 6.0, 1.5, 0.01),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_eight_numeric_columns() {
        let spec = bitcoin_spec(1000);
        assert_eq!(spec.columns.len(), 8);
        assert_eq!(spec.nc_split(), (8, 0));
    }

    #[test]
    fn generates_positive_prices() {
        let df = crate::generate(&bitcoin_spec(500), 3);
        assert_eq!(df.nrows(), 500);
        let close = df.column("close").unwrap().numeric_nonnull().unwrap();
        assert!(close.iter().all(|&v| v > 0.0));
    }
}
