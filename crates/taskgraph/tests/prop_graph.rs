//! Property-based tests for the task-graph engine: every execution
//! strategy computes the same values on randomly shaped DAGs, CSE never
//! changes results, and dead-node pruning never executes unreachable work.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eda_taskgraph::graph::{NodeId, Payload, TaskGraph};
use eda_taskgraph::key::TaskKey;
use eda_taskgraph::morsel;
use eda_taskgraph::scheduler::{run_pool, run_single_thread};
use proptest::prelude::*;

fn int(v: i64) -> Payload {
    Arc::new(v)
}

fn get(p: &Payload) -> i64 {
    *p.downcast_ref::<i64>().expect("i64")
}

/// A random DAG spec: `ops[k] = (opcode, dep_a, dep_b)` where deps point
/// at earlier nodes (or sources when the graph is still small).
#[derive(Debug, Clone)]
struct DagSpec {
    sources: Vec<i64>,
    ops: Vec<(u8, usize, usize)>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    (
        prop::collection::vec(-100i64..100, 1..6),
        prop::collection::vec((0u8..3, any::<usize>(), any::<usize>()), 0..40),
    )
        .prop_map(|(sources, ops)| DagSpec { sources, ops })
}

/// Build the graph; returns all node ids in creation order.
fn build(spec: &DagSpec, dedup: bool) -> (TaskGraph, Vec<NodeId>) {
    let mut g = if dedup { TaskGraph::new() } else { TaskGraph::without_dedup() };
    let mut nodes: Vec<NodeId> = Vec::new();
    for (i, &v) in spec.sources.iter().enumerate() {
        nodes.push(g.source("src", TaskKey::leaf("src", i as u64), move || int(v)));
    }
    for &(code, a, b) in &spec.ops {
        let da = nodes[a % nodes.len()];
        let db = nodes[b % nodes.len()];
        let node = match code % 3 {
            0 => g.op("add", 0, vec![da, db], |d| int(get(&d[0]).wrapping_add(get(&d[1])))),
            1 => g.op("mul", 0, vec![da, db], |d| {
                int(get(&d[0]).wrapping_mul(get(&d[1])))
            }),
            _ => g.op("neg", 0, vec![da], |d| int(-get(&d[0]))),
        };
        nodes.push(node);
    }
    (g, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_schedulers_agree(spec in arb_dag(), workers in 1usize..5) {
        let (g, nodes) = build(&spec, true);
        let outputs = vec![*nodes.last().expect("non-empty"), nodes[0]];
        let single = run_single_thread(&g, &outputs);
        let pooled = run_pool(&g, &outputs, workers, Duration::ZERO);
        let single_out = single.outputs();
        let pooled_out = pooled.outputs();
        for (a, b) in single_out.iter().zip(&pooled_out) {
            prop_assert_eq!(get(a), get(b));
        }
        prop_assert_eq!(single.stats.tasks_run, pooled.stats.tasks_run);
    }

    #[test]
    fn dedup_never_changes_values(spec in arb_dag()) {
        let (g1, n1) = build(&spec, true);
        let (g2, n2) = build(&spec, false);
        let o1 = vec![*n1.last().expect("non-empty")];
        let o2 = vec![*n2.last().expect("non-empty")];
        let r1 = run_single_thread(&g1, &o1);
        let r2 = run_single_thread(&g2, &o2);
        prop_assert_eq!(get(&r1.outputs()[0]), get(&r2.outputs()[0]));
        // Dedup can only shrink the graph.
        prop_assert!(g1.len() <= g2.len());
    }

    #[test]
    fn pruning_skips_unreachable_tasks(spec in arb_dag()) {
        // Instrument every source with a counter, request only node 0.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        for (i, &v) in spec.sources.iter().enumerate() {
            let c = Arc::clone(&counter);
            nodes.push(g.source("src", TaskKey::leaf("src", i as u64), move || {
                c.fetch_add(1, Ordering::SeqCst);
                int(v)
            }));
        }
        let r = run_pool(&g, &[nodes[0]], 2, Duration::ZERO);
        prop_assert_eq!(get(&r.outputs()[0]), spec.sources[0]);
        prop_assert_eq!(counter.load(Ordering::SeqCst), 1);
        prop_assert_eq!(r.stats.pruned(), g.len() - 1);
    }

    #[test]
    fn repeated_execution_is_deterministic(spec in arb_dag()) {
        let (g, nodes) = build(&spec, true);
        let outputs = vec![*nodes.last().expect("non-empty")];
        let a = run_pool(&g, &outputs, 3, Duration::ZERO);
        let b = run_pool(&g, &outputs, 3, Duration::ZERO);
        prop_assert_eq!(get(&a.outputs()[0]), get(&b.outputs()[0]));
    }

    #[test]
    fn morsel_split_tiles_rows_in_order(
        nrows in 0usize..5000,
        row_bytes in 1usize..64,
        morsel_bytes in 0usize..4096,
    ) {
        // For ANY morsel size the stage driver must hand out ranges that
        // tile `0..nrows` exactly once, and fold them in index order —
        // so a morsel-split fold equals the whole-partition fold for
        // every mergeable accumulator, not just commutative ones.
        let _ctx = morsel::engage(morsel_bytes, None);
        let ranges = morsel::run_rows(
            nrows,
            row_bytes,
            |r| vec![r],
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        match ranges {
            // Declined: no splitting configured or the range fits in one
            // morsel — the caller keeps its legacy whole-slice path.
            None => {
                let per = morsel::morsel_rows(row_bytes, morsel_bytes);
                prop_assert!(morsel_bytes == 0 || per >= nrows || nrows == 0);
            }
            Some(rs) => {
                prop_assert!(rs.len() > 1);
                let mut next = 0usize;
                for r in &rs {
                    prop_assert_eq!(r.start, next);
                    prop_assert!(r.end > r.start);
                    next = r.end;
                }
                prop_assert_eq!(next, nrows);
            }
        }
    }
}
