//! Exporter round-trip tests: the telemetry and trace exporters are
//! hand-rolled (the workspace has no serde), so these tests parse their
//! output back with small in-test parsers instead of trusting the
//! writers — Prometheus text exposition, Chrome `trace_event` JSON with
//! hostile task names, and flamegraph collapsed stacks. Plus the
//! registry's concurrency contract: relaxed sharded counters must still
//! sum exactly once every writer has joined.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;

use eda_taskgraph::graph::Payload;
use eda_taskgraph::metrics::MetricsRegistry;
use eda_taskgraph::scheduler::{run_single_thread_opts, ExecOptions};
use eda_taskgraph::{TaskGraph, TaskKey};

// ---------------------------------------------------------------------
// A tiny Prometheus text-format parser: enough of exposition format
// 0.0.4 to check the exporter against (HELP/TYPE comments, plain
// samples, `name{le="..."} value` histogram samples).

#[derive(Debug, Default)]
struct PromFamily {
    help: Option<String>,
    kind: Option<String>,
    /// `(label value of le, sample value)`; `None` le for plain samples.
    samples: Vec<(Option<String>, f64)>,
}

fn parse_prometheus(text: &str) -> HashMap<String, PromFamily> {
    let mut families: HashMap<String, PromFamily> = HashMap::new();
    for line in text.lines() {
        assert_eq!(line.trim(), line, "stray whitespace in {line:?}");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            families.entry(name.into()).or_default().help = Some(help.into());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind:?}"
            );
            families.entry(name.into()).or_default().kind = Some(kind.into());
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample has value");
            let value: f64 = value.parse().expect("numeric sample value");
            let (name, le) = match series.split_once('{') {
                None => (series.to_string(), None),
                Some((name, labels)) => {
                    let le = labels
                        .strip_prefix("le=\"")
                        .and_then(|l| l.strip_suffix("\"}"))
                        .expect("only le labels are emitted");
                    // Histogram sample series attach to the family name.
                    (name.strip_suffix("_bucket").expect("labelled series are buckets").into(),
                     Some(le.to_string()))
                }
            };
            // _sum/_count fold into their histogram family.
            let family = name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .filter(|base| families.contains_key(*base))
                .unwrap_or(&name);
            families.entry(family.into()).or_default().samples.push((le, value));
        }
    }
    families
}

/// A registry with a known, non-trivial fill.
fn filled_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.runs_total.add(3);
    r.tasks_run_total.add(120);
    r.cache_hits_total.add(40);
    r.cache_misses_total.add(8);
    r.mem_peak_bytes.set(1 << 20);
    for us in [5, 90, 1_500, 1_500, 40_000] {
        r.task_duration_us.record(us);
    }
    r
}

#[test]
fn prometheus_output_round_trips_through_a_parser() {
    let registry = filled_registry();
    let snap = registry.snapshot();
    let families = parse_prometheus(&snap.to_prometheus());

    // Every exported series came back, fully annotated.
    for (name, _, value) in &snap.counters {
        let fam = &families[*name];
        assert_eq!(fam.kind.as_deref(), Some("counter"), "{name}");
        assert!(fam.help.is_some(), "{name} missing HELP");
        assert_eq!(fam.samples, vec![(None, *value as f64)], "{name}");
        assert!(name.ends_with("_total"), "counter {name} must end _total");
    }
    for (name, _, value) in &snap.gauges {
        let fam = &families[*name];
        assert_eq!(fam.kind.as_deref(), Some("gauge"), "{name}");
        assert_eq!(fam.samples, vec![(None, *value as f64)], "{name}");
    }
    for h in &snap.histograms {
        let fam = &families[h.name];
        assert_eq!(fam.kind.as_deref(), Some("histogram"), "{}", h.name);
        let buckets: Vec<(f64, f64)> = fam
            .samples
            .iter()
            .filter_map(|(le, v)| le.as_ref().map(|le| (parse_le(le), *v)))
            .collect();
        // Cumulative, non-decreasing, ending in an +Inf bucket == count.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "{}", h.name);
        let (last_le, last) = *buckets.last().expect("at least +Inf");
        assert!(last_le.is_infinite(), "{}", h.name);
        assert_eq!(last, h.count as f64, "{}", h.name);
        // The two plain samples are _sum then _count.
        let plain: Vec<f64> =
            fam.samples.iter().filter(|(le, _)| le.is_none()).map(|&(_, v)| v).collect();
        assert_eq!(plain, vec![h.sum as f64, h.count as f64], "{}", h.name);
    }
    // Nothing unaccounted for came out of the exporter.
    assert_eq!(
        families.len(),
        snap.counters.len() + snap.gauges.len() + snap.histograms.len()
    );
}

fn parse_le(le: &str) -> f64 {
    if le == "+Inf" { f64::INFINITY } else { le.parse().expect("numeric le") }
}

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON validator for the Chrome trace —
// rejects structural damage (the exact failure hostile task names cause
// when escaping is wrong) and collects every "name" string it sees.

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
    names: Vec<String>,
}

impl Json<'_> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => {
                self.string();
            }
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            other => panic!("byte {}: unexpected {other:?}", self.pos),
        }
    }

    fn object(&mut self) {
        self.pos += 1; // {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return;
        }
        loop {
            self.ws();
            let key = self.string();
            self.ws();
            assert_eq!(self.bytes.get(self.pos), Some(&b':'), "byte {}", self.pos);
            self.pos += 1;
            let collect = key == "name";
            let before = self.pos;
            self.value();
            if collect {
                // Re-parse the value we just consumed as the name string.
                let mut sub = Json { bytes: self.bytes, pos: before, names: Vec::new() };
                sub.ws();
                self.names.push(sub.string());
            }
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return;
                }
                other => panic!("byte {}: expected , or }} found {other:?}", self.pos),
            }
        }
    }

    fn array(&mut self) {
        self.pos += 1; // [
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return;
        }
        loop {
            self.value();
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return;
                }
                other => panic!("byte {}: expected , or ] found {other:?}", self.pos),
            }
        }
    }

    fn string(&mut self) -> String {
        assert_eq!(self.bytes.get(self.pos), Some(&b'"'), "byte {}", self.pos);
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).expect("valid utf8");
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(
                                &self.bytes[self.pos + 1..self.pos + 5],
                            )
                            .expect("4 hex digits");
                            let cp = u32::from_str_radix(hex, 16).expect("hex escape");
                            let c = char::from_u32(cp).expect("scalar value");
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        other => panic!("byte {}: bad escape {other:?}", self.pos),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    assert!(*c >= 0x20, "byte {}: raw control char in string", self.pos);
                    out.push(*c);
                    self.pos += 1;
                }
                None => panic!("unterminated string"),
            }
        }
    }

    fn number(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, lit: &[u8]) {
        assert_eq!(&self.bytes[self.pos..self.pos + lit.len()], lit);
        self.pos += lit.len();
    }
}

/// Validate a whole JSON document, returning every "name" value.
fn parse_json_names(text: &str) -> Vec<String> {
    let mut p = Json { bytes: text.as_bytes(), pos: 0, names: Vec::new() };
    p.value();
    p.ws();
    assert_eq!(p.pos, text.len(), "trailing garbage after document");
    p.names
}

/// Task names chosen to break unescaped exporters.
const HOSTILE: &[&str] = &[
    "quote\"inside",
    "back\\slash",
    "newline\nname",
    "tab\tand; semicolon",
    "control\u{1}char",
];

fn hostile_trace() -> Arc<eda_taskgraph::RunTrace> {
    let mut g = TaskGraph::new();
    let outs: Vec<_> = HOSTILE
        .iter()
        .enumerate()
        .map(|(i, name)| {
            g.source(name, TaskKey::leaf("hostile", i as u64), move || -> Payload {
                Arc::new(i as i64)
            })
        })
        .collect();
    let r = run_single_thread_opts(&g, &outs, &ExecOptions { trace: true, ..ExecOptions::default() });
    r.stats.trace.expect("trace attached")
}

#[test]
fn chrome_trace_with_hostile_names_parses_and_round_trips() {
    let trace = hostile_trace();
    let names = parse_json_names(&trace.to_chrome_trace());
    // Every hostile name survives the escape/unescape round trip intact.
    for name in HOSTILE {
        assert!(names.iter().any(|n| n == name), "{name:?} lost in export");
    }
}

#[test]
fn collapsed_stacks_with_hostile_names_stay_line_structured() {
    let stacks = hostile_trace().to_collapsed_stacks();
    assert_eq!(stacks.lines().count(), HOSTILE.len());
    for line in stacks.lines() {
        // Format: frames separated by ';', one space, integer weight.
        let (stack, weight) = line.rsplit_once(' ').expect("weight separated by space");
        weight.parse::<u128>().expect("numeric weight");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 2, "root + task frame in {line:?}");
        assert_eq!(frames[0], "run");
        assert!(!frames[1].is_empty());
        assert!(
            !frames[1].contains(char::is_whitespace),
            "unescaped whitespace in frame {:?}",
            frames[1]
        );
    }
}

// ---------------------------------------------------------------------
// Concurrency: hammer one registry from many threads, then check the
// snapshot sums exactly — the sharded relaxed counters lose nothing.

#[test]
fn concurrent_recording_sums_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    r.tasks_run_total.incr();
                    r.morsel_rows_total.add(3);
                    r.task_duration_us.record(t * PER_THREAD + i);
                    r.mem_peak_bytes.set_max(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    // Concurrent snapshots must stay structurally sound (no torn
    // state, counts never exceed the final totals).
    for _ in 0..50 {
        let snap = registry.snapshot();
        assert!(snap.counter("eda_tasks_run_total").unwrap() <= THREADS * PER_THREAD);
        let h = snap.histogram("eda_task_duration_us").unwrap();
        assert!(h.count <= THREADS * PER_THREAD);
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("eda_tasks_run_total"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.counter("eda_morsel_rows_total"), Some(THREADS * PER_THREAD * 3));
    assert_eq!(snap.gauge("eda_mem_peak_bytes"), Some(THREADS * PER_THREAD - 1));
    let h = snap.histogram("eda_task_duration_us").unwrap();
    assert_eq!(h.count, THREADS * PER_THREAD);
    let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total + h.overflow, h.count);
}
