//! Tracer integration tests over the public scheduler API.
//!
//! The satellite acceptance bar: spans are emitted for every live node on
//! both schedulers, worker ids stay within `0..workers`, span intervals
//! nest within `ExecStats.elapsed`, and the Chrome-trace JSON survives a
//! serde-free hand parse.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use eda_taskgraph::graph::Payload;
use eda_taskgraph::scheduler::{run_pool_opts, run_single_thread_opts, ExecOptions, ExecResult};
use eda_taskgraph::{FaultInjector, NodeId, SpanStatus, TaskGraph, TaskKey};

fn int(v: i64) -> Payload {
    Arc::new(v)
}

fn get(p: &Payload) -> i64 {
    *p.downcast_ref::<i64>().expect("i64")
}

/// A 3-layer graph wide enough to occupy several workers.
fn layered_graph() -> (TaskGraph, Vec<NodeId>) {
    let mut g = TaskGraph::new();
    let leaves: Vec<NodeId> = (0..8)
        .map(|i| g.source("leaf", TaskKey::leaf("leaf", i), move || int(i as i64)))
        .collect();
    let mids: Vec<NodeId> = leaves
        .chunks(2)
        .map(|pair| g.op("add", 0, pair.to_vec(), |d| int(get(&d[0]) + get(&d[1]))))
        .collect();
    let root = g.op("total", 0, mids.clone(), |d| int(d.iter().map(get).sum()));
    (g, vec![root])
}

fn traced() -> ExecOptions {
    ExecOptions { trace: true, ..ExecOptions::default() }
}

fn assert_trace_invariants(r: &ExecResult, workers: usize) {
    let trace = r.stats.trace.as_ref().expect("trace attached");
    // One span per live node — including skips.
    assert_eq!(trace.spans.len(), r.stats.live_nodes);
    assert_eq!(trace.workers, workers);
    for span in &trace.spans {
        assert!(span.worker < workers, "worker {} out of 0..{workers}", span.worker);
        assert!(span.start <= span.end, "span {:?} runs backwards", span.name);
        // Spans nest within the run's wall-clock window.
        assert!(
            span.end <= r.stats.elapsed,
            "span {} ends at {:?}, run elapsed {:?}",
            span.name,
            span.end,
            r.stats.elapsed
        );
    }
    // Node ids are unique (one span per node, not per attempt).
    let mut nodes: Vec<NodeId> = trace.spans.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    assert_eq!(nodes.len(), trace.spans.len());
}

#[test]
fn single_thread_emits_span_per_live_node() {
    let (g, outs) = layered_graph();
    let r = run_single_thread_opts(&g, &outs, &traced());
    assert_eq!(r.stats.tasks_run, 13); // 8 leaves + 4 mids + root
    assert_trace_invariants(&r, 1);
}

#[test]
fn pool_emits_span_per_live_node() {
    for workers in [1, 2, 4] {
        let (g, outs) = layered_graph();
        let r = run_pool_opts(&g, &outs, workers, &traced());
        assert_eq!(r.stats.tasks_run, 13, "workers={workers}");
        assert_trace_invariants(&r, workers);
    }
}

#[test]
fn untraced_runs_attach_no_trace() {
    let (g, outs) = layered_graph();
    let r = run_pool_opts(&g, &outs, 2, &ExecOptions::default());
    assert!(r.stats.trace.is_none());
}

#[test]
fn skipped_nodes_get_spans_too() {
    let (mut g, outs) = layered_graph();
    g.set_fault_injector(FaultInjector::panic_on("add"));
    let r = run_pool_opts(&g, &outs, 2, &traced());
    assert!(r.stats.tasks_failed >= 1);
    assert!(r.stats.tasks_skipped >= 1);
    assert_trace_invariants(&r, 2);
    let trace = r.stats.trace.as_ref().unwrap();
    assert!(trace.spans.iter().any(|s| s.status == SpanStatus::Failed));
    assert!(trace.spans.iter().any(|s| s.status == SpanStatus::Skipped));
}

#[test]
fn queue_wait_never_precedes_dependencies() {
    let (g, outs) = layered_graph();
    let r = run_pool_opts(&g, &outs, 4, &traced());
    let trace = r.stats.trace.as_ref().unwrap();
    for span in trace.executed() {
        for &dep in &span.deps {
            let dep_span = trace.spans.iter().find(|s| s.node == dep).expect("dep traced");
            assert!(
                dep_span.end <= span.start + span.queue_wait + Duration::from_micros(1)
                    || dep_span.end <= span.start,
                "{} started before its dependency {} finished",
                span.name,
                dep_span.name
            );
        }
    }
}

/// Hand-rolled (serde-free) structural parse of the Chrome trace export.
#[test]
fn chrome_trace_roundtrips_through_hand_parsing() {
    let (g, outs) = layered_graph();
    let r = run_pool_opts(&g, &outs, 2, &traced());
    let trace = r.stats.trace.as_ref().unwrap();
    let json = trace.to_chrome_trace();

    // Shape: one top-level object with a traceEvents array.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\":["));
    let balanced = |open: char, close: char| {
        json.matches(open).count() == json.matches(close).count()
    };
    assert!(balanced('{', '}'));
    assert!(balanced('[', ']'));

    // Complete ("ph":"X") event count equals executed task count.
    let x_events = json.matches("\"ph\":\"X\"").count();
    assert_eq!(
        x_events,
        r.stats.tasks_run + r.stats.tasks_failed + r.stats.tasks_timed_out
    );

    // Every X event carries numeric ts and dur fields; spot-parse them.
    for event in json.split("{\"name\"").skip(1) {
        if !event.contains("\"ph\":\"X\"") {
            continue;
        }
        let ts = event
            .split("\"ts\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .expect("ts field");
        assert!(ts.parse::<u128>().is_ok(), "unparseable ts {ts:?} in {event:?}");
        let dur = event
            .split("\"dur\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .expect("dur field");
        assert!(dur.parse::<u128>().is_ok(), "unparseable dur {dur:?} in {event:?}");
    }

    // Worker lanes appear as tids within range.
    for event in json.split("\"tid\":").skip(1) {
        let tid: usize = event
            .split([',', '}'])
            .next()
            .unwrap()
            .parse()
            .expect("numeric tid");
        assert!(tid < 2);
    }
}

#[test]
fn collapsed_stacks_cover_every_executed_name() {
    let (g, outs) = layered_graph();
    let r = run_single_thread_opts(&g, &outs, &traced());
    let trace = r.stats.trace.as_ref().unwrap();
    let collapsed = trace.to_collapsed_stacks();
    for name in ["leaf", "add", "total"] {
        assert!(collapsed.contains(&format!("run;{name} ")), "{collapsed}");
    }
    // Each line is `stack count`.
    for line in collapsed.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("two fields");
        assert!(stack.starts_with("run;"));
        assert!(count.parse::<u128>().is_ok());
    }
}
