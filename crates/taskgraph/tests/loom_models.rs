//! Concurrency model tests for the scheduler/cache core.
//!
//! Written against the `loom` API (`loom::model`, `loom::thread`) so the
//! same source runs under the real model checker when it is available;
//! the vendored stand-in stress-iterates each model on real threads with
//! staggered starts. Each model asserts the invariants that hold under
//! *every* interleaving:
//!
//! * the byte-budgeted LRU cache never exceeds its budget, never loses
//!   consistency between `len()` and `total_bytes()`, and a `get` only
//!   returns payloads that some `insert` actually admitted;
//! * the pool scheduler's work-queue claims and the cache-plan pruning
//!   agree: concurrent runs over a shared cache always produce the same
//!   payload values, every run's accounting adds up, and cache hits
//!   never serve a payload from a different fingerprint.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use eda_taskgraph::scheduler::{run_pool_opts, ExecOptions};
use eda_taskgraph::{CacheHandle, NodeId, Payload, ResultCache, TaskGraph, TaskKey};
use loom::sync::atomic::{AtomicUsize, Ordering};

fn int(v: i64) -> Payload {
    Arc::new(v)
}

fn get(p: &Payload) -> i64 {
    *p.downcast_ref::<i64>().expect("i64 payload")
}

/// a -> (inc, dbl) -> sum; returns (graph, sum node).
fn diamond() -> (TaskGraph, NodeId) {
    let mut g = TaskGraph::new();
    let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
    let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
    let c = g.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
    let d = g.op("sum", 0, vec![b, c], |d| int(get(&d[0]) + get(&d[1])));
    (g, d)
}

/// Three writers race inserts against one reader under a budget that
/// forces evictions; the budget and len/bytes consistency must hold at
/// every observation point, not just at quiescence.
#[test]
fn cache_insert_evict_hit_under_byte_budget() {
    loom::model(|| {
        // Budget fits ~4 of the 100-byte entries; 3 writers × 4 keys
        // guarantees continuous eviction pressure.
        let cache = Arc::new(ResultCache::new(400));
        let mut handles = Vec::new();
        for writer in 0..3u64 {
            let cache = Arc::clone(&cache);
            handles.push(loom::thread::spawn(move || {
                for k in 0..4u64 {
                    let key = TaskKey::leaf("model", writer * 10 + k);
                    let evicted = cache.insert(7, key, int((writer * 10 + k) as i64), 100);
                    assert!(evicted <= 4, "evicting more than the cache can hold");
                    // Mid-run observation: the budget is a hard cap.
                    assert!(cache.total_bytes() <= 400);
                }
            }));
        }
        {
            let cache = Arc::clone(&cache);
            handles.push(loom::thread::spawn(move || {
                for k in 0..12u64 {
                    let key = TaskKey::leaf("model", k % 4);
                    if let Some((payload, bytes)) = cache.get(7, key) {
                        // Hits only ever serve admitted entries.
                        assert_eq!(bytes, 100);
                        assert_eq!(get(&payload), (k % 4) as i64);
                    }
                    loom::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().expect("model thread");
        }
        assert!(cache.total_bytes() <= 400);
        assert_eq!(cache.total_bytes(), cache.len() * 100, "len/bytes agree");
        assert!(cache.len() <= 4);
        // A wrong-fingerprint probe must never hit.
        assert!(cache.get(8, TaskKey::leaf("model", 0)).is_none());
    });
}

/// An insert that re-admits an existing key refreshes in place: the
/// budget holds and the entry count never double-counts the key.
#[test]
fn cache_concurrent_reinsert_same_key_stays_consistent() {
    loom::model(|| {
        let cache = Arc::new(ResultCache::new(250));
        let key = TaskKey::leaf("shared", 1);
        let mut handles = Vec::new();
        for t in 0..2i64 {
            let cache = Arc::clone(&cache);
            handles.push(loom::thread::spawn(move || {
                for round in 0..4 {
                    cache.insert(1, key, int(t * 100 + round), 100);
                    assert!(cache.total_bytes() <= 250);
                }
            }));
        }
        for h in handles {
            h.join().expect("model thread");
        }
        let (payload, bytes) = cache.get(1, key).expect("key survives re-insertion");
        assert_eq!(bytes, 100);
        let v = get(&payload);
        assert!((0..=3).contains(&v) || (100..=103).contains(&v), "value {v} from neither writer");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_bytes(), 100);
    });
}

/// Two pool runs race over one shared cache: work-queue claims inside
/// each scheduler and cache-plan pruning across them must agree — both
/// runs return the correct payloads no matter which run populates the
/// cache first, and per-run accounting (hits + executed = live) holds.
#[test]
fn scheduler_claims_vs_cache_plan_pruning() {
    loom::model(|| {
        let cache = Arc::new(ResultCache::new(1 << 16));
        let total_ran = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cache = Arc::clone(&cache);
            let total_ran = Arc::clone(&total_ran);
            handles.push(loom::thread::spawn(move || {
                let (g, out) = diamond();
                let opts = ExecOptions {
                    cache: Some(CacheHandle::new(cache, 0xF00D)),
                    ..Default::default()
                };
                let r = run_pool_opts(&g, &[out], 2, &opts);
                assert_eq!(get(r.outcomes[0].payload().expect("sum ok")), 31);
                // Whatever the interleaving, every live node is either
                // served by the plan or executed exactly once.
                assert_eq!(r.stats.cache_hits + r.stats.tasks_run, r.stats.live_nodes);
                total_ran.fetch_add(r.stats.tasks_run, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().expect("model thread");
        }
        // The racing runs may interleave arbitrarily, but they can never
        // execute more than 2× the cold graph, and the cache ends up
        // with at most the three derived nodes.
        assert!(total_ran.load(Ordering::SeqCst) <= 8);
        assert!(cache.len() <= 3);
        // A third, quiet run sees a fully warm cache.
        let (g, out) = diamond();
        let opts = ExecOptions {
            cache: Some(CacheHandle::new(Arc::clone(&cache), 0xF00D)),
            ..Default::default()
        };
        let r = run_pool_opts(&g, &[out], 2, &opts);
        assert_eq!(get(r.outcomes[0].payload().expect("sum ok")), 31);
        assert_eq!(r.stats.cache_hits, 1, "terminal hit satisfies the cone");
        assert_eq!(r.stats.tasks_run, 0);
    });
}

/// Claim exclusivity: with a zero-budget (disabled) cache, racing pool
/// runs fall back to plain work-queue scheduling and each run executes
/// its full live set exactly once — no double claims, no lost nodes.
#[test]
fn scheduler_work_queue_claims_each_node_once() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let c2 = Arc::clone(&counter);
        let src = g.source("src", TaskKey::leaf("src", 0), move || {
            c2.fetch_add(1, Ordering::SeqCst);
            int(5)
        });
        let shared = g.op("expensive", 0, vec![src], |d| int(get(&d[0]) * 10));
        let u1 = g.op("plus1", 0, vec![shared], |d| int(get(&d[0]) + 1));
        let u2 = g.op("plus2", 0, vec![shared], |d| int(get(&d[0]) + 2));
        let r = run_pool_opts(&g, &[u1, u2], 3, &ExecOptions::default());
        assert_eq!(get(r.outcomes[0].payload().expect("u1")), 51);
        assert_eq!(get(r.outcomes[1].payload().expect("u2")), 52);
        assert_eq!(counter.load(Ordering::SeqCst), 1, "source claimed twice");
        assert_eq!(r.stats.tasks_run, 4);
    });
}

/// Degradation invariant under concurrency: a panicking kernel inside a
/// racing pool run stays isolated — the healthy sibling branch completes
/// in every interleaving and the failure is attributed to the root.
#[test]
fn pool_panic_isolation_holds_under_stress() {
    loom::model(|| {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
        let bad = g.op("bad", 0, vec![a], |_| -> Payload { panic!("kernel exploded") });
        let c = g.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
        let d = g.op("sum", 0, vec![bad, c], |d| int(get(&d[0]) + get(&d[1])));
        let r = run_pool_opts(&g, &[d, c], 2, &ExecOptions::default());
        let err = r.outcomes[0].error().expect("sum failed");
        assert_eq!(err.root_cause().1, "bad");
        assert_eq!(get(r.outcomes[1].payload().expect("dbl ok")), 20);
        assert_eq!(r.stats.tasks_failed, 1);
        assert_eq!(r.stats.tasks_skipped, 1);
    });
}

/// A cache hit whose dependency is still live through a sibling path
/// (here: `inc` is warm, but its input `a` stays live because `dbl` is
/// cold) must not be re-dispatched when that dependency completes — the
/// hit's dependents were already released at pre-completion, so a second
/// release double-decrements indegrees. Deterministic regression for the
/// partially-warm-cache topology the racing model below can produce.
#[test]
fn pool_hit_with_live_dependency_is_not_redispatched() {
    let cache = Arc::new(ResultCache::new(1 << 16));
    let opts = ExecOptions {
        cache: Some(CacheHandle::new(Arc::clone(&cache), 0xF00D)),
        ..Default::default()
    };
    // Warm only the `inc` branch.
    let mut g = TaskGraph::new();
    let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
    let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
    run_pool_opts(&g, &[b], 2, &opts);
    // The full diamond now sees `inc` as a hit while `a` is live via `dbl`.
    let (g, out) = diamond();
    let r = run_pool_opts(&g, &[out], 2, &opts);
    assert_eq!(get(r.outcomes[0].payload().expect("sum ok")), 31);
    assert_eq!(r.stats.cache_hits, 1, "inc served from cache");
    assert_eq!(r.stats.cache_hits + r.stats.tasks_run, r.stats.live_nodes);
}

/// The morsel deque's exactly-once claim invariant: an owner draining
/// the front races thieves stealing from the back, and every slot is
/// claimed exactly once in every interleaving (the advisory cursors may
/// pass each other; the per-slot CAS must still arbitrate).
#[test]
fn steal_deque_claims_every_slot_exactly_once() {
    use eda_taskgraph::morsel::StealDeque;
    loom::model(|| {
        const SLOTS: usize = 24;
        let deque = Arc::new(StealDeque::new(SLOTS));
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..SLOTS).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        {
            // Owner: drains from the front until exhaustion.
            let deque = Arc::clone(&deque);
            let claims = Arc::clone(&claims);
            handles.push(loom::thread::spawn(move || {
                while let Some(i) = deque.claim_front() {
                    claims[i].fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..2 {
            // Thieves: steal from the back.
            let deque = Arc::clone(&deque);
            let claims = Arc::clone(&claims);
            handles.push(loom::thread::spawn(move || {
                while let Some(i) = deque.claim_back() {
                    claims[i].fetch_add(1, Ordering::SeqCst);
                    loom::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().expect("model thread");
        }
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "slot {i} claimed {} times", c.load(Ordering::SeqCst));
        }
        assert_eq!(deque.remaining(), 0);
    });
}
