//! Cluster cost-model simulator for the scale-out experiment.
//!
//! The paper's Figure 6(c) runs `create_report` on an 8-node cluster with
//! data on HDFS and shows wall time falling as nodes are added, explaining
//! the effect as parallelized I/O (with a caveat that 1 HDFS worker is
//! slower than single-node local disk). This repository runs on a single
//! CPU core, so physical scale-out is impossible; per DESIGN.md we
//! substitute a **calibrated cost model**:
//!
//! `time(w) = startup + bytes / (io_bw · w) + rows · cpu_per_row / min(w·cores, parallel_frac ceiling) + shuffle(w)`
//!
//! * the I/O term divides by the worker count (each worker reads its own
//!   HDFS blocks — the effect the paper names);
//! * the compute term scales with workers up to the workload's parallel
//!   fraction (Amdahl);
//! * the shuffle term grows mildly with workers (reduce-side exchange).
//!
//! `cpu_per_row` is **calibrated from a real single-node measurement** of
//! this repository's `create_report`, so the simulated curve is anchored
//! to observed behaviour rather than invented constants.

use std::time::Duration;

/// Cost-model parameters for a simulated cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSim {
    /// Per-node HDFS read bandwidth, bytes/second.
    pub io_bandwidth: f64,
    /// Calibrated compute cost per row, seconds (single-core).
    pub cpu_per_row: f64,
    /// Cores available to each worker node.
    pub cores_per_node: usize,
    /// Fraction of compute that parallelizes (Amdahl's law).
    pub parallel_fraction: f64,
    /// Fixed job startup/scheduling cost, seconds.
    pub startup: f64,
    /// Per-worker coordination/shuffle cost, seconds.
    pub shuffle_per_worker: f64,
}

impl Default for ClusterSim {
    fn default() -> Self {
        // Paper cluster: 8 nodes, 16 cores each, HDFS storage. 120 MB/s is
        // a typical per-node HDFS streaming read rate of that hardware era.
        ClusterSim {
            io_bandwidth: 120.0e6,
            cpu_per_row: 1.0e-6,
            cores_per_node: 16,
            parallel_fraction: 0.95,
            startup: 2.0,
            shuffle_per_worker: 0.5,
        }
    }
}

impl ClusterSim {
    /// Calibrate the per-row compute cost from a measured single-node run.
    pub fn calibrated(measured: Duration, rows: u64) -> ClusterSim {
        let per_row = if rows == 0 {
            1.0e-6
        } else {
            measured.as_secs_f64() / rows as f64
        };
        ClusterSim { cpu_per_row: per_row, ..ClusterSim::default() }
    }

    /// Simulated wall time for `rows` rows / `bytes` bytes on `workers`
    /// nodes.
    pub fn simulate(&self, rows: u64, bytes: u64, workers: usize) -> Duration {
        let w = workers.max(1) as f64;
        let io = bytes as f64 / (self.io_bandwidth * w);
        let total_cpu = rows as f64 * self.cpu_per_row;
        let cores = w * self.cores_per_node as f64;
        // Amdahl: serial fraction stays serial, the rest divides by cores.
        let compute =
            total_cpu * (1.0 - self.parallel_fraction) + total_cpu * self.parallel_fraction / cores;
        let shuffle = self.shuffle_per_worker * w.log2().max(0.0).mul_add(0.5, 1.0);
        Duration::from_secs_f64(self.startup + io + compute + shuffle)
    }

    /// The full scaling curve for `1..=max_workers`.
    pub fn curve(&self, rows: u64, bytes: u64, max_workers: usize) -> Vec<(usize, Duration)> {
        (1..=max_workers.max(1))
            .map(|w| (w, self.simulate(rows, bytes, w)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROWS: u64 = 100_000_000;
    const BYTES: u64 = 6_400_000_000; // 8 numeric-ish columns

    #[test]
    fn more_workers_is_faster() {
        let sim = ClusterSim::default();
        let curve = sim.curve(ROWS, BYTES, 8);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 < pair[0].1,
                "time should fall from {} to {} workers",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn returns_diminish() {
        let sim = ClusterSim::default();
        let t1 = sim.simulate(ROWS, BYTES, 1).as_secs_f64();
        let t2 = sim.simulate(ROWS, BYTES, 2).as_secs_f64();
        let t7 = sim.simulate(ROWS, BYTES, 7).as_secs_f64();
        let t8 = sim.simulate(ROWS, BYTES, 8).as_secs_f64();
        assert!((t1 - t2) > (t7 - t8), "marginal gain should shrink");
    }

    #[test]
    fn io_dominated_scaling_is_near_linear_early() {
        // With compute tiny, doubling workers should nearly halve the
        // I/O component.
        let sim = ClusterSim { cpu_per_row: 1e-9, startup: 0.0, shuffle_per_worker: 0.0, ..ClusterSim::default() };
        let t1 = sim.simulate(ROWS, BYTES, 1).as_secs_f64();
        let t2 = sim.simulate(ROWS, BYTES, 2).as_secs_f64();
        assert!((t1 / t2 - 2.0).abs() < 0.05);
    }

    #[test]
    fn calibration_anchors_cpu_cost() {
        let sim = ClusterSim::calibrated(Duration::from_secs(50), 10_000_000);
        assert!((sim.cpu_per_row - 5.0e-6).abs() < 1e-12);
        let zero = ClusterSim::calibrated(Duration::from_secs(1), 0);
        assert!(zero.cpu_per_row > 0.0);
    }

    #[test]
    fn single_worker_on_hdfs_slower_than_pure_compute() {
        // Mirrors the paper's note: 1 HDFS worker pays the I/O cost that a
        // local-disk single-node run (bytes = 0 here) does not.
        let sim = ClusterSim::default();
        let with_io = sim.simulate(ROWS, BYTES, 1);
        let no_io = sim.simulate(ROWS, 0, 1);
        assert!(with_io > no_io);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let sim = ClusterSim::default();
        assert_eq!(sim.simulate(ROWS, BYTES, 0), sim.simulate(ROWS, BYTES, 1));
    }
}
