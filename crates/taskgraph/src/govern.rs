//! Resource governance: cancellation tokens, memory gauges, retry
//! policies, and admission control.
//!
//! The paper's engine assumes each `plot*` call may consume the whole
//! machine; a multi-tenant deployment cannot. This module makes a run a
//! *governable unit*:
//!
//! - [`CancelToken`] — cooperative cancellation observed between
//!   scheduler dispatches and at morsel boundaries inside kernels (via
//!   the thread-local [`interrupted`] probe). A token can carry a
//!   deadline so `engine.run_deadline_ms` actually stops in-flight work
//!   instead of merely marking tasks timed out after the fact.
//! - [`MemoryGauge`] — per-run payload-byte accounting against a budget.
//!   A task whose output would blow the budget fails with
//!   `TaskFailure::BudgetExceeded` and degrades its section; the process
//!   never OOMs.
//! - [`RetryPolicy`] — deterministic exponential backoff for transient
//!   task failures.
//! - [`AdmissionGate`] — a process-wide semaphore with a bounded wait
//!   queue; runs beyond the queue bound are shed immediately instead of
//!   piling up.
//!
//! Everything here is panic-free (enforced by eda-lint L2): governance
//! code runs on the failure path, where a panic would turn a degraded
//! section into a dead process.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Why a task observed cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (e.g. `AnalysisHandle::cancel`).
    Requested,
    /// The token's deadline passed (`engine.run_deadline_ms`).
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Requested => write!(f, "cancellation requested"),
            CancelReason::DeadlineExceeded => write!(f, "run deadline exceeded"),
        }
    }
}

/// A cooperative cancellation token.
///
/// Clones share the same flag; [`capped`](CancelToken::capped) derives a
/// token that additionally expires at a deadline while still observing
/// the parent's flag. Checking is wait-free (one atomic load plus an
/// `Instant` comparison), cheap enough for kernel inner loops.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh token that auto-cancels after `budget`.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken::new().capped(budget)
    }

    /// A token sharing this one's flag that additionally expires
    /// `budget` from now (the earlier of the two deadlines wins).
    pub fn capped(&self, budget: Duration) -> Self {
        let at = Instant::now().checked_add(budget);
        let deadline = match (self.deadline, at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        CancelToken { flag: Arc::clone(&self.flag), deadline }
    }

    /// Trip the flag. Every clone (and every capped child) observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Why this token is cancelled, or `None` if it is still live.
    /// An explicit request takes precedence over a deadline.
    pub fn cancelled(&self) -> Option<CancelReason> {
        if self.flag.load(Ordering::Acquire) {
            return Some(CancelReason::Requested);
        }
        match self.deadline {
            Some(at) if Instant::now() >= at => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has fired (request or deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }
}

thread_local! {
    /// Token of the task currently executing on this thread, installed by
    /// the scheduler around the task body so kernels deep in the call
    /// stack can poll it without plumbing.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };

    /// Token armed for adoption by the next run constructed on this
    /// thread (mirrors `inject::arm` for fault plans): the public API
    /// builds its `ComputeContext` many layers below `AnalysisHandle`,
    /// so the handle arms the token here before calling in.
    static ARMED: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` as this thread's current task token for the duration
/// of the returned guard (the previous token is restored on drop).
pub fn set_current(token: CancelToken) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(Some(token)));
    CurrentGuard { prev }
}

/// Restores the previously-current token on drop.
pub struct CurrentGuard {
    prev: Option<CancelToken>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// The token currently installed on this thread, if any. Morsel helper
/// threads ([`crate::morsel`]) clone it through this accessor so stolen
/// morsels observe the owning task's cancellation.
pub fn current_token() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the current task's token (if any) has fired. This is the
/// morsel-boundary probe: kernels call it every few thousand elements
/// and bail early; the scheduler then discards the partial result.
/// Always `false` outside a governed task.
pub fn interrupted() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// Sleep in small steps until the current token fires or `max` elapses.
/// Used by `inject::FaultMode::Wedge` to model a stuck task that still
/// observes cancellation, and usable by any cooperative wait.
pub fn wait_interrupted(max: Duration) {
    let start = Instant::now();
    let step = Duration::from_millis(1);
    while start.elapsed() < max && !interrupted() {
        std::thread::sleep(step);
    }
}

/// Arm `token` for adoption by the next governed run constructed on this
/// thread. Returns a guard that restores the previous armed token.
pub fn arm_token(token: CancelToken) -> TokenArmGuard {
    let prev = ARMED.with(|a| a.replace(Some(token)));
    TokenArmGuard { prev }
}

/// Restores the previously-armed token on drop.
pub struct TokenArmGuard {
    prev: Option<CancelToken>,
}

impl Drop for TokenArmGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ARMED.with(|a| *a.borrow_mut() = prev);
    }
}

/// The token armed on this thread, if any (does not consume it: every
/// run started while the guard lives adopts the same token).
pub fn armed_token() -> Option<CancelToken> {
    ARMED.with(|a| a.borrow().clone())
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

/// A charge the gauge refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetDenial {
    /// The run's byte budget.
    pub budget: usize,
    /// Bytes already charged when the denial happened.
    pub used: usize,
    /// The charge that was refused.
    pub requested: usize,
}

#[derive(Debug, Default)]
struct GaugeInner {
    budget: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    denials: AtomicUsize,
}

/// Per-run payload-byte accounting against `engine.memory_budget_bytes`.
///
/// This is the task-scoped sibling of the bench binaries' tracking
/// allocator: instead of hooking the global allocator (too invasive for
/// library use), the scheduler charges each task's *output payload*
/// estimate as it completes. Charges are never released mid-run — the
/// gauge bounds the run's cumulative materialized footprint, which is
/// what grows without bound on wide frames.
#[derive(Debug, Clone, Default)]
pub struct MemoryGauge {
    inner: Arc<GaugeInner>,
}

impl MemoryGauge {
    /// A gauge with the given byte budget. A zero budget refuses every
    /// non-zero charge (callers gate on config instead of passing 0).
    pub fn new(budget: usize) -> Self {
        MemoryGauge { inner: Arc::new(GaugeInner { budget, ..Default::default() }) }
    }

    /// Charge `bytes` against the budget, or report the denial without
    /// charging anything.
    pub fn try_charge(&self, bytes: usize) -> Result<(), BudgetDenial> {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let next = used.saturating_add(bytes);
            if next > self.inner.budget {
                self.inner.denials.fetch_add(1, Ordering::Relaxed);
                return Err(BudgetDenial {
                    budget: self.inner.budget,
                    used,
                    requested: bytes,
                });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => used = observed,
            }
        }
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The byte budget this gauge enforces.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// How many charges have been refused.
    pub fn denials(&self) -> usize {
        self.inner.denials.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Deterministic exponential backoff for transient task failures.
///
/// Attempt `k` (1-based) sleeps `base_backoff * 2^(k-1)`, capped at
/// [`RetryPolicy::MAX_BACKOFF`]. No jitter: reproducibility matters more
/// here than thundering-herd avoidance (retries are per-task within one
/// process, not a distributed fleet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-executions allowed per task after the first failure
    /// (`engine.task_retries`). Zero disables retry entirely.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles each further attempt.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 0, base_backoff: Duration::from_millis(1) }
    }
}

impl RetryPolicy {
    /// Ceiling on any single backoff sleep.
    pub const MAX_BACKOFF: Duration = Duration::from_millis(250);

    /// A policy allowing `max_retries` re-executions with the default
    /// 1 ms base backoff.
    pub fn retries(max_retries: usize) -> Self {
        RetryPolicy { max_retries, ..Default::default() }
    }

    /// The sleep before retry attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: usize) -> Duration {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        self.base_backoff
            .checked_mul(1u32 << shift)
            .map_or(Self::MAX_BACKOFF, |d| d.min(Self::MAX_BACKOFF))
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// The gate refused admission: the run queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Runs currently executing.
    pub running: usize,
    /// Runs already queued waiting for a slot.
    pub queued: usize,
}

#[derive(Debug, Default)]
struct GateState {
    running: usize,
    waiting: usize,
}

/// Process-wide semaphore bounding concurrent runs
/// (`engine.max_concurrent_runs`) with a bounded wait queue.
///
/// Up to `capacity` runs execute at once; up to `max_queue` more block
/// waiting for a slot (backpressure); anything beyond that is shed with
/// [`Overloaded`] so latency stays bounded under a request flood.
#[derive(Debug)]
pub struct AdmissionGate {
    capacity: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    slot_freed: Condvar,
}

impl AdmissionGate {
    /// A gate admitting `capacity` concurrent runs and queueing at most
    /// `2 * capacity` more. A zero capacity is clamped to one.
    pub fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Self::with_queue(capacity, capacity * 2)
    }

    /// A gate with an explicit queue bound.
    pub fn with_queue(capacity: usize, max_queue: usize) -> Arc<Self> {
        Arc::new(AdmissionGate {
            capacity: capacity.max(1),
            max_queue,
            state: Mutex::new(GateState::default()),
            slot_freed: Condvar::new(),
        })
    }

    /// Acquire a run slot, blocking while the queue has room; shed with
    /// [`Overloaded`] when it does not. The slot is released when the
    /// returned permit drops.
    pub fn try_admit(self: &Arc<Self>) -> Result<AdmissionPermit, Overloaded> {
        let mut state = self.state.lock();
        if state.running >= self.capacity {
            if state.waiting >= self.max_queue {
                return Err(Overloaded { running: state.running, queued: state.waiting });
            }
            state.waiting += 1;
            while state.running >= self.capacity {
                // eda-lint: allow(EDA-L7) Condvar::wait releases the mutex atomically while parked
                state = self.slot_freed.wait(state);
            }
            state.waiting -= 1;
        }
        state.running += 1;
        Ok(AdmissionPermit { gate: Arc::clone(self) })
    }

    /// Runs currently holding a slot.
    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    /// Runs currently queued for a slot.
    pub fn queued(&self) -> usize {
        self.state.lock().waiting
    }
}

/// An admitted run's slot; dropping it frees the slot and wakes one
/// queued run.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock();
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.gate.slot_freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn token_cancel_propagates_to_clones_and_children() {
        let t = CancelToken::new();
        let clone = t.clone();
        let child = t.capped(Duration::from_secs(60));
        assert_eq!(t.cancelled(), None);
        clone.cancel();
        assert_eq!(t.cancelled(), Some(CancelReason::Requested));
        assert_eq!(child.cancelled(), Some(CancelReason::Requested));
    }

    #[test]
    fn token_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.cancelled(), Some(CancelReason::DeadlineExceeded));
        // Explicit request beats deadline in the report.
        t.cancel();
        assert_eq!(t.cancelled(), Some(CancelReason::Requested));
    }

    #[test]
    fn capped_keeps_earlier_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        let child = t.capped(Duration::from_secs(60));
        assert_eq!(child.cancelled(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn current_token_probe() {
        assert!(!interrupted());
        let t = CancelToken::new();
        let guard = set_current(t.clone());
        assert!(!interrupted());
        t.cancel();
        assert!(interrupted());
        drop(guard);
        assert!(!interrupted());
    }

    #[test]
    fn current_guard_restores_previous() {
        let outer = CancelToken::new();
        outer.cancel();
        let _g1 = set_current(outer);
        assert!(interrupted());
        {
            let _g2 = set_current(CancelToken::new());
            assert!(!interrupted());
        }
        assert!(interrupted());
    }

    #[test]
    fn armed_token_is_adoptable_and_restored() {
        assert!(armed_token().is_none());
        let t = CancelToken::new();
        {
            let _g = arm_token(t.clone());
            let adopted = armed_token();
            assert!(adopted.is_some());
            t.cancel();
            assert!(adopted.is_some_and(|a| a.is_cancelled()));
        }
        assert!(armed_token().is_none());
    }

    #[test]
    fn wait_interrupted_returns_on_cancel() {
        let t = CancelToken::new();
        t.cancel();
        let _g = set_current(t);
        let start = Instant::now();
        wait_interrupted(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn gauge_charges_and_denies() {
        let g = MemoryGauge::new(100);
        assert!(g.try_charge(60).is_ok());
        assert!(g.try_charge(40).is_ok());
        let denial = g.try_charge(1);
        assert_eq!(denial, Err(BudgetDenial { budget: 100, used: 100, requested: 1 }));
        assert_eq!(g.used(), 100);
        assert_eq!(g.peak(), 100);
        assert_eq!(g.denials(), 1);
    }

    #[test]
    fn gauge_is_shared_across_clones() {
        let g = MemoryGauge::new(10);
        let h = g.clone();
        assert!(h.try_charge(10).is_ok());
        assert!(g.try_charge(1).is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_retries: 5, base_backoff: Duration::from_millis(2) };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(1000), RetryPolicy::MAX_BACKOFF);
    }

    #[test]
    fn gate_admits_up_to_capacity_then_sheds_past_queue() {
        let gate = AdmissionGate::with_queue(1, 0);
        let permit = gate.try_admit();
        assert!(permit.is_ok());
        // Queue bound is zero, so a second concurrent run is shed.
        assert_eq!(gate.try_admit().map(|_| ()), Err(Overloaded { running: 1, queued: 0 }));
        drop(permit);
        assert!(gate.try_admit().is_ok());
    }

    #[test]
    fn gate_queues_and_wakes_waiters() {
        let gate = AdmissionGate::with_queue(1, 4);
        let order = Arc::new(AtomicUsize::new(0));
        let first = gate.try_admit();
        assert!(first.is_ok());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let permit = gate.try_admit();
                    assert!(permit.is_ok());
                    order.fetch_add(1, Ordering::SeqCst)
                })
            })
            .collect();
        // Waiters block until the first permit drops.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0);
        drop(first);
        for h in handles {
            assert!(h.join().is_ok());
        }
        assert_eq!(order.load(Ordering::SeqCst), 3);
        assert_eq!(gate.running(), 0);
    }
}
