//! Morsel-driven intra-task parallelism (DESIGN.md §15).
//!
//! The partition-parallel scheduler balances load only at partition
//! granularity: a skewed partitioning (one partition holding most of the
//! rows) serializes the whole stage behind the worker that claims the
//! giant partition. Following the morsel-driven execution model of
//! HyPer (Leis et al., SIGMOD 2014), this module splits a kernel's row
//! range into cache-sized **morsels** (~256 KiB of payload) published on
//! a shared [`StealDeque`]: the owning worker drains morsels from the
//! front while *idle* pool workers donate their capacity as helper
//! threads stealing from the back. Per-morsel partial results are folded
//! **in morsel-index order**, so the merged result is deterministic
//! regardless of how many helpers joined or which morsels they stole.
//!
//! Integration is two thread-local installs (no signature changes down
//! the kernel stack):
//!
//! * each pool worker installs an [`engage`] context carrying
//!   [`ExecOptions::morsel_bytes`](crate::scheduler::ExecOptions::morsel_bytes)
//!   and the pool's shared [`HelperBudget`]; the budget tracks how many
//!   workers are parked on the empty ready queue,
//! * kernels call [`run_rows`] around their hot loops; it returns `None`
//!   when morsels are disabled (`morsel_bytes == 0`, or the range fits a
//!   single morsel) so the caller falls back to its legacy whole-slice
//!   path — bit-identical to pre-morsel behaviour.
//!
//! Helpers are **elastic**: the owner re-checks the budget at every
//! morsel boundary and spawns another helper the moment a pool worker
//! goes idle, so capacity freed by short tasks flows to the straggler
//! mid-stage instead of only at stage start. Every morsel claim also
//! polls the governed cancellation token ([`crate::govern`]), keeping
//! cancellation latency bounded by one morsel even inside helper
//! threads, and morsel counts feed the process telemetry registry.

use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::govern::{self, CancelToken};

/// Default morsel size in payload bytes (`engine.morsel_bytes`).
///
/// 256 KiB ≈ half a typical per-core L2: one morsel's input stream plus
/// the kernel's accumulator state stay cache-resident while a stolen
/// morsel is still coarse enough to amortize the claim (one relaxed
/// `fetch_add` + one CAS) and the helper-spawn cost over ~32 K rows.
pub const DEFAULT_MORSEL_BYTES: usize = 256 * 1024;

/// Upper bound on helper threads one stage will spawn. Donated capacity
/// comes from parked pool workers, so this only guards against a
/// pathological budget; real pools stay well below it.
const MAX_HELPERS: usize = 64;

/// Rows per morsel for a row of `row_bytes` under a `morsel_bytes`
/// budget. Zero `morsel_bytes` disables splitting entirely.
pub fn morsel_rows(row_bytes: usize, morsel_bytes: usize) -> usize {
    if morsel_bytes == 0 {
        usize::MAX
    } else {
        (morsel_bytes / row_bytes.max(1)).max(1)
    }
}

// ---------------------------------------------------------------------------
// Work-stealing deque over a morsel index space
// ---------------------------------------------------------------------------

/// A fixed-size work-stealing deque over morsel indices `0..len`.
///
/// The owner claims from the front, thieves from the back. Unlike the
/// Chase-Lev deque this one never reallocates and never spins on a
/// contended slot: `front`/`back` are advisory cursors that may pass
/// each other near exhaustion, and a per-slot CAS flag is the single
/// source of truth for who won a morsel. Each claim loop advances its
/// cursor on every iteration, so every call terminates after at most
/// `len` failed CASes and **every slot is claimed exactly once** across
/// all participants (the loom model in `tests/loom_models.rs` checks
/// this exhaustively).
pub struct StealDeque {
    len: usize,
    /// Next index the owner will try (grows up).
    front: AtomicUsize,
    /// Next index thieves will try (grows down; negative = exhausted).
    back: AtomicIsize,
    /// Claim flags: the slot belongs to whoever flips it first.
    claimed: Vec<AtomicBool>,
    /// Successful claims so far (for `remaining`).
    taken: AtomicUsize,
}

impl StealDeque {
    /// A deque over morsel indices `0..len`.
    pub fn new(len: usize) -> StealDeque {
        StealDeque {
            len,
            front: AtomicUsize::new(0),
            back: AtomicIsize::new(len as isize - 1),
            claimed: (0..len).map(|_| AtomicBool::new(false)).collect(),
            taken: AtomicUsize::new(0),
        }
    }

    /// How many morsels the deque was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the deque was built over zero morsels.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn try_claim(&self, i: usize) -> bool {
        let won = self.claimed[i]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            self.taken.fetch_add(1, Ordering::Relaxed);
        }
        won
    }

    /// Claim the next morsel from the front (owner side).
    pub fn claim_front(&self) -> Option<usize> {
        // eda-lint: allow(EDA-L6) each iteration consumes one morsel index; bounded by deque length
        loop {
            let i = self.front.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return None;
            }
            if self.try_claim(i) {
                return Some(i);
            }
        }
    }

    /// Steal the next morsel from the back (helper side).
    pub fn claim_back(&self) -> Option<usize> {
        // eda-lint: allow(EDA-L6) each iteration consumes one morsel index; bounded by deque length
        loop {
            let i = self.back.fetch_sub(1, Ordering::Relaxed);
            if i < 0 {
                return None;
            }
            let i = i as usize;
            if i < self.len && self.try_claim(i) {
                return Some(i);
            }
        }
    }

    /// Morsels not yet claimed (advisory: may be stale by the time the
    /// caller acts on it).
    pub fn remaining(&self) -> usize {
        self.len - self.taken.load(Ordering::Relaxed).min(self.len)
    }
}

// ---------------------------------------------------------------------------
// Idle-worker capacity budget
// ---------------------------------------------------------------------------

/// Tracks how many pool workers are parked on the empty ready queue,
/// i.e. how much capacity a running stage may *donate* to helpers.
///
/// Workers mark themselves idle around the blocking ready-queue receive;
/// a stage acquires one permit per helper it spawns and the helper
/// releases it on exit. The count may dip negative transiently (a parked
/// worker whose permit was taken wakes up for a new task before the
/// helper finishes) — morsels are small, so the oversubscription window
/// is bounded by one morsel's work.
#[derive(Debug, Default)]
pub struct HelperBudget {
    idle: AtomicIsize,
}

impl HelperBudget {
    /// A budget with no idle capacity.
    pub fn new() -> HelperBudget {
        HelperBudget::default()
    }

    /// Mark one worker as parked on the ready queue.
    pub fn enter_idle(&self) {
        self.idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark one worker as running again.
    pub fn exit_idle(&self) {
        self.idle.fetch_sub(1, Ordering::Relaxed);
    }

    /// Take one permit if any idle capacity remains.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.idle.load(Ordering::Relaxed);
        loop {
            if cur <= 0 {
                return false;
            }
            match self.idle.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Return a permit taken by [`HelperBudget::try_acquire`].
    pub fn release(&self) {
        self.idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Current idle-capacity estimate (may be negative transiently).
    pub fn idle_now(&self) -> isize {
        self.idle.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Thread-local morsel context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    morsel_bytes: usize,
    budget: Option<Arc<HelperBudget>>,
}

thread_local! {
    /// Morsel context of the scheduler that owns this thread, installed
    /// by [`engage`] around the worker loop (pool) or the whole run
    /// (single-thread). Kernels read it through [`run_rows`] without any
    /// plumbing through the task-graph closures.
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Install a morsel context on this thread for the duration of the
/// returned guard. `morsel_bytes == 0` still installs (and disables
/// splitting); `budget` is the pool's shared idle-capacity tracker, or
/// `None` when no helpers may be spawned (single-thread scheduler).
pub fn engage(morsel_bytes: usize, budget: Option<Arc<HelperBudget>>) -> EngageGuard {
    let prev = CTX.with(|c| c.replace(Some(Ctx { morsel_bytes, budget })));
    EngageGuard { prev }
}

/// Restores the previously-installed morsel context on drop.
pub struct EngageGuard {
    prev: Option<Ctx>,
}

impl Drop for EngageGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// The `morsel_bytes` in effect on this thread (0 when disengaged).
pub fn engaged_bytes() -> usize {
    CTX.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.morsel_bytes))
}

// ---------------------------------------------------------------------------
// The morsel stage driver
// ---------------------------------------------------------------------------

/// Run `map` over `0..nrows` split into cache-sized morsels, folding the
/// per-morsel results with `fold` **in morsel-index order**.
///
/// Returns `None` — telling the caller to run its legacy whole-slice
/// path — when no morsel context is engaged, `morsel_bytes` is zero, or
/// the whole range fits in one morsel. Otherwise the calling thread
/// drains morsels from the front of a [`StealDeque`] while elastically
/// spawning scoped helper threads (one per idle pool worker, re-checked
/// at every morsel boundary) that steal from the back. Helpers inherit
/// the caller's governed cancellation token; every claim polls it, so a
/// fired token stops the stage within one morsel and the (partial) fold
/// is discarded by the scheduler's usual cancelled-run classification.
///
/// Determinism: the fold order is the morsel index order, fixed by
/// `nrows` and `morsel_bytes` alone — worker count, helper count, and
/// steal interleavings cannot change the merged result.
pub fn run_rows<T, M, F>(nrows: usize, row_bytes: usize, map: M, mut fold: F) -> Option<T>
where
    T: Send + Sync,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    let ctx = CTX.with(|c| c.borrow().clone())?;
    let per = morsel_rows(row_bytes, ctx.morsel_bytes);
    if per >= nrows || nrows == 0 {
        return None;
    }
    let nm = nrows.div_ceil(per);
    let deque = StealDeque::new(nm);
    let token = govern::current_token();
    let results: Vec<OnceLock<T>> = (0..nm).map(|_| OnceLock::new()).collect();
    let stolen = AtomicUsize::new(0);

    let run_morsel = |i: usize| {
        let start = i * per;
        let end = (start + per).min(nrows);
        let out = map(start..end);
        // Slots are claimed exactly once, so the set cannot collide; if
        // it ever did, dropping the duplicate is sound (first write wins).
        let _ = results[i].set(out);
    };
    let cancelled = || token.as_ref().is_some_and(CancelToken::is_cancelled);

    std::thread::scope(|scope| {
        let mut helpers = 0usize;
        while let Some(i) = deque.claim_front() {
            if cancelled() {
                break;
            }
            // Elastic donation: park-state changes since the last
            // boundary turn into helpers now, while there is still more
            // than the morsel we are about to run left to share.
            while helpers < MAX_HELPERS
                && deque.remaining() > 1
                && ctx.budget.as_ref().is_some_and(|b| b.try_acquire())
            {
                helpers += 1;
                let deque = &deque;
                let stolen = &stolen;
                let run_morsel = &run_morsel;
                let budget = ctx.budget.clone();
                let token = token.clone();
                scope.spawn(move || {
                    let _current = token.map(govern::set_current);
                    while let Some(j) = deque.claim_back() {
                        if govern::interrupted() {
                            break;
                        }
                        run_morsel(j);
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(b) = budget {
                        b.release();
                    }
                });
            }
            run_morsel(i);
        }
    });

    let registry = crate::metrics::global();
    if registry.enabled() {
        registry.morsels_split_total.add(nm as u64);
        registry.morsels_stolen_total.add(stolen.load(Ordering::Relaxed) as u64);
    }

    // Deterministic index-order fold. Under cancellation some slots may
    // be empty; the partial fold is discarded upstream, so skipping the
    // holes (rather than erroring) keeps this path panic-free.
    let mut acc: Option<T> = None;
    // eda-lint: allow(EDA-L6) folds one already-computed partial per morsel
    for cell in results {
        if let Some(part) = cell.into_inner() {
            acc = Some(match acc {
                Some(a) => fold(a, part),
                None => part,
            });
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_rows_bounds() {
        assert_eq!(morsel_rows(8, 0), usize::MAX);
        assert_eq!(morsel_rows(8, DEFAULT_MORSEL_BYTES), 32 * 1024);
        assert_eq!(morsel_rows(0, 1024), 1024);
        assert_eq!(morsel_rows(4096, 1024), 1);
    }

    #[test]
    fn deque_claims_every_slot_exactly_once() {
        let d = StealDeque::new(17);
        let mut seen = vec![false; 17];
        loop {
            let front = d.claim_front();
            let back = d.claim_back();
            if front.is_none() && back.is_none() {
                break;
            }
            for i in [front, back].into_iter().flatten() {
                assert!(!seen[i], "slot {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unclaimed slots: {seen:?}");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn deque_concurrent_exactly_once() {
        let d = StealDeque::new(1000);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                while d.claim_front().is_some() {
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..3 {
                s.spawn(|| {
                    while d.claim_back().is_some() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_rows_disabled_without_context() {
        assert_eq!(run_rows(1_000_000, 8, |r| r.len(), |a, b| a + b), None);
    }

    #[test]
    fn run_rows_disabled_at_zero_bytes() {
        let _g = engage(0, None);
        assert_eq!(run_rows(1_000_000, 8, |r| r.len(), |a, b| a + b), None);
    }

    #[test]
    fn run_rows_single_morsel_falls_back() {
        let _g = engage(DEFAULT_MORSEL_BYTES, None);
        // 100 rows of 8 bytes fit one morsel: caller keeps legacy path.
        assert_eq!(run_rows(100, 8, |r| r.len(), |a, b| a + b), None);
    }

    #[test]
    fn run_rows_covers_every_row_in_order() {
        let _g = engage(1024, None); // 128 rows/morsel at 8 B/row
        let got = run_rows(
            10_000,
            8,
            |r| vec![r],
            |mut a: Vec<Range<usize>>, b| {
                a.extend(b);
                a
            },
        )
        .expect("morsel path engaged");
        assert_eq!(got.len(), 10_000usize.div_ceil(128));
        assert_eq!(got.first().map(|r| r.start), Some(0));
        assert_eq!(got.last().map(|r| r.end), Some(10_000));
        for w in got.windows(2) {
            assert_eq!(w[0].end, w[1].start, "fold out of index order: {w:?}");
        }
    }

    #[test]
    fn run_rows_sum_matches_serial() {
        let _g = engage(256, None);
        let n = 100_003usize;
        let got: u64 = run_rows(
            n,
            8,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a: u64, b| a + b,
        )
        .expect("morsel path engaged");
        assert_eq!(got, (0..n as u64).sum::<u64>());
    }

    #[test]
    fn run_rows_uses_helpers_when_budget_allows() {
        let budget = Arc::new(HelperBudget::new());
        for _ in 0..3 {
            budget.enter_idle();
        }
        let _g = engage(64, Some(Arc::clone(&budget)));
        let n = 50_000usize;
        let got: u64 = run_rows(
            n,
            8,
            |r| r.map(|i| i as u64).sum::<u64>(),
            |a: u64, b| a + b,
        )
        .expect("morsel path engaged");
        assert_eq!(got, (0..n as u64).sum::<u64>());
        // Helpers released their permits on exit.
        assert_eq!(budget.idle_now(), 3);
    }

    #[test]
    fn run_rows_stops_on_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let _t = govern::set_current(token);
        let _g = engage(64, None);
        let ran = AtomicUsize::new(0);
        let _ = run_rows(
            100_000,
            8,
            |r| {
                ran.fetch_add(1, Ordering::Relaxed);
                r.len()
            },
            |a, b| a + b,
        );
        // The owner checks the token after each claim: at most the first
        // claim's morsel runs before the stage stops.
        assert!(ran.load(Ordering::Relaxed) <= 1, "ran {} morsels", ran.load(Ordering::Relaxed));
    }

    #[test]
    fn budget_acquire_release_round_trip() {
        let b = HelperBudget::new();
        assert!(!b.try_acquire());
        b.enter_idle();
        assert!(b.try_acquire());
        assert!(!b.try_acquire());
        b.release();
        assert!(b.try_acquire());
        b.exit_idle();
        assert_eq!(b.idle_now(), -1);
    }
}
