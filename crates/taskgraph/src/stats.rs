//! Execution statistics.
//!
//! Every run reports what the scheduler actually did — how many tasks ran,
//! how many insertions were shared away, wall time — so the ablation
//! benchmarks can attribute speedups to specific optimizations.

use std::time::Duration;

/// Summary of one graph execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Tasks that executed and produced a payload.
    pub tasks_run: usize,
    /// Live nodes after dead-node pruning.
    pub live_nodes: usize,
    /// Total nodes in the graph.
    pub total_nodes: usize,
    /// Insertions answered by CSE during graph construction.
    pub cse_hits: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Tasks that panicked (the panic was isolated; the run continued).
    pub tasks_failed: usize,
    /// Tasks never run because an upstream dependency failed.
    pub tasks_skipped: usize,
    /// Tasks that finished but blew their per-task deadline.
    pub tasks_timed_out: usize,
}

impl ExecStats {
    /// Nodes skipped by dead-node pruning.
    pub fn pruned(&self) -> usize {
        self.total_nodes - self.live_nodes
    }

    /// Whether every live task produced a payload.
    pub fn fully_succeeded(&self) -> bool {
        self.tasks_failed == 0 && self.tasks_skipped == 0 && self.tasks_timed_out == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_counts() {
        let s = ExecStats { live_nodes: 7, total_nodes: 10, ..Default::default() };
        assert_eq!(s.pruned(), 3);
    }
}
