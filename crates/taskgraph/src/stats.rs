//! Execution statistics.
//!
//! Every run reports what the scheduler actually did — how many tasks ran,
//! how many insertions were shared away, wall time — so the ablation
//! benchmarks can attribute speedups to specific optimizations.

use std::time::Duration;

/// Summary of one graph execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Tasks actually executed.
    pub tasks_run: usize,
    /// Live nodes after dead-node pruning.
    pub live_nodes: usize,
    /// Total nodes in the graph.
    pub total_nodes: usize,
    /// Insertions answered by CSE during graph construction.
    pub cse_hits: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Nodes skipped by dead-node pruning.
    pub fn pruned(&self) -> usize {
        self.total_nodes - self.live_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_counts() {
        let s = ExecStats { live_nodes: 7, total_nodes: 10, ..Default::default() };
        assert_eq!(s.pruned(), 3);
    }
}
