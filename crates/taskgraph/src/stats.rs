//! Execution statistics.
//!
//! Every run reports what the scheduler actually did — how many tasks ran,
//! how many insertions were shared away, wall time — so the ablation
//! benchmarks can attribute speedups to specific optimizations. Runs
//! executed with [`crate::scheduler::ExecOptions::trace`] additionally
//! carry a full per-task [`RunTrace`].

use std::sync::Arc;
use std::time::Duration;

use crate::trace::RunTrace;

/// Summary of one graph execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Tasks that executed and produced a payload.
    pub tasks_run: usize,
    /// Live nodes after dead-node pruning.
    pub live_nodes: usize,
    /// Total nodes in the graph.
    pub total_nodes: usize,
    /// Insertions answered by CSE during graph construction.
    pub cse_hits: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Tasks that panicked (the panic was isolated; the run continued).
    pub tasks_failed: usize,
    /// Tasks never run because an upstream dependency failed.
    pub tasks_skipped: usize,
    /// Tasks that finished but blew their per-task deadline.
    pub tasks_timed_out: usize,
    /// Tasks satisfied by the cross-call result cache without executing
    /// ([`crate::cache::ResultCache`]).
    pub cache_hits: usize,
    /// Cache probes that found nothing; the task then executed normally.
    pub cache_misses: usize,
    /// Entries evicted during this run to respect the cache byte budget.
    pub cache_evictions: usize,
    /// Estimated payload bytes served from the cache instead of being
    /// recomputed.
    pub cache_bytes_saved: usize,
    /// Tasks recorded `Cancelled` because the run's
    /// [`crate::govern::CancelToken`] fired (request or run deadline).
    pub tasks_cancelled: usize,
    /// Tasks that were re-executed at least once after a transient
    /// failure ([`crate::govern::RetryPolicy`]).
    pub tasks_retried: usize,
    /// Tasks whose output charge was refused by the run's
    /// [`crate::govern::MemoryGauge`]; their payloads were dropped.
    pub tasks_budget_exceeded: usize,
    /// High-water mark of payload bytes charged against the run's memory
    /// gauge; zero when no budget was configured.
    pub mem_peak_bytes: usize,
    /// Per-task spans, recorded only when the run was traced
    /// ([`crate::scheduler::ExecOptions::trace`]); `None` otherwise so
    /// untraced runs stay allocation-free.
    pub trace: Option<Arc<RunTrace>>,
    /// Process-lifetime telemetry snapshot, taken right after this run
    /// was folded into the registry — present only when the run recorded
    /// metrics ([`crate::scheduler::ExecOptions::metrics`]); `None`
    /// otherwise so unmetered runs stay bit-identical.
    pub metrics: Option<Arc<crate::metrics::MetricsSnapshot>>,
}

impl ExecStats {
    /// Nodes skipped by dead-node pruning. Saturating: retries and
    /// engine-level stat merging can legitimately push `live_nodes` past
    /// `total_nodes` (EagerPerOp sums live counts across sub-runs), and
    /// "no pruning" is the honest answer then — not an underflow panic.
    pub fn pruned(&self) -> usize {
        self.total_nodes.saturating_sub(self.live_nodes)
    }

    /// Whether every live task produced a payload.
    pub fn fully_succeeded(&self) -> bool {
        self.tasks_failed == 0
            && self.tasks_skipped == 0
            && self.tasks_timed_out == 0
            && self.tasks_cancelled == 0
            && self.tasks_budget_exceeded == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_counts() {
        let s = ExecStats { live_nodes: 7, total_nodes: 10, ..Default::default() };
        assert_eq!(s.pruned(), 3);
    }

    #[test]
    fn pruned_saturates_when_live_exceeds_total() {
        // EagerPerOp merges live counts across per-output sub-runs, so a
        // shared dependency is "live" more than once.
        let s = ExecStats { live_nodes: 12, total_nodes: 10, ..Default::default() };
        assert_eq!(s.pruned(), 0);
    }
}
