//! Engine variants for the paper's Figure 6(a) comparison.
//!
//! The paper compares Dask, Modin, Koalas and PySpark computing the
//! intermediates of `plot(df)` and explains the ranking structurally
//! (§5.1): Dask evaluates one shared lazy graph; Modin evaluates eagerly
//! per operation so nothing is shared across visualizations; Koalas and
//! PySpark are lazy but pay heavy per-task scheduling overhead on a single
//! node. [`Engine`] encodes exactly those structural differences over the
//! same [`TaskGraph`], so the comparison isolates the scheduling model.

use std::time::Duration;

use crate::graph::{NodeId, TaskGraph};
use crate::scheduler::{
    run_pool_opts, run_single_thread_opts, ExecOptions, ExecResult,
};
use crate::trace::RunTrace;

/// How a task graph gets executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One shared lazy graph over a worker pool (the Dask model —
    /// DataPrep.EDA's choice).
    LazyParallel {
        /// Worker threads.
        workers: usize,
    },
    /// Each requested output is executed as its own graph, recomputing any
    /// shared dependencies (the Modin model: eager per-operation
    /// evaluation, no cross-visualization optimization).
    EagerPerOp {
        /// Worker threads.
        workers: usize,
    },
    /// One shared lazy graph, but every task pays a fixed scheduling
    /// latency (the Koalas/PySpark model: driver/JVM overhead per task,
    /// dominant on a single node).
    HeavyScheduler {
        /// Worker threads.
        workers: usize,
        /// Per-task scheduling latency in microseconds.
        overhead_us: u64,
    },
    /// Single-threaded topological execution (the plain-Pandas model).
    SingleThread,
}

impl Engine {
    /// Human-readable name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::LazyParallel { .. } => "LazyParallel (Dask)",
            Engine::EagerPerOp { .. } => "EagerPerOp (Modin)",
            Engine::HeavyScheduler { .. } => "HeavyScheduler (Koalas/PySpark)",
            Engine::SingleThread => "SingleThread (Pandas)",
        }
    }

    /// Execute `outputs` of `graph` under this engine's model.
    pub fn execute(&self, graph: &TaskGraph, outputs: &[NodeId]) -> ExecResult {
        self.execute_opts(graph, outputs, &ExecOptions::default())
    }

    /// [`Engine::execute`] with explicit [`ExecOptions`] (deadline,
    /// observer, tracing). `opts.per_task_latency` is overridden by
    /// [`Engine::HeavyScheduler`]'s own overhead.
    pub fn execute_opts(
        &self,
        graph: &TaskGraph,
        outputs: &[NodeId],
        opts: &ExecOptions,
    ) -> ExecResult {
        match *self {
            Engine::LazyParallel { workers } => run_pool_opts(graph, outputs, workers, opts),
            Engine::SingleThread => run_single_thread_opts(graph, outputs, opts),
            Engine::HeavyScheduler { workers, overhead_us } => {
                let opts = ExecOptions {
                    per_task_latency: Duration::from_micros(overhead_us),
                    ..opts.clone()
                };
                run_pool_opts(graph, outputs, workers, &opts)
            }
            Engine::EagerPerOp { workers } => {
                // One execution per output: shared dependencies rerun each
                // time, exactly like issuing eager ops one by one.
                let started = std::time::Instant::now();
                let mut all_outcomes = Vec::with_capacity(outputs.len());
                let mut stats = crate::stats::ExecStats {
                    total_nodes: graph.len(),
                    cse_hits: graph.cse_hits(),
                    workers,
                    ..Default::default()
                };
                // Per-output sub-runs each produce their own trace; offset
                // every sub-run's spans by its start within the merged
                // timeline so the Gantt view shows the sequential shape.
                let mut sub_traces = Vec::new();
                for &out in outputs {
                    let sub_started = started.elapsed();
                    let r = run_pool_opts(graph, &[out], workers, opts);
                    stats.tasks_run += r.stats.tasks_run;
                    stats.live_nodes += r.stats.live_nodes;
                    stats.tasks_failed += r.stats.tasks_failed;
                    stats.tasks_skipped += r.stats.tasks_skipped;
                    stats.tasks_timed_out += r.stats.tasks_timed_out;
                    stats.cache_hits += r.stats.cache_hits;
                    stats.cache_misses += r.stats.cache_misses;
                    stats.cache_evictions += r.stats.cache_evictions;
                    stats.cache_bytes_saved += r.stats.cache_bytes_saved;
                    stats.tasks_cancelled += r.stats.tasks_cancelled;
                    stats.tasks_retried += r.stats.tasks_retried;
                    stats.tasks_budget_exceeded += r.stats.tasks_budget_exceeded;
                    // Sub-runs share one gauge, so its peak is a running
                    // maximum, not a sum.
                    stats.mem_peak_bytes = stats.mem_peak_bytes.max(r.stats.mem_peak_bytes);
                    // Process-lifetime snapshots are cumulative; the last
                    // sub-run's already contains the earlier ones.
                    if r.stats.metrics.is_some() {
                        stats.metrics = r.stats.metrics.clone();
                    }
                    if let Some(t) = &r.stats.trace {
                        sub_traces.push((sub_started, RunTrace::clone(t)));
                    }
                    all_outcomes.extend(r.outcomes);
                }
                stats.elapsed = started.elapsed();
                if opts.trace {
                    stats.trace = Some(std::sync::Arc::new(RunTrace::merge_sequential(
                        sub_traces,
                        workers,
                        stats.elapsed,
                    )));
                }
                ExecResult { outcomes: all_outcomes, stats }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Payload;
    use crate::key::TaskKey;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn int(v: i64) -> Payload {
        Arc::new(v)
    }

    fn get(p: &Payload) -> i64 {
        *p.downcast_ref::<i64>().expect("i64")
    }

    /// A graph with one expensive shared node feeding two outputs, where
    /// the expensive node counts its executions.
    fn shared_graph(counter: Arc<AtomicUsize>) -> (TaskGraph, Vec<NodeId>) {
        let mut g = TaskGraph::new();
        let c = counter;
        let src = g.source("src", TaskKey::leaf("src", 0), move || {
            c.fetch_add(1, Ordering::SeqCst);
            int(7)
        });
        let o1 = g.op("a", 0, vec![src], |d| int(get(&d[0]) + 1));
        let o2 = g.op("b", 0, vec![src], |d| int(get(&d[0]) + 2));
        (g, vec![o1, o2])
    }

    #[test]
    fn all_engines_agree_on_results() {
        for engine in [
            Engine::LazyParallel { workers: 2 },
            Engine::EagerPerOp { workers: 2 },
            Engine::HeavyScheduler { workers: 2, overhead_us: 10 },
            Engine::SingleThread,
        ] {
            let (g, outs) = shared_graph(Arc::new(AtomicUsize::new(0)));
            let r = engine.execute(&g, &outs);
            assert_eq!(get(&r.outputs()[0]), 8, "{}", engine.name());
            assert_eq!(get(&r.outputs()[1]), 9, "{}", engine.name());
        }
    }

    #[test]
    fn lazy_shares_eager_recomputes() {
        let lazy_counter = Arc::new(AtomicUsize::new(0));
        let (g, outs) = shared_graph(Arc::clone(&lazy_counter));
        Engine::LazyParallel { workers: 2 }.execute(&g, &outs);
        assert_eq!(lazy_counter.load(Ordering::SeqCst), 1);

        let eager_counter = Arc::new(AtomicUsize::new(0));
        let (g, outs) = shared_graph(Arc::clone(&eager_counter));
        Engine::EagerPerOp { workers: 2 }.execute(&g, &outs);
        assert_eq!(eager_counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn eager_runs_more_tasks() {
        let (g, outs) = shared_graph(Arc::new(AtomicUsize::new(0)));
        let lazy = Engine::LazyParallel { workers: 1 }.execute(&g, &outs);
        let (g2, outs2) = shared_graph(Arc::new(AtomicUsize::new(0)));
        let eager = Engine::EagerPerOp { workers: 1 }.execute(&g2, &outs2);
        assert_eq!(lazy.stats.tasks_run, 3); // src, a, b
        assert_eq!(eager.stats.tasks_run, 4); // (src, a), (src, b)
    }

    #[test]
    fn heavy_scheduler_is_slower_than_lazy() {
        let (g, outs) = shared_graph(Arc::new(AtomicUsize::new(0)));
        let lazy = Engine::LazyParallel { workers: 1 }.execute(&g, &outs);
        let (g2, outs2) = shared_graph(Arc::new(AtomicUsize::new(0)));
        let heavy =
            Engine::HeavyScheduler { workers: 1, overhead_us: 3000 }.execute(&g2, &outs2);
        assert!(heavy.stats.elapsed > lazy.stats.elapsed);
    }

    #[test]
    fn every_engine_isolates_a_panicking_node() {
        for engine in [
            Engine::LazyParallel { workers: 2 },
            Engine::EagerPerOp { workers: 2 },
            Engine::HeavyScheduler { workers: 2, overhead_us: 10 },
            Engine::SingleThread,
        ] {
            let mut g = TaskGraph::new();
            let bad = g.source("bad", TaskKey::leaf("bad", 0), || -> Payload {
                panic!("kernel bug")
            });
            let good = g.source("good", TaskKey::leaf("good", 0), || int(5));
            let r = engine.execute(&g, &[bad, good]);
            assert!(r.outcomes[0].is_failed(), "{}", engine.name());
            assert_eq!(get(r.outcomes[1].payload().expect("good ok")), 5, "{}", engine.name());
            assert_eq!(r.stats.tasks_failed, 1, "{}", engine.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert!(Engine::LazyParallel { workers: 1 }.name().contains("Dask"));
        assert!(Engine::EagerPerOp { workers: 1 }.name().contains("Modin"));
        assert!(Engine::SingleThread.name().contains("Pandas"));
    }
}
