//! The lazy task graph.
//!
//! A [`TaskGraph`] is a DAG under construction: `eda-core` adds one task
//! per statistic/transform, and shared subcomputations collapse onto a
//! single node through structural-key deduplication. Nothing executes until
//! a [`crate::scheduler`] (via an [`crate::engine::Engine`]) is asked for
//! specific output nodes — the same lazy-then-optimize-then-execute flow
//! Dask gives the paper.

use std::collections::HashMap;
use std::sync::Arc;

use crate::inject::{self, FaultInjector};
use crate::key::TaskKey;

/// Type-erased task result, shared between dependents without copying.
pub type Payload = Arc<dyn std::any::Any + Send + Sync>;

/// The function a task runs: inputs arrive in dependency order.
pub type TaskFn = Arc<dyn Fn(&[Payload]) -> Payload + Send + Sync>;

/// Index of a task within its graph.
pub type NodeId = usize;

/// One node of the DAG.
pub struct Task {
    /// Debug/profiling label (op name).
    pub name: String,
    /// Structural identity used for deduplication.
    pub key: TaskKey,
    /// Dependency nodes, in the order their payloads are passed to `run`.
    pub deps: Vec<NodeId>,
    /// The computation.
    pub run: TaskFn,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("key", &self.key)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// A DAG of lazy tasks with insertion-time common-subexpression
/// elimination.
#[derive(Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    by_key: HashMap<TaskKey, NodeId>,
    /// When `false`, structurally identical tasks are *not* merged — used
    /// by the sharing ablation benchmark.
    dedup: bool,
    /// Number of insertions answered by an existing node.
    cse_hits: usize,
    /// Optional fault-injection hook consulted by schedulers at each
    /// dispatch (testing only; `None` in production graphs).
    fault: Option<Arc<FaultInjector>>,
}

impl TaskGraph {
    /// An empty graph with deduplication enabled. Adopts any fault
    /// injector armed on this thread via [`inject::arm`].
    pub fn new() -> Self {
        TaskGraph { dedup: true, fault: inject::armed(), ..Default::default() }
    }

    /// An empty graph with deduplication disabled (ablation mode: every
    /// insertion creates a fresh node, like building one graph per
    /// visualization).
    pub fn without_dedup() -> Self {
        TaskGraph { dedup: false, fault: inject::armed(), ..Default::default() }
    }

    /// Attach a fault injector explicitly.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.fault = Some(injector);
    }

    /// Remove any attached fault injector.
    pub fn clear_fault_injector(&mut self) {
        self.fault = None;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// How many insertions were deduplicated onto existing nodes.
    pub fn cse_hits(&self) -> usize {
        self.cse_hits
    }

    /// Borrow a task.
    pub fn task(&self, id: NodeId) -> &Task {
        &self.tasks[id]
    }

    /// All tasks, indexable by `NodeId`.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Add a source task (no dependencies). Returns the node id; when a
    /// task with the same key exists and dedup is on, that node is reused.
    pub fn source<F>(&mut self, name: &str, key: TaskKey, f: F) -> NodeId
    where
        F: Fn() -> Payload + Send + Sync + 'static,
    {
        self.add_task(name, key, Vec::new(), Arc::new(move |_: &[Payload]| f()))
    }

    /// Add a source task that simply yields an existing shared value.
    pub fn value(&mut self, name: &str, key: TaskKey, value: Payload) -> NodeId {
        self.source(name, key, move || Arc::clone(&value))
    }

    /// Add a derived task. `key` should be built with
    /// [`TaskKey::derived`] over the dependency keys so structural sharing
    /// works.
    pub fn derive<F>(&mut self, name: &str, key: TaskKey, deps: Vec<NodeId>, f: F) -> NodeId
    where
        F: Fn(&[Payload]) -> Payload + Send + Sync + 'static,
    {
        self.add_task(name, key, deps, Arc::new(f))
    }

    /// Convenience: derive a task whose key is computed from the op name,
    /// a parameter hash, and the dependency keys.
    pub fn op<F>(&mut self, name: &str, params: u64, deps: Vec<NodeId>, f: F) -> NodeId
    where
        F: Fn(&[Payload]) -> Payload + Send + Sync + 'static,
    {
        let dep_keys: Vec<TaskKey> = deps.iter().map(|&d| self.tasks[d].key).collect();
        let key = TaskKey::derived(name, params, &dep_keys);
        self.derive(name, key, deps, f)
    }

    fn add_task(&mut self, name: &str, key: TaskKey, deps: Vec<NodeId>, run: TaskFn) -> NodeId {
        if self.dedup {
            if let Some(&existing) = self.by_key.get(&key) {
                self.cse_hits += 1;
                return existing;
            }
        }
        for &d in &deps {
            assert!(d < self.tasks.len(), "dependency {d} does not exist yet");
        }
        let id = self.tasks.len();
        self.tasks.push(Task { name: name.to_string(), key, deps, run });
        if self.dedup {
            self.by_key.insert(key, id);
        }
        id
    }

    /// The set of nodes reachable from `outputs` (dead-node pruning): the
    /// executor only runs these. Returned as a boolean mask over node ids.
    pub fn reachable(&self, outputs: &[NodeId]) -> Vec<bool> {
        let mut live = vec![false; self.tasks.len()];
        let mut stack: Vec<NodeId> = outputs.to_vec();
        while let Some(id) = stack.pop() {
            if live[id] {
                continue;
            }
            live[id] = true;
            stack.extend(self.tasks[id].deps.iter().copied());
        }
        live
    }

    /// Topological order restricted to nodes live for `outputs`.
    ///
    /// Dependencies precede dependents. Insertion order already guarantees
    /// acyclicity (dependencies must exist before dependents), so this is a
    /// filtered identity walk.
    pub fn topo_order(&self, outputs: &[NodeId]) -> Vec<NodeId> {
        let live = self.reachable(outputs);
        (0..self.tasks.len()).filter(|&i| live[i]).collect()
    }

    /// Indegree (number of live dependencies) per live node; used by the
    /// parallel scheduler.
    pub fn live_indegrees(&self, live: &[bool]) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| if live[i] { t.deps.len() } else { 0 })
            .collect()
    }

    /// Live dependents (reverse edges) per node.
    pub fn live_dependents(&self, live: &[bool]) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            if live[i] {
                for &d in &t.deps {
                    out[d].push(i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Payload {
        Arc::new(v)
    }

    fn get(p: &Payload) -> i64 {
        *p.downcast_ref::<i64>().expect("i64 payload")
    }

    #[test]
    fn builds_and_keys_dedup() {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(2));
        let a2 = g.source("a", TaskKey::leaf("a", 0), || int(2));
        assert_eq!(a, a2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.cse_hits(), 1);
    }

    #[test]
    fn without_dedup_duplicates() {
        let mut g = TaskGraph::without_dedup();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(2));
        let a2 = g.source("a", TaskKey::leaf("a", 0), || int(2));
        assert_ne!(a, a2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.cse_hits(), 0);
    }

    #[test]
    fn op_shares_structurally_identical_work() {
        let mut g = TaskGraph::new();
        let src = g.source("src", TaskKey::leaf("src", 0), || int(10));
        // Two visualizations both need "double(src)".
        let d1 = g.op("double", 0, vec![src], |deps| int(get(&deps[0]) * 2));
        let d2 = g.op("double", 0, vec![src], |deps| int(get(&deps[0]) * 2));
        assert_eq!(d1, d2);
        // Different params: distinct node.
        let d3 = g.op("double", 1, vec![src], |deps| int(get(&deps[0]) * 2));
        assert_ne!(d1, d3);
    }

    #[test]
    fn reachable_prunes_dead_nodes() {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let b = g.source("b", TaskKey::leaf("b", 0), || int(2));
        let c = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let _dead = g.op("inc", 0, vec![b], |d| int(get(&d[0]) + 1));
        let live = g.reachable(&[c]);
        assert_eq!(live, vec![true, false, true, false]);
    }

    #[test]
    fn topo_order_is_dependency_first() {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let c = g.op("sum", 0, vec![a, b], |d| int(get(&d[0]) + get(&d[1])));
        let order = g.topo_order(&[c]);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn dependents_and_indegrees() {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let c = g.op("dec", 0, vec![a], |d| int(get(&d[0]) - 1));
        let live = g.reachable(&[b, c]);
        assert_eq!(g.live_indegrees(&live), vec![0, 1, 1]);
        let deps = g.live_dependents(&live);
        assert_eq!(deps[a], vec![b, c]);
        assert!(deps[b].is_empty());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.derive("bad", TaskKey::leaf("bad", 0), vec![5], |_| int(0));
    }
}
