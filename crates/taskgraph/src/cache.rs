//! Cross-call result cache: memoized task payloads keyed by
//! `(data fingerprint, TaskKey)`.
//!
//! The paper's single-graph optimization shares intermediates *within* one
//! EDA call; an interactive session is a sequence of calls over the same
//! frame, and without cross-call memory every `plot` re-sorts, re-buckets,
//! and re-ranks from scratch. Because task keys are structural (what is
//! computed) and the data's identity is an O(columns) fingerprint
//! (`eda_dataframe::DataFrame::fingerprint`, pointer + window + sample over
//! the zero-copy buffers), `(fingerprint, key)` fully determines a task's
//! payload — so a [`ResultCache`] can hand back last call's result
//! without running the task, and a copy-on-write mutation
//! (`Column::make_unique`) changes the fingerprint and naturally
//! invalidates every stale entry.
//!
//! The cache is byte-budgeted with LRU eviction: each entry carries the
//! payload-size estimate from [`crate::trace::estimate_payload_bytes`],
//! inserts evict least-recently-used entries until the total fits, and an
//! entry larger than the whole budget is simply not admitted. A budget of
//! zero disables the cache entirely (every probe misses, inserts are
//! dropped), which schedulers rely on for bit-identical uncached runs.
//!
//! Schedulers consult the cache before dispatch through a [`CacheHandle`]
//! (cache + the current run's data fingerprint) carried on
//! [`crate::scheduler::ExecOptions`]; only successful outcomes are ever
//! inserted, so `Failed`/`TimedOut`/injected-fault results cannot poison
//! later runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::graph::Payload;
use crate::key::TaskKey;

/// A byte-budgeted, LRU-evicting memo of task payloads, safe to share
/// across threads and runs.
pub struct ResultCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
    // Cumulative since construction, across every run that used this
    // cache (per-run deltas live in `ExecStats`).
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    bytes_saved: AtomicUsize,
}

#[derive(Default)]
struct Inner {
    map: HashMap<(u64, TaskKey), Entry>,
    /// Monotonic access counter backing LRU order.
    tick: u64,
    total_bytes: usize,
}

struct Entry {
    payload: Payload,
    bytes: usize,
    last_used: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ResultCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("entries", &inner.map.len())
            .field("total_bytes", &inner.total_bytes)
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `budget_bytes` of estimated payload bytes.
    /// A budget of `0` disables the cache: probes always miss (without
    /// counting) and inserts are dropped.
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            budget_bytes,
            inner: Mutex::new(Inner::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            bytes_saved: AtomicUsize::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Whether the cache admits anything at all.
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// Look up the payload of `(fingerprint, key)`, refreshing its LRU
    /// position. Returns the payload and its estimated byte size.
    pub fn get(&self, fingerprint: u64, key: TaskKey) -> Option<(Payload, usize)> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&(fingerprint, key)) {
            Some(entry) => {
                entry.last_used = tick;
                let found = (Arc::clone(&entry.payload), entry.bytes);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_saved.fetch_add(found.1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert the payload of `(fingerprint, key)`, evicting
    /// least-recently-used entries until the budget holds. Returns how
    /// many entries were evicted. Oversized payloads (`bytes >` budget)
    /// are not admitted; re-inserting an existing key refreshes it.
    pub fn insert(&self, fingerprint: u64, key: TaskKey, payload: Payload, bytes: usize) -> usize {
        if !self.enabled() || bytes > self.budget_bytes {
            return 0;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner
            .map
            .insert((fingerprint, key), Entry { payload, bytes, last_used: tick })
        {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;
        let mut evicted = 0usize;
        while inner.total_bytes > self.budget_bytes {
            // O(n) LRU scan: entry counts are small (hundreds of
            // intermediates), and eviction only runs when over budget.
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|(&k, _)| k != (fingerprint, key))
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let Some(entry) = inner.map.remove(&victim) else {
                break;
            };
            inner.total_bytes -= entry.bytes;
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().total_bytes
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.total_bytes = 0;
    }

    /// Cumulative hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative evictions since construction.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cumulative estimated bytes served from cache since construction.
    pub fn bytes_saved(&self) -> usize {
        self.bytes_saved.load(Ordering::Relaxed)
    }

    /// Hit rate over all probes since construction (0 when unprobed).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// Domain-aware payload byte sizer. Returns `Some(bytes)` for payload
/// types it recognises and `None` to fall back to the structural
/// estimate ([`crate::trace::estimate_payload_bytes`]), which only knows
/// primitive containers and charges a pointer-sized floor for opaque
/// types — wildly under-counting large domain structs.
pub type PayloadSizer = Arc<dyn Fn(&Payload) -> Option<usize> + Send + Sync>;

/// What a scheduler needs to consult the cache for one run: the shared
/// cache plus the fingerprint of the data this run computes over.
#[derive(Clone)]
pub struct CacheHandle {
    /// The shared cross-run cache.
    pub cache: Arc<ResultCache>,
    /// Fingerprint of the input data for this run; combined with each
    /// task's structural key to form the cache key.
    pub fingerprint: u64,
    /// Optional domain sizer consulted before the structural estimate
    /// when charging an inserted payload against the byte budget.
    pub sizer: Option<PayloadSizer>,
}

impl CacheHandle {
    /// Bundle a cache with the current run's data fingerprint.
    pub fn new(cache: Arc<ResultCache>, fingerprint: u64) -> CacheHandle {
        CacheHandle { cache, fingerprint, sizer: None }
    }

    /// Attach a domain payload sizer.
    pub fn with_sizer(mut self, sizer: PayloadSizer) -> CacheHandle {
        self.sizer = Some(sizer);
        self
    }

    /// Byte estimate for a payload: the domain sizer when it recognises
    /// the type, the structural estimate otherwise.
    pub fn payload_bytes(&self, payload: &Payload) -> usize {
        self.sizer
            .as_ref()
            .and_then(|s| s(payload))
            .unwrap_or_else(|| crate::trace::estimate_payload_bytes(payload))
    }
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHandle")
            .field("fingerprint", &self.fingerprint)
            .field("cache", &self.cache)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(v: i64) -> Payload {
        Arc::new(v)
    }

    fn key(n: u64) -> TaskKey {
        TaskKey::leaf("t", n)
    }

    #[test]
    fn get_after_insert_round_trips() {
        let c = ResultCache::new(1024);
        assert!(c.get(1, key(1)).is_none());
        c.insert(1, key(1), pl(42), 8);
        let (p, bytes) = c.get(1, key(1)).expect("hit");
        assert_eq!(*p.downcast_ref::<i64>().unwrap(), 42);
        assert_eq!(bytes, 8);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.bytes_saved(), 8);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_partitions_the_keyspace() {
        let c = ResultCache::new(1024);
        c.insert(1, key(1), pl(10), 8);
        c.insert(2, key(1), pl(20), 8);
        assert_eq!(*c.get(1, key(1)).unwrap().0.downcast_ref::<i64>().unwrap(), 10);
        assert_eq!(*c.get(2, key(1)).unwrap().0.downcast_ref::<i64>().unwrap(), 20);
        assert!(c.get(3, key(1)).is_none());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let c = ResultCache::new(100);
        c.insert(1, key(1), pl(1), 40);
        c.insert(1, key(2), pl(2), 40);
        // Touch key(1) so key(2) is the LRU victim.
        assert!(c.get(1, key(1)).is_some());
        let evicted = c.insert(1, key(3), pl(3), 40);
        assert_eq!(evicted, 1);
        assert!(c.total_bytes() <= 100, "total {}", c.total_bytes());
        assert!(c.get(1, key(1)).is_some(), "recently used survives");
        assert!(c.get(1, key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(1, key(3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn eviction_can_remove_several_entries() {
        let c = ResultCache::new(100);
        for i in 0..4 {
            c.insert(1, key(i), pl(i as i64), 25);
        }
        assert_eq!(c.len(), 4);
        let evicted = c.insert(1, key(99), pl(99), 75);
        assert_eq!(evicted, 3);
        assert_eq!(c.len(), 2);
        assert!(c.total_bytes() <= 100);
    }

    #[test]
    fn oversized_entries_not_admitted() {
        let c = ResultCache::new(10);
        assert_eq!(c.insert(1, key(1), pl(1), 100), 0);
        assert_eq!(c.len(), 0);
        // And never evicts what's there to make room for something that
        // cannot fit anyway.
        c.insert(1, key(2), pl(2), 5);
        c.insert(1, key(3), pl(3), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_budget_disables_everything() {
        let c = ResultCache::new(0);
        assert!(!c.enabled());
        c.insert(1, key(1), pl(1), 0);
        assert!(c.get(1, key(1)).is_none());
        assert_eq!(c.len(), 0);
        // Disabled probes don't even count as misses.
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let c = ResultCache::new(100);
        c.insert(1, key(1), pl(1), 30);
        c.insert(1, key(1), pl(2), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), 50);
        assert_eq!(*c.get(1, key(1)).unwrap().0.downcast_ref::<i64>().unwrap(), 2);
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let c = ResultCache::new(100);
        c.insert(1, key(1), pl(1), 10);
        c.get(1, key(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let c = Arc::new(ResultCache::new(1 << 20));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..100 {
                        c.insert(t, key(i), pl(i as i64), 64);
                        c.get(t, key(i));
                    }
                });
            }
        });
        assert!(c.total_bytes() <= 1 << 20);
        assert!(c.hits() > 0);
    }
}
