//! # eda-taskgraph
//!
//! A lazy task-graph execution engine: the "Dask role" substrate of the
//! `dataprep-eda` workspace (Rust reproduction of *DataPrep.EDA*, SIGMOD
//! 2021).
//!
//! The paper's central performance idea (§5.2) is to express **all** the
//! computations one EDA call needs as a *single* lazy graph, let the engine
//! deduplicate shared subcomputations, and execute the optimized graph in
//! parallel over data partitions. This crate provides exactly that:
//!
//! * [`graph::TaskGraph`] — a DAG of tasks whose payloads are type-erased
//!   `Arc` values. Every task carries a **structural key** (op name +
//!   parameter hash + dependency keys); inserting a task whose key already
//!   exists returns the existing node, which is the
//!   *common-subexpression-elimination* that shares computations between
//!   visualizations (e.g. quantiles feeding stats table, box plot, and Q-Q
//!   plot are computed once).
//! * [`scheduler`] — executors: a single-thread topological runner and a
//!   multi-worker pool (crossbeam channels) that runs ready tasks as their
//!   dependencies complete. Both isolate panics per task
//!   ([`outcome::TaskOutcome`]), skip dependents of failed nodes instead of
//!   aborting the run, and support per-task deadlines.
//! * [`inject`] — a deterministic fault-injection harness (panic / stall /
//!   garbage payload / transient failure / wedge at a chosen task) used to
//!   test the fault tolerance end to end.
//! * [`govern`] — resource governance: cooperative cancellation tokens,
//!   per-run memory gauges, retry-with-backoff policies, and a
//!   process-wide admission gate, all inert unless attached via
//!   [`scheduler::ExecOptions`].
//! * [`engine::Engine`] — the engine variants compared in the paper's
//!   Figure 6(a): `LazyParallel` (Dask), `EagerPerOp` (Modin: one graph per
//!   output, no cross-output sharing), `HeavyScheduler` (Koalas/PySpark:
//!   lazy but with per-task scheduling latency), and `SingleThread`
//!   (Pandas).
//! * [`partition`] — chunked dataframes with the *chunk-size precompute*
//!   stage the paper adds before graph construction, plus map/tree-reduce
//!   combinators.
//! * [`cluster`] — a cost-model simulator for the scale-out experiment
//!   (Figure 6(c)); see DESIGN.md for the substitution rationale.

#![warn(missing_docs)]
// Test code asserts; the crate-wide unwrap/expect deny (see
// Cargo.toml [lints]) applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod cluster;
pub mod engine;
pub mod govern;
pub mod graph;
pub mod ingest;
pub mod inject;
pub mod key;
pub mod metrics;
pub mod morsel;
pub mod ops;
pub mod outcome;
pub mod partition;
pub mod scheduler;
pub mod stats;
pub mod trace;

pub use cache::{CacheHandle, PayloadSizer, ResultCache};
pub use engine::Engine;
pub use govern::{
    AdmissionGate, AdmissionPermit, CancelReason, CancelToken, MemoryGauge, Overloaded,
    RetryPolicy,
};
pub use graph::{NodeId, Payload, TaskGraph};
pub use ingest::{run_chunk_tasks, run_chunk_waves, WaveStats};
pub use inject::{FaultInjector, FaultMode, FaultPlan, FaultTarget};
pub use key::TaskKey;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use outcome::{TaskError, TaskFailure, TaskOutcome};
pub use partition::{ChunkMeta, PartitionedFrame};
pub use stats::ExecStats;
pub use trace::{LogLevel, RunTrace, SpanStatus, TaskSpan};
