//! Graph executors.
//!
//! Two schedulers share the same contract: run the live subgraph for the
//! requested outputs, dependencies before dependents, and return output
//! payloads plus [`ExecStats`].
//!
//! * [`run_single_thread`] walks the pruned topological order in the
//!   calling thread — the "Pandas phase" executor, and the baseline for
//!   scheduling-overhead comparisons.
//! * [`run_pool`] drives a crossbeam-channel worker pool: ready tasks are
//!   pushed to workers, completions decrement dependent indegrees, newly
//!   ready tasks are pushed in turn. An optional per-task latency models
//!   heavyweight schedulers (the paper's Koalas/PySpark comparison).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use crate::graph::{NodeId, Payload, TaskGraph};
use crate::stats::ExecStats;

/// Observer invoked after every completed task with
/// `(completed, total_live)` — backs the front-end progress bar of the
/// paper's Figure 1 (part B).
pub type ProgressObserver = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// Result of one execution: payloads for the requested outputs (same
/// order), plus statistics.
pub struct ExecResult {
    /// Output payloads, parallel to the requested output ids.
    pub outputs: Vec<Payload>,
    /// What the scheduler did.
    pub stats: ExecStats,
}

/// Execute in the calling thread, in topological order.
pub fn run_single_thread(graph: &TaskGraph, outputs: &[NodeId]) -> ExecResult {
    let started = Instant::now();
    let order = graph.topo_order(outputs);
    let mut results: Vec<Option<Payload>> = vec![None; graph.len()];
    for &id in &order {
        let task = graph.task(id);
        let inputs: Vec<Payload> = task
            .deps
            .iter()
            .map(|&d| results[d].clone().expect("dependency computed"))
            .collect();
        results[id] = Some((task.run)(&inputs));
    }
    let outputs_payloads = outputs
        .iter()
        .map(|&id| results[id].clone().expect("output computed"))
        .collect();
    ExecResult {
        outputs: outputs_payloads,
        stats: ExecStats {
            tasks_run: order.len(),
            live_nodes: order.len(),
            total_nodes: graph.len(),
            cse_hits: graph.cse_hits(),
            workers: 1,
            elapsed: started.elapsed(),
        },
    }
}

/// Execute over a pool of `workers` threads.
///
/// `per_task_latency` injects a fixed scheduling delay before each task,
/// modelling engines whose driver adds per-task overhead (paper §5.1's
/// explanation of Koalas/PySpark single-node behaviour). Use
/// `Duration::ZERO` for the Dask-like engine.
pub fn run_pool(
    graph: &TaskGraph,
    outputs: &[NodeId],
    workers: usize,
    per_task_latency: Duration,
) -> ExecResult {
    run_pool_observed(graph, outputs, workers, per_task_latency, None)
}

/// [`run_pool`] with an optional progress observer called after each
/// completed task.
pub fn run_pool_observed(
    graph: &TaskGraph,
    outputs: &[NodeId],
    workers: usize,
    per_task_latency: Duration,
    observer: Option<ProgressObserver>,
) -> ExecResult {
    let workers = workers.max(1);
    let started = Instant::now();
    let live = graph.reachable(outputs);
    let live_count = live.iter().filter(|&&b| b).count();
    if live_count == 0 {
        return ExecResult {
            outputs: Vec::new(),
            stats: ExecStats {
                tasks_run: 0,
                live_nodes: 0,
                total_nodes: graph.len(),
                cse_hits: graph.cse_hits(),
                workers,
                elapsed: started.elapsed(),
            },
        };
    }
    let dependents = graph.live_dependents(&live);
    let mut indegrees = graph.live_indegrees(&live);

    let results: Arc<Vec<Mutex<Option<Payload>>>> =
        Arc::new((0..graph.len()).map(|_| Mutex::new(None)).collect());

    let (ready_tx, ready_rx) = channel::unbounded::<NodeId>();
    let (done_tx, done_rx) = channel::unbounded::<NodeId>();

    // Seed the ready queue.
    for (id, &is_live) in live.iter().enumerate() {
        if is_live && indegrees[id] == 0 {
            ready_tx.send(id).expect("queue open");
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let ready_rx = ready_rx.clone();
            let done_tx = done_tx.clone();
            let results = Arc::clone(&results);
            scope.spawn(move || {
                while let Ok(id) = ready_rx.recv() {
                    if per_task_latency > Duration::ZERO {
                        spin_for(per_task_latency);
                    }
                    let task = graph.task(id);
                    let inputs: Vec<Payload> = task
                        .deps
                        .iter()
                        .map(|&d| {
                            results[d]
                                .lock()
                                .clone()
                                .expect("dependency computed before dependent")
                        })
                        .collect();
                    let out = (task.run)(&inputs);
                    *results[id].lock() = Some(out);
                    if done_tx.send(id).is_err() {
                        break;
                    }
                }
            });
        }

        // Coordinator: track completions, release newly ready tasks.
        let mut completed = 0usize;
        while completed < live_count {
            let id = done_rx.recv().expect("workers alive");
            completed += 1;
            if let Some(obs) = &observer {
                obs(completed, live_count);
            }
            for &dep in &dependents[id] {
                indegrees[dep] -= 1;
                if indegrees[dep] == 0 {
                    ready_tx.send(dep).expect("queue open");
                }
            }
        }
        // Closing the channel terminates the workers.
        drop(ready_tx);
    });

    let outputs_payloads = outputs
        .iter()
        .map(|&id| results[id].lock().clone().expect("output computed"))
        .collect();
    ExecResult {
        outputs: outputs_payloads,
        stats: ExecStats {
            tasks_run: live_count,
            live_nodes: live_count,
            total_nodes: graph.len(),
            cse_hits: graph.cse_hits(),
            workers,
            elapsed: started.elapsed(),
        },
    }
}

/// Busy-wait for `d` (sleep granularity is far too coarse for the
/// microsecond-scale overheads the engine comparison injects).
fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TaskKey;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn int(v: i64) -> Payload {
        Arc::new(v)
    }

    fn get(p: &Payload) -> i64 {
        *p.downcast_ref::<i64>().expect("i64")
    }

    fn diamond() -> (TaskGraph, NodeId) {
        // a -> (b, c) -> d
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let c = g.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
        let d = g.op("sum", 0, vec![b, c], |d| int(get(&d[0]) + get(&d[1])));
        (g, d)
    }

    #[test]
    fn single_thread_diamond() {
        let (g, out) = diamond();
        let r = run_single_thread(&g, &[out]);
        assert_eq!(get(&r.outputs[0]), 31);
        assert_eq!(r.stats.tasks_run, 4);
        assert_eq!(r.stats.workers, 1);
    }

    #[test]
    fn pool_diamond_matches_single_thread() {
        let (g, out) = diamond();
        for workers in [1, 2, 4] {
            let r = run_pool(&g, &[out], workers, Duration::ZERO);
            assert_eq!(get(&r.outputs[0]), 31, "workers={workers}");
            assert_eq!(r.stats.tasks_run, 4);
        }
    }

    #[test]
    fn dead_nodes_not_executed() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let _dead = g.source("dead", TaskKey::leaf("dead", 0), || {
            RUNS.fetch_add(1, Ordering::SeqCst);
            int(99)
        });
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let r = run_single_thread(&g, &[b]);
        assert_eq!(get(&r.outputs[0]), 2);
        assert_eq!(RUNS.load(Ordering::SeqCst), 0);
        assert_eq!(r.stats.tasks_run, 2);
        assert_eq!(r.stats.pruned(), 1);

        let r2 = run_pool(&g, &[b], 2, Duration::ZERO);
        assert_eq!(get(&r2.outputs[0]), 2);
        assert_eq!(RUNS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shared_node_runs_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let c2 = Arc::clone(&counter);
        let src = g.source("src", TaskKey::leaf("src", 0), move || {
            c2.fetch_add(1, Ordering::SeqCst);
            int(5)
        });
        // Two consumers of a CSE-shared expensive node.
        let shared1 = g.op("expensive", 0, vec![src], |d| int(get(&d[0]) * 10));
        let shared2 = g.op("expensive", 0, vec![src], |d| int(get(&d[0]) * 10));
        assert_eq!(shared1, shared2);
        let u1 = g.op("plus1", 0, vec![shared1], |d| int(get(&d[0]) + 1));
        let u2 = g.op("plus2", 0, vec![shared2], |d| int(get(&d[0]) + 2));
        let r = run_pool(&g, &[u1, u2], 2, Duration::ZERO);
        assert_eq!(get(&r.outputs[0]), 51);
        assert_eq!(get(&r.outputs[1]), 52);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert_eq!(r.stats.tasks_run, 4); // src, expensive, plus1, plus2
    }

    #[test]
    fn multiple_outputs_order_preserved() {
        let (g, out) = diamond();
        // Request outputs in reverse creation order.
        let r = run_single_thread(&g, &[out, 0]);
        assert_eq!(get(&r.outputs[0]), 31);
        assert_eq!(get(&r.outputs[1]), 10);
    }

    #[test]
    fn empty_outputs() {
        let (g, _) = diamond();
        let r = run_pool(&g, &[], 2, Duration::ZERO);
        assert!(r.outputs.is_empty());
        assert_eq!(r.stats.tasks_run, 0);
    }

    #[test]
    fn per_task_latency_slows_execution() {
        let (g, out) = diamond();
        let fast = run_pool(&g, &[out], 1, Duration::ZERO);
        let slow = run_pool(&g, &[out], 1, Duration::from_millis(2));
        assert!(slow.stats.elapsed > fast.stats.elapsed);
        assert!(slow.stats.elapsed >= Duration::from_millis(8)); // 4 tasks × 2ms
        assert_eq!(get(&slow.outputs[0]), 31);
    }

    #[test]
    fn progress_observer_sees_every_completion() {
        let (g, out) = diamond();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let obs: ProgressObserver = Arc::new(move |done, total| {
            seen2.lock().push((done, total));
        });
        let r = run_pool_observed(&g, &[out], 2, Duration::ZERO, Some(obs));
        assert_eq!(get(&r.outputs[0]), 31);
        let events = seen.lock().clone();
        assert_eq!(events.len(), 4);
        assert_eq!(events.last(), Some(&(4, 4)));
        // Monotone completion counter.
        assert!(events.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn wide_graph_under_pool() {
        // 100 independent sources reduced pairwise: exercises the queue.
        let mut g = TaskGraph::new();
        let leaves: Vec<NodeId> = (0..100)
            .map(|i| g.source("leaf", TaskKey::leaf("leaf", i), move || int(i as i64)))
            .collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(g.op("add", 0, vec![pair[0], pair[1]], |d| {
                        int(get(&d[0]) + get(&d[1]))
                    }));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let r = run_pool(&g, &[layer[0]], 4, Duration::ZERO);
        assert_eq!(get(&r.outputs[0]), (0..100).sum::<i64>());
    }
}
