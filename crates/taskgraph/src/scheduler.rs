//! Graph executors.
//!
//! Two schedulers share the same contract: run the live subgraph for the
//! requested outputs, dependencies before dependents, and return one
//! [`TaskOutcome`] per requested output plus [`ExecStats`].
//!
//! * [`run_single_thread`] walks the pruned topological order in the
//!   calling thread — the "Pandas phase" executor, and the baseline for
//!   scheduling-overhead comparisons.
//! * [`run_pool`] drives a crossbeam-channel worker pool: ready tasks are
//!   pushed to workers, completions decrement dependent indegrees, newly
//!   ready tasks are pushed in turn. An optional per-task latency models
//!   heavyweight schedulers (the paper's Koalas/PySpark comparison).
//!
//! Both are fault tolerant: every task body runs under
//! `std::panic::catch_unwind`, so a panicking kernel produces a
//! [`TaskOutcome::Failed`] for its node, its dependents are recorded as
//! `Skipped` without running, and every *other* branch of the graph
//! completes normally. An optional per-task deadline
//! ([`ExecOptions::deadline`]) marks over-budget tasks `TimedOut` with
//! the same skip propagation.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use crate::cache::{CacheHandle, PayloadSizer};
use crate::govern::{self, CancelToken, MemoryGauge, RetryPolicy};
use crate::graph::{NodeId, Payload, TaskGraph};
use crate::inject::{FaultMode, Garbage};
use crate::outcome::{TaskError, TaskFailure, TaskOutcome};
use crate::stats::ExecStats;
use crate::trace::{self, LogLevel, RunTrace, SpanStatus, TaskSpan};

/// Observer invoked after every completed task with
/// `(completed, total_live)` — backs the front-end progress bar of the
/// paper's Figure 1 (part B).
pub type ProgressObserver = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// Knobs shared by both schedulers.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Fixed scheduling delay before each task, modelling engines whose
    /// driver adds per-task overhead (paper §5.1's explanation of
    /// Koalas/PySpark single-node behaviour). `Duration::ZERO` for the
    /// Dask-like engine.
    pub per_task_latency: Duration,
    /// Per-task wall-clock budget. A task that finishes later than this
    /// is recorded as `TimedOut` and its dependents are skipped. `None`
    /// disables the check.
    pub deadline: Option<Duration>,
    /// Called after every completed task with `(completed, total_live)`.
    pub observer: Option<ProgressObserver>,
    /// Record a [`TaskSpan`] per dispatched task and attach the merged
    /// [`RunTrace`] to `ExecStats`. Off by default: untraced runs branch
    /// around every recording site and allocate nothing.
    pub trace: bool,
    /// Cross-run result cache plus the current data fingerprint. When
    /// set, both schedulers probe the cache before dispatch (a hit
    /// short-circuits the node and transitively satisfies its
    /// dependents) and insert successful derived results after. `None`
    /// executes everything, bit-identical to the pre-cache behaviour.
    pub cache: Option<CacheHandle>,
    /// Run-level cancellation token ([`crate::govern`]). Checked before
    /// every dispatch and installed as the thread's current token around
    /// each task body (merged with the per-task `deadline`, if any) so
    /// kernels can bail at morsel boundaries. `None` disables every
    /// check, bit-identical to pre-governance behaviour.
    pub cancel: Option<CancelToken>,
    /// Per-run memory budget gauge: each completed task's payload bytes
    /// are charged against it, and a refused charge fails the task with
    /// `TaskFailure::BudgetExceeded` (dropping the payload) instead of
    /// letting the run's footprint grow unbounded. `None` disables
    /// accounting entirely.
    pub gauge: Option<MemoryGauge>,
    /// Retry policy for transient failures ([`TaskFailure::is_transient`]).
    /// The default (zero retries) executes every task exactly once.
    pub retry: RetryPolicy,
    /// Domain-aware payload pricing for the memory gauge. When set it is
    /// consulted first (before the cache's sizer and the generic
    /// estimator) so budgets see real payload sizes even when the result
    /// cache is disabled. `None` changes nothing.
    pub sizer: Option<PayloadSizer>,
    /// Record this run into the process-lifetime
    /// [`crate::metrics::MetricsRegistry`]: per-task durations at task
    /// completion, the run's aggregate counters on finish, and a
    /// [`crate::metrics::MetricsSnapshot`] attached to `ExecStats`. Off
    /// by default: unmetered runs branch around every recording site and
    /// stay bit-identical to pre-metrics behaviour.
    pub metrics: bool,
    /// Morsel size for intra-task work stealing ([`crate::morsel`]),
    /// in payload bytes (`engine.morsel_bytes`). Kernels that opt in
    /// split their row ranges into morsels of roughly this many bytes
    /// and let idle pool workers steal them, levelling skewed
    /// partitionings. `0` (the default) disables splitting entirely —
    /// kernels keep their whole-slice paths, bit-identical to
    /// pre-morsel behaviour.
    pub morsel_bytes: usize,
}

/// Result of one execution: an outcome per requested output (same
/// order), plus statistics.
pub struct ExecResult {
    /// Per-output outcomes, parallel to the requested output ids.
    pub outcomes: Vec<TaskOutcome>,
    /// What the scheduler did.
    pub stats: ExecStats,
}

impl ExecResult {
    /// Output payloads for fully successful runs. Panics with the task
    /// error if any requested output failed — the infallible-caller
    /// convenience; fault-aware callers should inspect `outcomes`.
    pub fn outputs(&self) -> Vec<Payload> {
        // eda-lint: allow(EDA-L5) documented infallible-caller convenience; fault-aware callers use `outcomes`
        self.outcomes.iter().map(|o| o.clone().unwrap()).collect() // TaskOutcome::unwrap, documented panic
    }

    /// The first failed output's error, if any.
    pub fn first_failure(&self) -> Option<Arc<TaskError>> {
        self.outcomes.iter().find_map(|o| o.error().cloned())
    }

    /// Errors for every failed output.
    pub fn failures(&self) -> Vec<Arc<TaskError>> {
        self.outcomes.iter().filter_map(|o| o.error().cloned()).collect()
    }
}

/// Execute in the calling thread, in topological order.
pub fn run_single_thread(graph: &TaskGraph, outputs: &[NodeId]) -> ExecResult {
    run_single_thread_opts(graph, outputs, &ExecOptions::default())
}

/// Cache-aware liveness plan: which nodes this run must touch, and which
/// of those are already satisfied by the cross-run cache.
struct CachePlan {
    /// `(payload, byte estimate)` for nodes answered by the cache.
    hits: Vec<Option<(Payload, usize)>>,
    /// Nodes this run needs. Unlike [`TaskGraph::reachable`], the reverse
    /// walk *stops* at cache hits, so a hit transitively satisfies its
    /// whole upstream cone — those dependencies are not live and never
    /// dispatch.
    live: Vec<bool>,
    /// Number of cache hits among live nodes.
    hit_count: usize,
    /// Number of probed-but-absent derived nodes.
    misses: usize,
    /// Estimated payload bytes served from the cache.
    bytes_saved: usize,
}

impl CachePlan {
    /// Probe the cache along a reverse DFS from `outputs`. Only derived
    /// nodes (with dependencies) are probed: sources hold their payload
    /// by construction, so caching them buys nothing and would pin input
    /// data in the cache.
    fn build(graph: &TaskGraph, outputs: &[NodeId], handle: &CacheHandle) -> CachePlan {
        let mut plan = CachePlan {
            hits: (0..graph.len()).map(|_| None).collect(),
            live: vec![false; graph.len()],
            hit_count: 0,
            misses: 0,
            bytes_saved: 0,
        };
        let probe = handle.cache.enabled();
        let mut stack: Vec<NodeId> = outputs.to_vec();
        while let Some(id) = stack.pop() {
            if plan.live[id] {
                continue;
            }
            plan.live[id] = true;
            let task = graph.task(id);
            if probe && !task.deps.is_empty() {
                if let Some(found) = handle.cache.get(handle.fingerprint, task.key) {
                    plan.hit_count += 1;
                    plan.bytes_saved += found.1;
                    plan.hits[id] = Some(found);
                    continue; // upstream cone satisfied; don't traverse
                }
                plan.misses += 1;
            }
            stack.extend(task.deps.iter().copied());
        }
        plan
    }

    /// Zero-width span for a cache hit (start == end == `at`).
    fn span(&self, graph: &TaskGraph, id: NodeId, worker: usize, at: Duration) -> TaskSpan {
        let task = graph.task(id);
        TaskSpan {
            node: id,
            name: task.name.clone(),
            worker,
            start: at,
            end: at,
            queue_wait: Duration::ZERO,
            status: SpanStatus::Cached,
            payload_bytes: self.hits[id].as_ref().map_or(0, |(_, b)| *b),
            deps: task.deps.clone(),
        }
    }
}

/// A `Failed` outcome recording a broken scheduler invariant at `id`
/// (a dependency result missing at dispatch, a closed work queue, a
/// lost worker). Schedulers return these instead of panicking so a
/// violated invariant degrades to a partial report with a named cause.
fn internal_failure(graph: &TaskGraph, id: NodeId, msg: &str) -> TaskOutcome {
    TaskOutcome::Failed(Arc::new(TaskError {
        task: id,
        name: graph.task(id).name.clone(),
        failure: TaskFailure::Internal(msg.to_string()),
        elapsed: Duration::ZERO,
    }))
}

/// Insert a successful derived result into the cache, returning the
/// evictions it forced. Only `Ok` outcomes of nodes with dependencies are
/// admitted — failed, timed-out, and skipped tasks never populate the
/// cache, so fault-injected runs cannot poison later ones. A run whose
/// cancel token has fired, or whose memory gauge has refused a charge,
/// stops inserting entirely: kernels may be bailing at morsel boundaries
/// by then, and a degraded run must never seed later healthy ones.
fn cache_insert(opts: &ExecOptions, graph: &TaskGraph, id: NodeId, outcome: &TaskOutcome) -> usize {
    let Some(handle) = &opts.cache else {
        return 0;
    };
    if opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
        || opts.gauge.as_ref().is_some_and(|g| g.denials() > 0)
    {
        return 0;
    }
    let task = graph.task(id);
    if task.deps.is_empty() {
        return 0;
    }
    match outcome {
        TaskOutcome::Ok(payload) => {
            let bytes = handle.payload_bytes(payload);
            handle.cache.insert(handle.fingerprint, task.key, Arc::clone(payload), bytes)
        }
        TaskOutcome::Failed(_) => 0,
    }
}

/// [`run_single_thread`] with explicit [`ExecOptions`].
pub fn run_single_thread_opts(
    graph: &TaskGraph,
    outputs: &[NodeId],
    opts: &ExecOptions,
) -> ExecResult {
    let started = Instant::now();
    let run_id = trace::next_run_id();
    // Morsel context without a helper budget: kernels still split (for
    // bounded-latency cancellation probes) but no helpers ever spawn.
    let _morsel = crate::morsel::engage(opts.morsel_bytes, None);
    let plan = opts.cache.as_ref().map(|h| CachePlan::build(graph, outputs, h));
    let order: Vec<NodeId> = match &plan {
        Some(p) => (0..graph.len()).filter(|&i| p.live[i]).collect(),
        None => graph.topo_order(outputs),
    };
    let mut results: Vec<Option<TaskOutcome>> = vec![None; graph.len()];
    let mut span_buf: Vec<TaskSpan> = Vec::new();
    let mut evictions = 0usize;
    let mut retried_tasks = 0usize;
    for (done, &id) in order.iter().enumerate() {
        if let Some(p) = &plan {
            if let Some((payload, _)) = &p.hits[id] {
                if opts.trace {
                    span_buf.push(p.span(graph, id, 0, started.elapsed()));
                }
                results[id] = Some(TaskOutcome::Ok(Arc::clone(payload)));
                if let Some(obs) = &opts.observer {
                    obs(done + 1, order.len());
                }
                continue;
            }
        }
        let inputs: Vec<TaskOutcome> = graph
            .task(id)
            .deps
            .iter()
            .map(|&d| {
                results[d].clone().unwrap_or_else(|| {
                    internal_failure(graph, d, "dependency result missing at dispatch")
                })
            })
            .collect();
        let (outcome, timing, retries) = execute_node(graph, id, &inputs, opts, started, run_id);
        retried_tasks += usize::from(retries > 0);
        if let Some(timing) = timing {
            span_buf.push(make_span(graph, id, 0, timing, &outcome, retries));
        }
        evictions += cache_insert(opts, graph, id, &outcome);
        results[id] = Some(outcome);
        if let Some(obs) = &opts.observer {
            obs(done + 1, order.len());
        }
    }
    let outcomes = outputs
        .iter()
        .map(|&id| {
            results[id]
                .clone()
                .unwrap_or_else(|| internal_failure(graph, id, "requested output never completed"))
        })
        .collect();
    let elapsed = started.elapsed();
    let run_trace = opts
        .trace
        .then(|| Arc::new(RunTrace::from_buffers(vec![span_buf], 1, elapsed)));
    let mut stats = tally(
        order.iter().filter_map(|&id| results[id].as_ref()),
        order.len(),
        graph,
        1,
        elapsed,
        run_trace,
        run_id,
    );
    stats.tasks_retried = retried_tasks;
    apply_cache_stats(&mut stats, plan.as_ref(), evictions);
    apply_gauge_stats(&mut stats, opts);
    apply_metrics(&mut stats, opts);
    ExecResult { outcomes, stats }
}

/// Record the run's memory high-water mark when a gauge was attached.
fn apply_gauge_stats(stats: &mut ExecStats, opts: &ExecOptions) {
    if let Some(gauge) = &opts.gauge {
        stats.mem_peak_bytes = gauge.peak();
    }
}

/// Fold the finished run into the process-lifetime registry and attach
/// a fresh snapshot, when the run opted in. Runs last so the snapshot
/// already reflects this run's own counters.
fn apply_metrics(stats: &mut ExecStats, opts: &ExecOptions) {
    if opts.metrics {
        let registry = crate::metrics::global();
        registry.record_run(stats);
        if let Some(handle) = &opts.cache {
            registry.cache_resident_bytes.set(handle.cache.total_bytes() as u64);
            registry.cache_budget_bytes.set(handle.cache.budget_bytes() as u64);
        }
        stats.metrics = Some(Arc::new(registry.snapshot()));
    }
}

/// Fold a run's cache activity into its stats. Hit nodes carry `Ok`
/// outcomes, so `tally` counted them as executed; reclassify them.
fn apply_cache_stats(stats: &mut ExecStats, plan: Option<&CachePlan>, evictions: usize) {
    if let Some(p) = plan {
        stats.tasks_run = stats.tasks_run.saturating_sub(p.hit_count);
        stats.cache_hits = p.hit_count;
        stats.cache_misses = p.misses;
        stats.cache_bytes_saved = p.bytes_saved;
        stats.cache_evictions = evictions;
    }
}

/// Execute over a pool of `workers` threads.
///
/// `per_task_latency` injects a fixed scheduling delay before each task,
/// modelling engines whose driver adds per-task overhead (paper §5.1's
/// explanation of Koalas/PySpark single-node behaviour). Use
/// `Duration::ZERO` for the Dask-like engine.
pub fn run_pool(
    graph: &TaskGraph,
    outputs: &[NodeId],
    workers: usize,
    per_task_latency: Duration,
) -> ExecResult {
    run_pool_opts(
        graph,
        outputs,
        workers,
        &ExecOptions { per_task_latency, ..ExecOptions::default() },
    )
}

/// [`run_pool`] with an optional progress observer called after each
/// completed task.
pub fn run_pool_observed(
    graph: &TaskGraph,
    outputs: &[NodeId],
    workers: usize,
    per_task_latency: Duration,
    observer: Option<ProgressObserver>,
) -> ExecResult {
    run_pool_opts(
        graph,
        outputs,
        workers,
        &ExecOptions { per_task_latency, observer, ..ExecOptions::default() },
    )
}

/// [`run_pool`] with explicit [`ExecOptions`].
pub fn run_pool_opts(
    graph: &TaskGraph,
    outputs: &[NodeId],
    workers: usize,
    opts: &ExecOptions,
) -> ExecResult {
    let workers = workers.max(1);
    let started = Instant::now();
    let run_id = trace::next_run_id();
    let plan = opts.cache.as_ref().map(|h| CachePlan::build(graph, outputs, h));
    let live = match &plan {
        Some(p) => p.live.clone(),
        None => graph.reachable(outputs),
    };
    let live_count = live.iter().filter(|&&b| b).count();
    if live_count == 0 {
        let trace = opts
            .trace
            .then(|| Arc::new(RunTrace::from_buffers(Vec::new(), workers, started.elapsed())));
        let mut stats =
            tally(std::iter::empty(), 0, graph, workers, started.elapsed(), trace, run_id);
        apply_metrics(&mut stats, opts);
        return ExecResult { outcomes: Vec::new(), stats };
    }
    let dependents = graph.live_dependents(&live);
    let mut indegrees = graph.live_indegrees(&live);

    let results: Arc<Vec<Mutex<Option<TaskOutcome>>>> =
        Arc::new((0..graph.len()).map(|_| Mutex::new(None)).collect());

    let (ready_tx, ready_rx) = channel::unbounded::<NodeId>();
    let (done_tx, done_rx) = channel::unbounded::<NodeId>();

    // Cache hits complete before anything dispatches: store their
    // payloads, record zero-width spans, and release their dependents'
    // indegrees so the hit transitively satisfies its subtree.
    let mut precompleted = 0usize;
    let mut hit_spans: Vec<TaskSpan> = Vec::new();
    let evictions = std::sync::atomic::AtomicUsize::new(0);
    let retried_tasks = std::sync::atomic::AtomicUsize::new(0);
    if let Some(p) = &plan {
        for id in 0..graph.len() {
            if let Some((payload, _)) = &p.hits[id] {
                *results[id].lock() = Some(TaskOutcome::Ok(Arc::clone(payload)));
                if opts.trace {
                    hit_spans.push(p.span(graph, id, 0, started.elapsed()));
                }
                precompleted += 1;
                if let Some(obs) = &opts.observer {
                    obs(precompleted, live_count);
                }
                for &dep in &dependents[id] {
                    indegrees[dep] -= 1;
                }
            }
        }
    }
    let is_hit = |id: NodeId| plan.as_ref().is_some_and(|p| p.hits[id].is_some());

    // Seed the ready queue. The channel cannot be closed here (we still
    // hold a receiver), but if it ever were, record the failure instead
    // of panicking — the disconnect path below finishes the run.
    for (id, &is_live) in live.iter().enumerate() {
        if is_live && indegrees[id] == 0 && !is_hit(id) && ready_tx.send(id).is_err() {
            *results[id].lock() =
                Some(internal_failure(graph, id, "work queue closed while seeding"));
        }
    }

    // Each worker owns its span buffer (no lock on the recording path);
    // buffers come back through the join handles and merge afterwards.
    let mut span_buffers: Vec<Vec<TaskSpan>> = vec![hit_spans];
    // Shared idle-capacity tracker: workers parked on the empty ready
    // queue are capacity a running kernel may donate to morsel helpers.
    let helper_budget = Arc::new(crate::morsel::HelperBudget::new());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let ready_rx = ready_rx.clone();
            let done_tx = done_tx.clone();
            let results = Arc::clone(&results);
            let evictions = &evictions;
            let retried_tasks = &retried_tasks;
            let budget = Arc::clone(&helper_budget);
            handles.push(scope.spawn(move || {
                let _morsel =
                    crate::morsel::engage(opts.morsel_bytes, Some(Arc::clone(&budget)));
                let mut span_buf: Vec<TaskSpan> = Vec::new();
                loop {
                    // The park window around the blocking receive is
                    // exactly when this worker's capacity is stealable.
                    budget.enter_idle();
                    let received = ready_rx.recv();
                    budget.exit_idle();
                    let Ok(id) = received else { break };
                    // Dependencies completed (with whatever outcome)
                    // before this node became ready. A missing result is
                    // a readiness-invariant violation; it flows into the
                    // normal skip propagation instead of panicking.
                    let inputs: Vec<TaskOutcome> = graph
                        .task(id)
                        .deps
                        .iter()
                        .map(|&d| {
                            results[d].lock().clone().unwrap_or_else(|| {
                                internal_failure(
                                    graph,
                                    d,
                                    "dependency result missing at dispatch",
                                )
                            })
                        })
                        .collect();
                    let (outcome, timing, retries) =
                        execute_node(graph, id, &inputs, opts, started, run_id);
                    if retries > 0 {
                        retried_tasks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    if let Some(timing) = timing {
                        span_buf.push(make_span(graph, id, worker_id, timing, &outcome, retries));
                    }
                    let n = cache_insert(opts, graph, id, &outcome);
                    if n > 0 {
                        evictions.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
                    }
                    *results[id].lock() = Some(outcome);
                    if done_tx.send(id).is_err() {
                        break;
                    }
                }
                span_buf
            }));
        }
        // Workers hold the only remaining senders: if every worker dies,
        // `done_rx.recv()` disconnects instead of hanging forever.
        drop(done_tx);

        // Coordinator: track completions, release newly ready tasks.
        // Failed tasks complete like any other (their outcome is the
        // error), so counting is unaffected by faults. Cache hits were
        // pre-completed above.
        let mut completed = precompleted;
        while completed < live_count {
            let Ok(id) = done_rx.recv() else {
                // Every worker is gone — only possible if one died
                // outside `catch_unwind`. Degrade to a partial run:
                // unfinished nodes become `Internal` failures below.
                break;
            };
            completed += 1;
            if let Some(obs) = &opts.observer {
                obs(completed, live_count);
            }
            for &dep in &dependents[id] {
                indegrees[dep] -= 1;
                // A cache hit with live dependencies (its payload can be
                // served while an upstream cone is still live through a
                // sibling path) was pre-completed above — its dependents
                // were already released there, so re-dispatching it here
                // would double-count and underflow their indegrees.
                if indegrees[dep] == 0 && !is_hit(dep) && ready_tx.send(dep).is_err() {
                    // Workers already gone; the recv above disconnects
                    // on the next iteration and ends the run.
                    *results[dep].lock() =
                        Some(internal_failure(graph, dep, "work queue closed mid-run"));
                }
            }
        }
        // Closing the channel terminates the workers.
        drop(ready_tx);
        for handle in handles {
            // A lost worker loses its span buffer, not the run.
            if let Ok(buf) = handle.join() {
                span_buffers.push(buf);
            }
        }
    });

    let unfinished = |id: NodeId| {
        internal_failure(graph, id, "task never completed (scheduler degraded to a partial run)")
    };
    let outcomes = outputs
        .iter()
        .map(|&id| results[id].lock().clone().unwrap_or_else(|| unfinished(id)))
        .collect();
    let live_outcomes: Vec<TaskOutcome> = live
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l)
        .map(|(id, _)| results[id].lock().clone().unwrap_or_else(|| unfinished(id)))
        .collect();
    let elapsed = started.elapsed();
    let run_trace =
        opts.trace.then(|| Arc::new(RunTrace::from_buffers(span_buffers, workers, elapsed)));
    let mut stats =
        tally(live_outcomes.iter(), live_count, graph, workers, elapsed, run_trace, run_id);
    stats.tasks_retried = retried_tasks.load(std::sync::atomic::Ordering::Relaxed);
    apply_cache_stats(
        &mut stats,
        plan.as_ref(),
        evictions.load(std::sync::atomic::Ordering::Relaxed),
    );
    apply_gauge_stats(&mut stats, opts);
    apply_metrics(&mut stats, opts);
    ExecResult { outcomes, stats }
}

/// `(start, end, payload_bytes)` of one dispatched task, as offsets from
/// the run origin. Only produced when tracing is on.
type SpanTiming = (Duration, Duration, usize);

/// Run one node given its input outcomes: short-circuit on a fired run
/// token, skip on failed inputs, otherwise execute under `catch_unwind`
/// (retrying transient failures per [`ExecOptions::retry`]), applying
/// any injected fault, the optional deadline, and the optional memory
/// gauge. When `opts.trace` is set, the second element carries the span
/// timing for [`make_span`]; it is `None` on untraced runs so the hot
/// path allocates nothing. The third element is how many times the task
/// was re-executed after transient failures.
fn execute_node(
    graph: &TaskGraph,
    id: NodeId,
    inputs: &[TaskOutcome],
    opts: &ExecOptions,
    origin: Instant,
    run_id: u64,
) -> (TaskOutcome, Option<SpanTiming>, usize) {
    let task = graph.task(id);
    let zero_width = || {
        opts.trace.then(|| {
            let now = origin.elapsed();
            (now, now, 0)
        })
    };
    // A fired run token beats everything else: record the node as
    // Cancelled without opening a span or touching the body, so a
    // cancelled run drains its remaining dispatches in microseconds.
    if let Some(reason) = opts.cancel.as_ref().and_then(CancelToken::cancelled) {
        return (
            TaskOutcome::Failed(Arc::new(TaskError {
                task: id,
                name: task.name.clone(),
                failure: TaskFailure::Cancelled(reason),
                elapsed: Duration::ZERO,
            })),
            zero_width(),
            0,
        );
    }
    // An upstream failure poisons only this subtree: record a skip
    // pointing at the transitive root cause and move on. The skip
    // inherits the root's elapsed so diagnostics stay meaningful at any
    // depth.
    if let Some(err) = inputs.iter().find_map(|o| o.error()) {
        let (root_cause, root_name) = err.root_cause();
        return (
            TaskOutcome::Failed(Arc::new(TaskError {
                task: id,
                name: task.name.clone(),
                failure: TaskFailure::Skipped {
                    root_cause,
                    root_name: root_name.to_string(),
                    root_failure: err.root_description(),
                },
                elapsed: err.elapsed,
            })),
            zero_width(),
            0,
        );
    }
    // The span opens before the injected scheduling latency so heavy-
    // scheduler traces show the overhead they model.
    let span_start = opts.trace.then(|| origin.elapsed());
    if opts.per_task_latency > Duration::ZERO {
        spin_for(opts.per_task_latency);
    }
    // The failed-input check above guarantees every input carries a
    // payload; if that invariant ever breaks, fail this node instead of
    // panicking the worker.
    let Some(payloads) = inputs
        .iter()
        .map(|o| o.payload().map(Arc::clone))
        .collect::<Option<Vec<Payload>>>()
    else {
        let timing = span_start.map(|start| (start, origin.elapsed(), 0));
        return (internal_failure(graph, id, "input outcome lost its payload"), timing, 0);
    };
    let mut retries = 0usize;
    let (outcome, elapsed) = loop {
        // Re-decided each attempt: retries count as fresh dispatches, so
        // a bounded `TransientPanic` plan exhausts itself and the retry
        // runs the real body.
        let fault = graph.fault_injector().and_then(|inj| inj.decide(id, &task.name));
        // The token the body observes at morsel boundaries: the run
        // token capped by the per-task deadline (so a blown deadline
        // interrupts the body instead of merely being noticed after it
        // returns), or a deadline-only token when the run is otherwise
        // ungoverned.
        let attempt_token = match (&opts.cancel, opts.deadline) {
            (Some(t), Some(budget)) => Some(t.capped(budget)),
            (Some(t), None) => Some(t.clone()),
            (None, Some(budget)) => Some(CancelToken::with_deadline(budget)),
            (None, None) => None,
        };
        let started = Instant::now();
        let result = {
            let _current = attempt_token.map(govern::set_current);
            catch_task_panic(|| match &fault {
                // eda-lint: allow(EDA-L5) deliberate injected fault, caught by catch_unwind above
                Some(FaultMode::Panic) => panic!("injected fault: panic"),
                Some(FaultMode::TransientPanic { .. }) => {
                    // eda-lint: allow(EDA-L5) deliberate injected fault, caught by catch_unwind above
                    panic!("injected fault: transient kernel failure")
                }
                Some(FaultMode::Stall(d)) => {
                    std::thread::sleep(*d);
                    (task.run)(&payloads)
                }
                Some(FaultMode::Wedge(max)) => {
                    // A wedged task spins observing its token: a fired
                    // deadline or cancellation wakes it immediately and
                    // the real body then runs (and is classified below),
                    // so the worker thread is reclaimed at the deadline
                    // instead of being held for the whole wedge.
                    govern::wait_interrupted(*max);
                    (task.run)(&payloads)
                }
                Some(FaultMode::Garbage) => Arc::new(Garbage) as Payload,
                None => (task.run)(&payloads),
            })
        };
        let elapsed = started.elapsed();
        let outcome = classify_result(graph, id, result, elapsed, opts);
        if let TaskOutcome::Failed(err) = &outcome {
            let run_cancelled = opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
            if err.failure.is_transient() && retries < opts.retry.max_retries && !run_cancelled {
                retries += 1;
                std::thread::sleep(opts.retry.backoff(retries));
                continue;
            }
        }
        break (outcome, elapsed);
    };
    if opts.metrics {
        crate::metrics::global().task_duration_us.record_duration(elapsed);
    }
    if trace::log_enabled(LogLevel::Debug) {
        trace::log(
            LogLevel::Debug,
            "eda::sched",
            format_args!(
                "run_id={} task={} node={} status={} retries={} dur_us={}",
                run_id,
                task.name,
                id,
                SpanStatus::of(&outcome).label(),
                retries,
                elapsed.as_micros()
            ),
        );
    }
    let timing = span_start.map(|start| {
        let end = origin.elapsed();
        let bytes = outcome.payload().map_or(0, trace::estimate_payload_bytes);
        (start, end, bytes)
    });
    (outcome, timing, retries)
}

/// Classify one attempt's raw result: a fired run token discards even a
/// completed payload (kernels may have bailed mid-morsel, so it cannot
/// be trusted), then the per-task deadline, then the memory gauge.
fn classify_result(
    graph: &TaskGraph,
    id: NodeId,
    result: Result<Payload, String>,
    elapsed: Duration,
    opts: &ExecOptions,
) -> TaskOutcome {
    let fail = |failure: TaskFailure| {
        TaskOutcome::Failed(Arc::new(TaskError {
            task: id,
            name: graph.task(id).name.clone(),
            failure,
            elapsed,
        }))
    };
    match result {
        Ok(payload) => {
            if let Some(reason) = opts.cancel.as_ref().and_then(CancelToken::cancelled) {
                return fail(TaskFailure::Cancelled(reason));
            }
            if let Some(budget) = opts.deadline {
                if elapsed > budget {
                    return fail(TaskFailure::TimedOut { budget, elapsed });
                }
            }
            if let Some(gauge) = &opts.gauge {
                let bytes = payload_cost(opts, &payload);
                if let Err(denial) = gauge.try_charge(bytes) {
                    // The payload drops here — the whole point of the
                    // budget is not to keep it.
                    return fail(TaskFailure::BudgetExceeded {
                        budget: denial.budget,
                        used: denial.used,
                        requested: denial.requested,
                    });
                }
            }
            TaskOutcome::Ok(payload)
        }
        Err(message) => fail(TaskFailure::Panicked(message)),
    }
}

/// Bytes a payload charges against the memory gauge: the explicit
/// governance sizer when one is set, else the cache's sizer when one is
/// attached (keeps cache and gauge accounting consistent), else the
/// generic estimator.
fn payload_cost(opts: &ExecOptions, payload: &Payload) -> usize {
    if let Some(bytes) = opts.sizer.as_ref().and_then(|s| s(payload)) {
        return bytes;
    }
    opts.cache
        .as_ref()
        .map_or_else(|| trace::estimate_payload_bytes(payload), |h| h.payload_bytes(payload))
}

/// Build the [`TaskSpan`] for one dispatched task. `queue_wait` is
/// derived later (in [`RunTrace::from_buffers`]) from dependency
/// completion times, so it is zero here. A task that succeeded only
/// after transient-failure retries is marked `Retried` so traces show
/// where the retry machinery earned its keep.
fn make_span(
    graph: &TaskGraph,
    id: NodeId,
    worker: usize,
    (start, end, payload_bytes): SpanTiming,
    outcome: &TaskOutcome,
    retries: usize,
) -> TaskSpan {
    let task = graph.task(id);
    let status = if retries > 0 && outcome.is_ok() {
        SpanStatus::Retried
    } else {
        SpanStatus::of(outcome)
    };
    TaskSpan {
        node: id,
        name: task.name.clone(),
        worker,
        start,
        end,
        queue_wait: Duration::ZERO,
        status,
        payload_bytes,
        deps: task.deps.clone(),
    }
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run a task body under `catch_unwind`, silencing the default panic
/// hook for panics we catch (they are expected, recorded outcomes — not
/// crashes worth a backtrace on stderr). Panics elsewhere still report
/// normally.
fn catch_task_panic<F: FnOnce() -> Payload>(f: F) -> Result<Payload, String> {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Fold per-node outcomes into [`ExecStats`], attaching the run trace
/// when one was recorded.
fn tally<'a>(
    live_outcomes: impl Iterator<Item = &'a TaskOutcome>,
    live_count: usize,
    graph: &TaskGraph,
    workers: usize,
    elapsed: Duration,
    trace: Option<Arc<RunTrace>>,
    run_id: u64,
) -> ExecStats {
    let mut stats = ExecStats {
        live_nodes: live_count,
        total_nodes: graph.len(),
        cse_hits: graph.cse_hits(),
        workers,
        elapsed,
        trace,
        ..ExecStats::default()
    };
    for outcome in live_outcomes {
        match outcome {
            TaskOutcome::Ok(_) => stats.tasks_run += 1,
            TaskOutcome::Failed(err) => match err.failure {
                TaskFailure::Panicked(_) | TaskFailure::Internal(_) => stats.tasks_failed += 1,
                TaskFailure::TimedOut { .. } => stats.tasks_timed_out += 1,
                TaskFailure::Skipped { .. } => stats.tasks_skipped += 1,
                TaskFailure::Cancelled(_) => stats.tasks_cancelled += 1,
                TaskFailure::BudgetExceeded { .. } => stats.tasks_budget_exceeded += 1,
            },
        }
    }
    if trace::log_enabled(LogLevel::Info) {
        trace::log(
            LogLevel::Info,
            "eda::sched",
            format_args!(
                "run_id={} workers={} live={} run={} failed={} skipped={} timed_out={} cancelled={} budget_exceeded={} cse_hits={} elapsed_us={}",
                run_id,
                stats.workers,
                stats.live_nodes,
                stats.tasks_run,
                stats.tasks_failed,
                stats.tasks_skipped,
                stats.tasks_timed_out,
                stats.tasks_cancelled,
                stats.tasks_budget_exceeded,
                stats.cse_hits,
                stats.elapsed.as_micros()
            ),
        );
    }
    stats
}

/// Busy-wait for `d` (sleep granularity is far too coarse for the
/// microsecond-scale overheads the engine comparison injects).
fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{self, FaultInjector};
    use crate::key::TaskKey;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn int(v: i64) -> Payload {
        Arc::new(v)
    }

    fn get(p: &Payload) -> i64 {
        *p.downcast_ref::<i64>().expect("i64")
    }

    fn diamond() -> (TaskGraph, NodeId) {
        // a -> (b, c) -> d
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let c = g.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
        let d = g.op("sum", 0, vec![b, c], |d| int(get(&d[0]) + get(&d[1])));
        (g, d)
    }

    #[test]
    fn single_thread_diamond() {
        let (g, out) = diamond();
        let r = run_single_thread(&g, &[out]);
        assert_eq!(get(&r.outputs()[0]), 31);
        assert_eq!(r.stats.tasks_run, 4);
        assert_eq!(r.stats.workers, 1);
        assert!(r.stats.fully_succeeded());
    }

    #[test]
    fn pool_diamond_matches_single_thread() {
        let (g, out) = diamond();
        for workers in [1, 2, 4] {
            let r = run_pool(&g, &[out], workers, Duration::ZERO);
            assert_eq!(get(&r.outputs()[0]), 31, "workers={workers}");
            assert_eq!(r.stats.tasks_run, 4);
        }
    }

    #[test]
    fn dead_nodes_not_executed() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let _dead = g.source("dead", TaskKey::leaf("dead", 0), || {
            RUNS.fetch_add(1, Ordering::SeqCst);
            int(99)
        });
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let r = run_single_thread(&g, &[b]);
        assert_eq!(get(&r.outputs()[0]), 2);
        assert_eq!(RUNS.load(Ordering::SeqCst), 0);
        assert_eq!(r.stats.tasks_run, 2);
        assert_eq!(r.stats.pruned(), 1);

        let r2 = run_pool(&g, &[b], 2, Duration::ZERO);
        assert_eq!(get(&r2.outputs()[0]), 2);
        assert_eq!(RUNS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shared_node_runs_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let c2 = Arc::clone(&counter);
        let src = g.source("src", TaskKey::leaf("src", 0), move || {
            c2.fetch_add(1, Ordering::SeqCst);
            int(5)
        });
        // Two consumers of a CSE-shared expensive node.
        let shared1 = g.op("expensive", 0, vec![src], |d| int(get(&d[0]) * 10));
        let shared2 = g.op("expensive", 0, vec![src], |d| int(get(&d[0]) * 10));
        assert_eq!(shared1, shared2);
        let u1 = g.op("plus1", 0, vec![shared1], |d| int(get(&d[0]) + 1));
        let u2 = g.op("plus2", 0, vec![shared2], |d| int(get(&d[0]) + 2));
        let r = run_pool(&g, &[u1, u2], 2, Duration::ZERO);
        assert_eq!(get(&r.outputs()[0]), 51);
        assert_eq!(get(&r.outputs()[1]), 52);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert_eq!(r.stats.tasks_run, 4); // src, expensive, plus1, plus2
    }

    #[test]
    fn multiple_outputs_order_preserved() {
        let (g, out) = diamond();
        // Request outputs in reverse creation order.
        let r = run_single_thread(&g, &[out, 0]);
        assert_eq!(get(&r.outputs()[0]), 31);
        assert_eq!(get(&r.outputs()[1]), 10);
    }

    #[test]
    fn empty_outputs() {
        let (g, _) = diamond();
        let r = run_pool(&g, &[], 2, Duration::ZERO);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.stats.tasks_run, 0);
    }

    #[test]
    fn per_task_latency_slows_execution() {
        let (g, out) = diamond();
        let fast = run_pool(&g, &[out], 1, Duration::ZERO);
        let slow = run_pool(&g, &[out], 1, Duration::from_millis(2));
        assert!(slow.stats.elapsed > fast.stats.elapsed);
        assert!(slow.stats.elapsed >= Duration::from_millis(8)); // 4 tasks × 2ms
        assert_eq!(get(&slow.outputs()[0]), 31);
    }

    #[test]
    fn progress_observer_sees_every_completion() {
        let (g, out) = diamond();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let obs: ProgressObserver = Arc::new(move |done, total| {
            seen2.lock().push((done, total));
        });
        let r = run_pool_observed(&g, &[out], 2, Duration::ZERO, Some(obs));
        assert_eq!(get(&r.outputs()[0]), 31);
        let events = seen.lock().clone();
        assert_eq!(events.len(), 4);
        assert_eq!(events.last(), Some(&(4, 4)));
        // Monotone completion counter.
        assert!(events.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn wide_graph_under_pool() {
        // 100 independent sources reduced pairwise: exercises the queue.
        let mut g = TaskGraph::new();
        let leaves: Vec<NodeId> = (0..100)
            .map(|i| g.source("leaf", TaskKey::leaf("leaf", i), move || int(i as i64)))
            .collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(g.op("add", 0, vec![pair[0], pair[1]], |d| {
                        int(get(&d[0]) + get(&d[1]))
                    }));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let r = run_pool(&g, &[layer[0]], 4, Duration::ZERO);
        assert_eq!(get(&r.outputs()[0]), (0..100).sum::<i64>());
    }

    // ----- fault tolerance -----

    /// a -> (bad, c) -> d, plus an independent healthy branch e -> f.
    /// `bad` panics; d must be skipped, the rest must complete.
    fn faulty_graph() -> (TaskGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
        let bad = g.op("bad", 0, vec![a], |_| -> Payload { panic!("kernel exploded") });
        let c = g.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
        let d = g.op("sum", 0, vec![bad, c], |d| int(get(&d[0]) + get(&d[1])));
        let e = g.source("e", TaskKey::leaf("e", 0), || int(7));
        let f = g.op("inc", 0, vec![e], |d| int(get(&d[0]) + 1));
        (g, bad, c, d, f)
    }

    #[test]
    fn panic_is_isolated_single_thread() {
        let (g, _bad, c, d, f) = faulty_graph();
        let r = run_single_thread(&g, &[d, c, f]);
        // d skipped because bad panicked...
        let err = r.outcomes[0].error().expect("d failed");
        assert!(matches!(err.failure, TaskFailure::Skipped { .. }), "{err}");
        assert_eq!(err.root_cause().1, "bad");
        // ...but the sibling branch and the independent branch completed.
        assert_eq!(get(r.outcomes[1].payload().expect("c ok")), 20);
        assert_eq!(get(r.outcomes[2].payload().expect("f ok")), 8);
        assert_eq!(r.stats.tasks_failed, 1);
        assert_eq!(r.stats.tasks_skipped, 1);
        assert_eq!(r.stats.tasks_run, 4); // a, c, e, f
        assert!(!r.stats.fully_succeeded());
    }

    #[test]
    fn panic_is_isolated_pool() {
        let (g, _bad, c, d, f) = faulty_graph();
        for workers in [1, 2, 4] {
            let r = run_pool(&g, &[d, c, f], workers, Duration::ZERO);
            assert!(r.outcomes[0].is_failed(), "workers={workers}");
            assert_eq!(get(r.outcomes[1].payload().expect("c ok")), 20);
            assert_eq!(get(r.outcomes[2].payload().expect("f ok")), 8);
            assert_eq!(r.stats.tasks_failed, 1);
            assert_eq!(r.stats.tasks_skipped, 1);
            assert_eq!(r.stats.tasks_run, 4);
        }
    }

    #[test]
    fn skip_propagates_transitively_with_root_cause() {
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(1));
        let bad = g.op("bad", 0, vec![a], |_| -> Payload { panic!("boom") });
        let mid = g.op("mid", 0, vec![bad], |d| int(get(&d[0])));
        let leaf = g.op("leaf", 0, vec![mid], |d| int(get(&d[0])));
        let r = run_single_thread(&g, &[leaf]);
        let err = r.outcomes[0].error().expect("leaf failed");
        // Root cause is `bad`, not the intermediate skip.
        assert_eq!(err.root_cause(), (bad, "bad"));
        assert_eq!(r.stats.tasks_skipped, 2); // mid and leaf
        assert_eq!(r.stats.tasks_failed, 1);
    }

    #[test]
    fn panic_message_is_captured() {
        let mut g = TaskGraph::new();
        let bad = g.source("bad", TaskKey::leaf("bad", 0), || -> Payload {
            panic!("specific diagnostic {}", 42)
        });
        let r = run_pool(&g, &[bad], 2, Duration::ZERO);
        let err = r.outcomes[0].error().expect("failed");
        assert!(
            matches!(&err.failure, TaskFailure::Panicked(m) if m.contains("specific diagnostic 42")),
            "{err}"
        );
    }

    #[test]
    fn deadline_marks_slow_tasks_timed_out() {
        let mut g = TaskGraph::new();
        let slow = g.source("slow", TaskKey::leaf("slow", 0), || {
            std::thread::sleep(Duration::from_millis(20));
            int(1)
        });
        let fast = g.source("fast", TaskKey::leaf("fast", 0), || int(2));
        let dep = g.op("dep", 0, vec![slow], |d| int(get(&d[0])));
        let opts = ExecOptions { deadline: Some(Duration::from_millis(2)), ..Default::default() };
        for r in [
            run_single_thread_opts(&g, &[dep, fast], &opts),
            run_pool_opts(&g, &[dep, fast], 2, &opts),
        ] {
            let err = r.outcomes[0].error().expect("dep failed");
            assert!(matches!(err.failure, TaskFailure::Skipped { .. }), "{err}");
            assert_eq!(get(r.outcomes[1].payload().expect("fast ok")), 2);
            assert_eq!(r.stats.tasks_timed_out, 1);
            assert_eq!(r.stats.tasks_skipped, 1);
            assert_eq!(r.stats.tasks_run, 1);
        }
    }

    #[test]
    fn no_deadline_means_no_timeouts() {
        let (g, out) = diamond();
        let r = run_pool(&g, &[out], 2, Duration::ZERO);
        assert_eq!(r.stats.tasks_timed_out, 0);
    }

    #[test]
    fn injected_panic_via_graph_injector() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::panic_on("dbl"));
        let r = run_pool(&g, &[out], 2, Duration::ZERO);
        let err = r.outcomes[0].error().expect("sum skipped");
        assert_eq!(err.root_cause().1, "dbl");
        assert_eq!(r.stats.tasks_failed, 1);
    }

    #[test]
    fn injected_garbage_fails_downstream_consumer() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::garbage_on("inc"));
        let r = run_single_thread(&g, &[out]);
        // `inc` returned Garbage; `sum` panicked on the downcast and the
        // failure is attributed to `sum`.
        let err = r.outcomes[0].error().expect("sum failed");
        assert!(matches!(err.failure, TaskFailure::Panicked(_)), "{err}");
        assert_eq!(err.name, "sum");
        assert_eq!(r.stats.tasks_failed, 1);
    }

    #[test]
    fn injected_stall_plus_deadline_times_out() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::stall_on("inc", Duration::from_millis(20)));
        let opts = ExecOptions { deadline: Some(Duration::from_millis(2)), ..Default::default() };
        let r = run_pool_opts(&g, &[out], 2, &opts);
        let err = r.outcomes[0].error().expect("sum skipped");
        assert_eq!(err.root_cause().1, "inc");
        assert_eq!(r.stats.tasks_timed_out, 1);
    }

    fn cache_opts(cache: &Arc<crate::cache::ResultCache>) -> ExecOptions {
        ExecOptions {
            cache: Some(CacheHandle::new(Arc::clone(cache), 0xDA7A)),
            ..Default::default()
        }
    }

    #[test]
    fn warm_run_hits_cache_and_skips_upstream() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = cache_opts(&cache);

        let (g, out) = diamond();
        let cold = run_single_thread_opts(&g, &[out], &opts);
        assert_eq!(get(&cold.outputs()[0]), 31);
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses, 3); // b, c, d (source not probed)
        assert_eq!(cache.len(), 3);

        // Rebuild the same graph: keys are structural so they match, and
        // the source closure must never fire on the warm run.
        let runs = Arc::new(AtomicUsize::new(0));
        let mut g2 = TaskGraph::new();
        let r2 = Arc::clone(&runs);
        let a = g2.source("a", TaskKey::leaf("a", 0), move || {
            r2.fetch_add(1, Ordering::SeqCst);
            int(10)
        });
        let b = g2.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        let c = g2.op("dbl", 0, vec![a], |d| int(get(&d[0]) * 2));
        let d = g2.op("sum", 0, vec![b, c], |d| int(get(&d[0]) + get(&d[1])));

        let warm = run_single_thread_opts(&g2, &[d], &opts);
        assert_eq!(get(&warm.outputs()[0]), 31);
        // The terminal hit satisfies the whole cone: nothing executes.
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.stats.tasks_run, 0);
        assert!(warm.stats.cache_bytes_saved > 0);
        assert_eq!(runs.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pool_warm_run_matches_single_thread() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = cache_opts(&cache);
        let (g, out) = diamond();
        let cold = run_pool_opts(&g, &[out], 3, &opts);
        assert_eq!(get(&cold.outputs()[0]), 31);
        assert_eq!(cold.stats.cache_misses, 3);

        let (g2, out2) = diamond();
        let warm = run_pool_opts(&g2, &[out2], 3, &opts);
        assert_eq!(get(&warm.outputs()[0]), 31);
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.stats.tasks_run, 0);
    }

    #[test]
    fn partial_hit_reruns_only_the_missing_suffix() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = cache_opts(&cache);
        // Cold run computes only `inc`.
        let mut g = TaskGraph::new();
        let a = g.source("a", TaskKey::leaf("a", 0), || int(10));
        let b = g.op("inc", 0, vec![a], |d| int(get(&d[0]) + 1));
        run_single_thread_opts(&g, &[b], &opts);

        // Warm run wants the full diamond: `inc` hits, `dbl` needs the
        // source so the source re-executes, `sum` is a miss.
        let (g2, out) = diamond();
        let warm = run_single_thread_opts(&g2, &[out], &opts);
        assert_eq!(get(&warm.outputs()[0]), 31);
        assert_eq!(warm.stats.cache_hits, 1); // inc
        assert_eq!(warm.stats.cache_misses, 2); // dbl, sum
        assert_eq!(warm.stats.tasks_run, 3); // a, dbl, sum
    }

    #[test]
    fn different_fingerprints_do_not_share_entries() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let (g, out) = diamond();
        let opts_a = ExecOptions {
            cache: Some(CacheHandle::new(Arc::clone(&cache), 1)),
            ..Default::default()
        };
        run_single_thread_opts(&g, &[out], &opts_a);

        let opts_b = ExecOptions {
            cache: Some(CacheHandle::new(Arc::clone(&cache), 2)),
            ..Default::default()
        };
        let (g2, out2) = diamond();
        let r = run_single_thread_opts(&g2, &[out2], &opts_b);
        assert_eq!(r.stats.cache_hits, 0, "entries are namespaced by data fingerprint");
        assert_eq!(r.stats.tasks_run, 4);
    }

    #[test]
    fn failed_and_skipped_tasks_never_populate_the_cache() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = cache_opts(&cache);
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::panic_on("dbl"));
        let r = run_single_thread_opts(&g, &[out], &opts);
        assert!(r.outcomes[0].is_failed());
        // `inc` succeeded and was cached; `dbl` failed and `sum` was
        // skipped — neither may be served from the cache later.
        assert_eq!(cache.len(), 1);

        let (g2, out2) = diamond();
        let warm = run_single_thread_opts(&g2, &[out2], &opts);
        assert_eq!(get(&warm.outputs()[0]), 31, "healthy rerun recomputes the failed cone");
        assert_eq!(warm.stats.cache_hits, 1); // inc only
    }

    #[test]
    fn pool_never_caches_faulted_tasks() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = cache_opts(&cache);
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::panic_on("dbl"));
        let r = run_pool_opts(&g, &[out], 2, &opts);
        assert!(r.outcomes[0].is_failed());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_budget_cache_is_inert() {
        let cache = Arc::new(crate::cache::ResultCache::new(0));
        let opts = cache_opts(&cache);
        let (g, out) = diamond();
        let r1 = run_single_thread_opts(&g, &[out], &opts);
        let (g2, out2) = diamond();
        let r2 = run_single_thread_opts(&g2, &[out2], &opts);
        for r in [&r1, &r2] {
            assert_eq!(get(&r.outputs()[0]), 31);
            assert_eq!(r.stats.tasks_run, 4);
            assert_eq!(r.stats.cache_hits, 0);
            assert_eq!(r.stats.cache_misses, 0);
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_tasks_appear_as_cached_spans_in_trace() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let opts = ExecOptions {
            cache: Some(CacheHandle::new(Arc::clone(&cache), 7)),
            trace: true,
            ..Default::default()
        };
        let (g, out) = diamond();
        run_single_thread_opts(&g, &[out], &opts);
        let (g2, out2) = diamond();
        let warm = run_pool_opts(&g2, &[out2], 2, &opts);
        let trace = warm.stats.trace.as_ref().expect("traced run");
        let cached: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.status == crate::trace::SpanStatus::Cached)
            .collect();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].name, "sum");
        assert_eq!(cached[0].start, cached[0].end, "cached spans are zero-width");
    }

    // ----- governance -----

    #[test]
    fn cancelled_token_short_circuits_whole_run() {
        let token = CancelToken::new();
        token.cancel();
        let opts = ExecOptions { cancel: Some(token), ..Default::default() };
        let (g, out) = diamond();
        for r in [
            run_single_thread_opts(&g, &[out], &opts),
            run_pool_opts(&g, &[out], 2, &opts),
        ] {
            let err = r.outcomes[0].error().expect("cancelled");
            assert!(
                matches!(err.failure, TaskFailure::Cancelled(crate::govern::CancelReason::Requested)),
                "{err}"
            );
            assert_eq!(r.stats.tasks_run, 0);
            assert_eq!(r.stats.tasks_cancelled, 4);
            assert!(!r.stats.fully_succeeded());
        }
    }

    #[test]
    fn run_deadline_reclaims_wedged_worker() {
        // Regression for the pre-governance semantics where a TimedOut
        // task's body kept running (sleeping) on the worker for its full
        // duration. A wedged task observes its attempt token, wakes at
        // the deadline, and the worker is reclaimed in milliseconds, not
        // the 30s wedge.
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::wedge_on("inc", Duration::from_secs(30)));
        let opts = ExecOptions { deadline: Some(Duration::from_millis(30)), ..Default::default() };
        let started = Instant::now();
        let r = run_pool_opts(&g, &[out], 2, &opts);
        let wall = started.elapsed();
        assert!(wall < Duration::from_secs(5), "worker held for {wall:?}");
        assert_eq!(r.stats.tasks_timed_out, 1);
        let err = r.outcomes[0].error().expect("sum skipped");
        assert_eq!(err.root_cause().1, "inc");
    }

    #[test]
    fn cancel_wakes_wedged_task_mid_run() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::wedge_on("inc", Duration::from_secs(30)));
        let token = CancelToken::new();
        let opts = ExecOptions { cancel: Some(token.clone()), ..Default::default() };
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        let started = Instant::now();
        let r = run_pool_opts(&g, &[out], 2, &opts);
        let wall = started.elapsed();
        canceller.join().expect("canceller");
        assert!(wall < Duration::from_secs(5), "cancel did not reclaim the worker: {wall:?}");
        assert!(r.stats.tasks_cancelled > 0, "{:?}", r.stats);
    }

    #[test]
    fn token_deadline_cancels_in_flight_run() {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.source("slowleaf", TaskKey::leaf("slowleaf", i), || {
                std::thread::sleep(Duration::from_millis(20));
                int(1)
            });
        }
        let outputs: Vec<NodeId> = (0..8).collect();
        let token = CancelToken::with_deadline(Duration::from_millis(30));
        let opts = ExecOptions { cancel: Some(token), ..Default::default() };
        let r = run_single_thread_opts(&g, &outputs, &opts);
        // The first task or two complete; once the deadline passes, the
        // rest are recorded Cancelled(DeadlineExceeded) without running.
        assert!(r.stats.tasks_cancelled > 0, "{:?}", r.stats);
        assert!(r.stats.elapsed < Duration::from_millis(8 * 20), "{:?}", r.stats.elapsed);
        let cancelled = r
            .outcomes
            .iter()
            .filter_map(|o| o.error())
            .filter(|e| {
                matches!(
                    e.failure,
                    TaskFailure::Cancelled(crate::govern::CancelReason::DeadlineExceeded)
                )
            })
            .count();
        assert!(cancelled > 0);
    }

    #[test]
    fn transient_failure_retries_and_unskips_downstream() {
        // `inc` fails transiently once; with one retry allowed the whole
        // downstream cone must complete as if nothing happened.
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::transient_on("inc", 1));
        let opts = ExecOptions { retry: RetryPolicy::retries(2), ..Default::default() };
        for r in [
            run_single_thread_opts(&g, &[out], &opts),
            {
                let (mut g2, out2) = diamond();
                g2.set_fault_injector(FaultInjector::transient_on("inc", 1));
                run_pool_opts(&g2, &[out2], 2, &opts)
            },
        ] {
            assert_eq!(get(r.outcomes[0].payload().expect("sum ok after retry")), 31);
            assert!(r.stats.fully_succeeded(), "{:?}", r.stats);
            assert_eq!(r.stats.tasks_retried, 1);
            assert_eq!(r.stats.tasks_run, 4);
        }
    }

    #[test]
    fn transient_failure_without_retries_still_fails() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::transient_on("inc", 1));
        let r = run_single_thread_opts(&g, &[out], &ExecOptions::default());
        assert!(r.outcomes[0].is_failed());
        assert_eq!(r.stats.tasks_retried, 0);
        assert_eq!(r.stats.tasks_failed, 1);
    }

    #[test]
    fn retried_tasks_appear_as_retried_spans() {
        let (mut g, out) = diamond();
        g.set_fault_injector(FaultInjector::transient_on("inc", 1));
        let opts =
            ExecOptions { retry: RetryPolicy::retries(1), trace: true, ..Default::default() };
        let r = run_single_thread_opts(&g, &[out], &opts);
        let trace = r.stats.trace.as_ref().expect("traced");
        let retried: Vec<_> =
            trace.spans.iter().filter(|s| s.status == SpanStatus::Retried).collect();
        assert_eq!(retried.len(), 1);
        assert_eq!(retried[0].name, "inc");
    }

    #[test]
    fn permanent_panic_is_never_retried() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let c2 = Arc::clone(&counter);
        let bad = g.source("bad", TaskKey::leaf("bad", 0), move || -> Payload {
            c2.fetch_add(1, Ordering::SeqCst);
            panic!("deterministic bug")
        });
        let opts = ExecOptions { retry: RetryPolicy::retries(3), ..Default::default() };
        let r = run_single_thread_opts(&g, &[bad], &opts);
        assert!(r.outcomes[0].is_failed());
        assert_eq!(counter.load(Ordering::SeqCst), 1, "permanent failures run once");
        assert_eq!(r.stats.tasks_retried, 0);
    }

    #[test]
    fn budget_denial_fails_task_and_degrades_downstream() {
        // i64 payloads estimate to 8 bytes each; a 20-byte budget admits
        // two tasks (a=8, inc=16), denies the third (dbl), and skips the
        // dependent sum.
        let (g, out) = diamond();
        let gauge = MemoryGauge::new(20);
        let opts = ExecOptions { gauge: Some(gauge.clone()), ..Default::default() };
        let r = run_single_thread_opts(&g, &[out], &opts);
        let err = r.outcomes[0].error().expect("sum degraded");
        assert!(err.root_description().contains("memory budget"), "{err}");
        assert_eq!(r.stats.tasks_budget_exceeded, 1);
        assert_eq!(r.stats.tasks_skipped, 1);
        assert_eq!(r.stats.tasks_run, 2);
        assert_eq!(r.stats.mem_peak_bytes, 16);
        assert_eq!(gauge.denials(), 1);
        assert!(!r.stats.fully_succeeded());
    }

    #[test]
    fn no_gauge_means_no_budget_failures() {
        let (g, out) = diamond();
        let r = run_pool(&g, &[out], 2, Duration::ZERO);
        assert_eq!(r.stats.tasks_budget_exceeded, 0);
        assert_eq!(r.stats.mem_peak_bytes, 0);
    }

    #[test]
    fn cancelled_run_never_populates_cache() {
        let cache = Arc::new(crate::cache::ResultCache::new(1 << 20));
        let token = CancelToken::new();
        token.cancel();
        let opts = ExecOptions { cancel: Some(token), ..cache_opts(&cache) };
        let (g, out) = diamond();
        let r = run_pool_opts(&g, &[out], 2, &opts);
        assert!(r.outcomes[0].is_failed());
        assert!(cache.is_empty(), "cancelled runs must not seed the cache");
    }

    #[test]
    fn budget_failed_run_stops_cache_inserts_under_eviction_pressure() {
        // Cache byte budget and run memory budget interact: Vec<f64>
        // payloads of 800 bytes each, a 2000-byte cache (holds two) and
        // a 5000-byte run gauge. Six ops fit the gauge (8 + 6*800 =
        // 4808), the last two are denied; inserts stop at the first
        // denial, and the small cache evicts while admitting the six.
        let vecs = |n: usize| -> Payload { Arc::new(vec![0.0f64; n]) };
        let mut g = TaskGraph::new();
        let src = g.source("src", TaskKey::leaf("src", 0), || int(1));
        let ops: Vec<NodeId> =
            (0..8).map(|i| g.op("widen", i, vec![src], move |_| vecs(100))).collect();
        let cache = Arc::new(crate::cache::ResultCache::new(2000));
        let gauge = MemoryGauge::new(5000);
        let opts = ExecOptions { gauge: Some(gauge.clone()), ..cache_opts(&cache) };
        let r = run_single_thread_opts(&g, &ops, &opts);
        assert_eq!(r.stats.tasks_budget_exceeded, 2, "{:?}", r.stats);
        assert_eq!(r.stats.tasks_run, 7); // src + six ops
        assert!(r.stats.cache_evictions > 0, "{:?}", r.stats);
        assert!(cache.total_bytes() <= 2000);
        assert!(cache.len() < 6, "inserts must stop at the first denial");
        assert_eq!(gauge.denials(), 2);
        assert!(r.stats.mem_peak_bytes <= 5000);
    }

    #[test]
    fn governed_defaults_match_ungoverned_stats() {
        // Knobs at rest (no token, no gauge, zero retries) must be
        // bit-identical to pre-governance behaviour.
        let (g, out) = diamond();
        let mut plain = run_single_thread(&g, &[out]).stats;
        let (g2, out2) = diamond();
        let mut governed = run_single_thread_opts(&g2, &[out2], &ExecOptions::default()).stats;
        plain.elapsed = Duration::ZERO;
        governed.elapsed = Duration::ZERO;
        assert_eq!(plain, governed);
        assert_eq!(plain.tasks_cancelled, 0);
        assert_eq!(plain.tasks_retried, 0);
        assert_eq!(plain.tasks_budget_exceeded, 0);
    }

    #[test]
    fn thread_local_arming_reaches_graphs_built_elsewhere() {
        let inj = FaultInjector::panic_on("dbl");
        let r = {
            let _guard = inject::arm(Arc::clone(&inj));
            // diamond() constructs its own TaskGraph::new() — the armed
            // injector must reach it, as it must reach graphs built
            // inside create_report.
            let (g, out) = diamond();
            run_pool(&g, &[out], 2, Duration::ZERO)
        };
        assert!(r.outcomes[0].is_failed());
        assert_eq!(inj.triggered(), 1);
    }
}
