//! Partitioned dataframes and the chunk-size precompute stage.
//!
//! The paper hit a Dask issue: `rechunk` needs chunk sizes at *graph
//! construction* time, but a delayed array doesn't know them (§5.2, "Dask
//! graph fails to build"). Their fix — ours too — is a precompute stage
//! that materializes the chunk metadata **before** the lazy graph is
//! built, then feeds the known sizes into graph construction.
//!
//! [`ChunkMeta`] is that precomputed metadata; [`PartitionedFrame`] is the
//! chunked dataframe whose partitions become source nodes of a
//! [`TaskGraph`].

use std::sync::Arc;

use eda_dataframe::DataFrame;

use crate::graph::{NodeId, Payload, TaskGraph};
use crate::key::TaskKey;

/// Chunk-size metadata, precomputed before graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Rows per partition.
    pub sizes: Vec<usize>,
    /// Cumulative row offsets: `offsets[i]` is the first row of partition
    /// `i`, and `offsets[npartitions()]` equals `total_rows`. Stored at
    /// precompute time so [`ChunkMeta::range`] is O(1) instead of
    /// re-summing a prefix of `sizes` on every call.
    pub offsets: Vec<usize>,
    /// Total rows.
    pub total_rows: usize,
}

impl ChunkMeta {
    /// Precompute metadata for splitting `df` into `npartitions` chunks.
    /// This is the stage that runs *before* the lazy graph exists.
    pub fn precompute(df: &DataFrame, npartitions: usize) -> ChunkMeta {
        let n = npartitions.max(1);
        let total = df.nrows();
        if total == 0 {
            return ChunkMeta { sizes: vec![0], offsets: vec![0, 0], total_rows: 0 };
        }
        let chunk = total.div_ceil(n);
        let mut sizes = Vec::new();
        let mut offsets = vec![0];
        let mut start = 0;
        while start < total {
            let len = chunk.min(total - start);
            sizes.push(len);
            start += len;
            offsets.push(start);
        }
        ChunkMeta { sizes, offsets, total_rows: total }
    }

    /// Number of partitions.
    pub fn npartitions(&self) -> usize {
        self.sizes.len()
    }

    /// Half-open row range of partition `i`. O(1): reads the cumulative
    /// offsets stored at precompute time.
    pub fn range(&self, i: usize) -> (usize, usize) {
        (self.offsets[i], self.offsets[i + 1])
    }
}

/// A dataframe split into row-wise partitions, each `Arc`-shared so graph
/// source nodes can hand them out without copying.
#[derive(Debug, Clone)]
pub struct PartitionedFrame {
    /// The partitions.
    pub partitions: Vec<Arc<DataFrame>>,
    /// The precomputed chunk metadata the partitions were built from.
    pub meta: ChunkMeta,
    /// Identity of the underlying dataset, used to key source tasks so two
    /// plot calls over the same frame share partition sources.
    pub dataset_id: u64,
}

impl PartitionedFrame {
    /// Split `df` according to precomputed metadata. Each partition is a
    /// zero-copy window over `df`'s column buffers — O(columns) pointer
    /// bumps per partition, never a row copy.
    pub fn from_meta(df: &DataFrame, meta: ChunkMeta) -> PartitionedFrame {
        let mut partitions = Vec::with_capacity(meta.npartitions());
        for i in 0..meta.npartitions() {
            let (start, end) = meta.range(i);
            partitions.push(Arc::new(df.slice(start, end - start)));
        }
        PartitionedFrame {
            partitions,
            meta,
            // Fingerprint, not a process counter: re-partitioning the same
            // frame in a later call reproduces the same dataset id, so
            // source TaskKeys — and everything derived from them — line up
            // across calls and the cross-call result cache can hit.
            dataset_id: df.fingerprint(),
        }
    }

    /// Precompute chunk sizes and split in one step.
    pub fn from_frame(df: &DataFrame, npartitions: usize) -> PartitionedFrame {
        let meta = ChunkMeta::precompute(df, npartitions);
        PartitionedFrame::from_meta(df, meta)
    }

    /// Number of partitions.
    pub fn npartitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total rows across partitions.
    pub fn nrows(&self) -> usize {
        self.meta.total_rows
    }

    /// Install one source node per partition into `graph`, returning their
    /// node ids. Keys derive from `(dataset_id, partition index)`, so
    /// repeated calls for the same frame share the same source nodes.
    pub fn source_nodes(&self, graph: &mut TaskGraph) -> Vec<NodeId> {
        self.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // The key covers the chunk layout, not just the index: the
                // same dataset rechunked differently yields different
                // partition contents and must not dedupe.
                let key = TaskKey::leaf(
                    "partition",
                    TaskKey::params(&(self.dataset_id, self.meta.npartitions(), i)),
                );
                let part: Payload = Arc::new(Arc::clone(p));
                graph.value("partition", key, part)
            })
            .collect()
    }

    /// Repartition into `n` chunks. Because chunk sizes were precomputed,
    /// this never inspects delayed data — the fix for the paper's
    /// `rechunk` issue.
    pub fn rechunk(&self, n: usize) -> PartitionedFrame {
        let refs: Vec<&DataFrame> = self.partitions.iter().map(|p| p.as_ref()).collect();
        // Partitions of one frame share its schema by construction, so
        // vstack cannot fail here.
        #[allow(clippy::expect_used)]
        let whole = DataFrame::vstack(&refs).expect("partitions share a schema");
        let mut out = PartitionedFrame::from_frame(&whole, n);
        out.dataset_id = self.dataset_id; // same data, same identity
        out
    }
}

/// Extract the `Arc<DataFrame>` stored in a partition source payload.
pub fn payload_frame(p: &Payload) -> Arc<DataFrame> {
    // Partition sources always store Arc<DataFrame>; a mismatch is a
    // caller bug worth failing loudly on (documented contract).
    #[allow(clippy::expect_used)]
    p.downcast_ref::<Arc<DataFrame>>()
        .expect("payload holds Arc<DataFrame>")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame(n: usize) -> DataFrame {
        DataFrame::new(vec![(
            "x".into(),
            Column::from_i64((0..n as i64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn precompute_sizes() {
        let meta = ChunkMeta::precompute(&frame(10), 3);
        assert_eq!(meta.sizes, vec![4, 4, 2]);
        assert_eq!(meta.total_rows, 10);
        assert_eq!(meta.range(0), (0, 4));
        assert_eq!(meta.range(2), (8, 10));
    }

    #[test]
    fn precompute_empty_frame() {
        let meta = ChunkMeta::precompute(&frame(0), 4);
        assert_eq!(meta.sizes, vec![0]);
        assert_eq!(meta.npartitions(), 1);
    }

    #[test]
    fn precompute_more_partitions_than_rows() {
        let meta = ChunkMeta::precompute(&frame(2), 8);
        assert_eq!(meta.sizes.iter().sum::<usize>(), 2);
        assert!(meta.npartitions() <= 2);
    }

    #[test]
    fn partitions_cover_frame() {
        let df = frame(17);
        let pf = PartitionedFrame::from_frame(&df, 4);
        assert_eq!(pf.nrows(), 17);
        let total: usize = pf.partitions.iter().map(|p| p.nrows()).sum();
        assert_eq!(total, 17);
        // First row of partition 1 continues where partition 0 ended.
        let p0_last = pf.partitions[0]
            .get(pf.partitions[0].nrows() - 1, "x")
            .unwrap();
        let p1_first = pf.partitions[1].get(0, "x").unwrap();
        assert_eq!(p0_last.as_f64().unwrap() + 1.0, p1_first.as_f64().unwrap());
    }

    #[test]
    fn precompute_offsets_are_cumulative() {
        let meta = ChunkMeta::precompute(&frame(10), 3);
        assert_eq!(meta.offsets, vec![0, 4, 8, 10]);
        for i in 0..meta.npartitions() {
            let naive: usize = meta.sizes[..i].iter().sum();
            assert_eq!(meta.range(i), (naive, naive + meta.sizes[i]));
        }
        let empty = ChunkMeta::precompute(&frame(0), 4);
        assert_eq!(empty.range(0), (0, 0));
    }

    #[test]
    fn partitioning_performs_zero_row_copies() {
        // Acceptance: every partition column is an Arc-shared window over
        // the source frame's buffers — pointer identity, not value copies.
        let df = DataFrame::new(vec![
            ("x".into(), Column::from_i64((0..1000).collect())),
            (
                "y".into(),
                Column::from_opt_f64(
                    (0..1000).map(|i| (i % 7 != 0).then_some(i as f64)).collect(),
                ),
            ),
        ])
        .unwrap();
        let pf = PartitionedFrame::from_frame(&df, 8);
        assert_eq!(pf.npartitions(), 8);
        for part in &pf.partitions {
            for name in ["x", "y"] {
                let src = df.column(name).unwrap();
                let view = part.column(name).unwrap();
                assert!(view.shares_buffer(src), "partition column {name} must share the frame's buffer");
            }
        }
    }

    #[test]
    fn source_nodes_shared_across_calls() {
        let pf = PartitionedFrame::from_frame(&frame(8), 2);
        let mut g = TaskGraph::new();
        let first = pf.source_nodes(&mut g);
        let second = pf.source_nodes(&mut g);
        assert_eq!(first, second);
        assert_eq!(g.len(), 2);
        assert_eq!(g.cse_hits(), 2);
    }

    #[test]
    fn different_frames_do_not_share_sources() {
        let pf1 = PartitionedFrame::from_frame(&frame(8), 2);
        let pf2 = PartitionedFrame::from_frame(&frame(8), 2);
        let mut g = TaskGraph::new();
        let a = pf1.source_nodes(&mut g);
        let b = pf2.source_nodes(&mut g);
        assert_ne!(a, b);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn source_payloads_are_frames() {
        let pf = PartitionedFrame::from_frame(&frame(6), 3);
        let mut g = TaskGraph::new();
        let nodes = pf.source_nodes(&mut g);
        let r = crate::scheduler::run_single_thread(&g, &nodes);
        let f0 = payload_frame(&r.outputs()[0]);
        assert_eq!(f0.nrows(), 2);
    }

    #[test]
    fn rechunk_preserves_rows_and_identity() {
        let pf = PartitionedFrame::from_frame(&frame(12), 3);
        let re = pf.rechunk(5);
        assert_eq!(re.nrows(), 12);
        // ceil-division layout: 12 rows in chunks of ceil(12/5)=3 → 4 parts.
        assert_eq!(re.npartitions(), 4);
        assert_eq!(re.dataset_id, pf.dataset_id);
        // Same identity ⇒ sources shared with the original in one graph.
        let mut g = TaskGraph::new();
        pf.source_nodes(&mut g);
        let before = g.len();
        re.source_nodes(&mut g);
        // Different partition count ⇒ different indices may add nodes, but
        // partition 0..3 of the rechunked frame share keys only if sizes
        // match; here they don't, so new nodes appear for all 5.
        assert!(g.len() >= before);
    }
}
