//! Per-task tracing and run metrics.
//!
//! The paper's performance claim rests on *which* tasks a run executes
//! and how well the pool keeps its workers busy; aggregate
//! [`crate::stats::ExecStats`] counters cannot show either. This module
//! records one [`TaskSpan`] per dispatched task — node, name, worker,
//! start/end offsets from the run origin, outcome, payload-size
//! estimate — into a plain per-worker `Vec` (each worker owns its
//! buffer, so recording takes no lock), merges the buffers into a
//! [`RunTrace`] attached to `ExecStats`, and derives everything a perf
//! PR needs to attribute a speedup:
//!
//! * exporters — Chrome `trace_event` JSON ([`RunTrace::to_chrome_trace`],
//!   loadable in `chrome://tracing` / Perfetto) and collapsed-stack lines
//!   ([`RunTrace::to_collapsed_stacks`]) for inferno-style flamegraphs;
//! * derived metrics — critical path, per-worker utilization, queue-wait
//!   histogram, top-K slowest tasks, CSE/prune savings in estimated task
//!   time;
//! * structured logs — a `RUST_LOG`-style `EDA_LOG` env filter gating
//!   compact `key=value` lines from the schedulers.
//!
//! Tracing is off unless [`crate::scheduler::ExecOptions::trace`] is set:
//! the schedulers branch around every recording site, so untraced runs
//! pay one predictable-false branch per task and allocate nothing.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Duration;

use crate::graph::{NodeId, Payload};
use crate::outcome::{TaskFailure, TaskOutcome};

/// How a span's task ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// The task produced a payload.
    Ok,
    /// The task panicked.
    Failed,
    /// The task finished but blew its deadline.
    TimedOut,
    /// The task never ran (upstream failure); zero-duration span.
    Skipped,
    /// The task's payload came from the cross-call result cache; the
    /// task body never ran. Zero-width span.
    Cached,
    /// The run's cancel token fired before the task dispatched (or while
    /// it ran); zero-width span when short-circuited.
    Cancelled,
    /// The task ran but its output charge was refused by the run's
    /// memory gauge; the payload was dropped.
    BudgetExceeded,
    /// The task produced a payload, but only after at least one
    /// transient-failure retry.
    Retried,
}

impl SpanStatus {
    /// Stable lowercase label used by exporters and logs.
    pub fn label(&self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::TimedOut => "timed_out",
            SpanStatus::Skipped => "skipped",
            SpanStatus::Cached => "cached",
            SpanStatus::Cancelled => "cancelled",
            SpanStatus::BudgetExceeded => "budget_exceeded",
            SpanStatus::Retried => "retried",
        }
    }

    /// Whether the task actually dispatched (ran on a worker). Skips,
    /// cache hits, and cancellation short-circuits are bookkeeping, not
    /// execution (a budget-exceeded task *did* run — only its output was
    /// refused).
    pub fn executed(&self) -> bool {
        !matches!(self, SpanStatus::Skipped | SpanStatus::Cached | SpanStatus::Cancelled)
    }

    /// Classify a task outcome.
    pub fn of(outcome: &TaskOutcome) -> SpanStatus {
        match outcome {
            TaskOutcome::Ok(_) => SpanStatus::Ok,
            TaskOutcome::Failed(err) => match err.failure {
                TaskFailure::Panicked(_) | TaskFailure::Internal(_) => SpanStatus::Failed,
                TaskFailure::TimedOut { .. } => SpanStatus::TimedOut,
                TaskFailure::Skipped { .. } => SpanStatus::Skipped,
                TaskFailure::Cancelled(_) => SpanStatus::Cancelled,
                TaskFailure::BudgetExceeded { .. } => SpanStatus::BudgetExceeded,
            },
        }
    }
}

/// One dispatched task, as seen by the scheduler.
///
/// All times are offsets from the run origin (the instant the scheduler
/// started), so spans from different workers share one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpan {
    /// Graph node.
    pub node: NodeId,
    /// Task name (op label), e.g. `"histogram:price"`.
    pub name: String,
    /// Worker that ran the task (`0` on the single-thread scheduler).
    pub worker: usize,
    /// Offset from run origin at which the task started.
    pub start: Duration,
    /// Offset from run origin at which the task ended.
    pub end: Duration,
    /// Time the task spent ready but waiting for a worker: start minus
    /// the latest dependency completion (or run origin for sources).
    pub queue_wait: Duration,
    /// How the task ended.
    pub status: SpanStatus,
    /// Estimated size of the produced payload in bytes (0 when none).
    pub payload_bytes: usize,
    /// Dependency nodes (for critical-path and queue-wait derivation).
    pub deps: Vec<NodeId>,
}

impl TaskSpan {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// The merged trace of one run: every span plus run-level context.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunTrace {
    /// All spans, sorted by node id (which is also topological order).
    pub spans: Vec<TaskSpan>,
    /// Worker count the run was configured with.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// The critical path through a run: the dependency chain whose span
/// durations sum highest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Summed task time along the path.
    pub total: Duration,
    /// Task names along the path, dependencies first.
    pub tasks: Vec<String>,
}

/// Upper edges (exclusive) of the queue-wait histogram buckets; the last
/// bucket is unbounded. Log-scaled: waits span micro- to milliseconds.
pub const QUEUE_WAIT_EDGES: [(Duration, &str); 6] = [
    (Duration::from_micros(10), "<10µs"),
    (Duration::from_micros(100), "<100µs"),
    (Duration::from_millis(1), "<1ms"),
    (Duration::from_millis(10), "<10ms"),
    (Duration::from_millis(100), "<100ms"),
    (Duration::MAX, "≥100ms"),
];

impl RunTrace {
    /// Merge per-worker span buffers into one trace, deriving each
    /// span's queue wait from its dependencies' completion times.
    pub fn from_buffers(
        buffers: Vec<Vec<TaskSpan>>,
        workers: usize,
        elapsed: Duration,
    ) -> RunTrace {
        let mut spans: Vec<TaskSpan> = buffers.into_iter().flatten().collect();
        spans.sort_by_key(|s| s.node);
        let ends: HashMap<NodeId, Duration> =
            spans.iter().map(|s| (s.node, s.end)).collect();
        for span in &mut spans {
            let ready = span
                .deps
                .iter()
                .filter_map(|d| ends.get(d).copied())
                .max()
                .unwrap_or(Duration::ZERO);
            span.queue_wait = span.start.saturating_sub(ready);
        }
        RunTrace { spans, workers, elapsed }
    }

    /// Concatenate the traces of sequential sub-runs (the EagerPerOp
    /// engine runs one graph per output), shifting each sub-run's spans
    /// by the offset at which it started.
    pub fn merge_sequential(
        parts: Vec<(Duration, RunTrace)>,
        workers: usize,
        elapsed: Duration,
    ) -> RunTrace {
        let mut spans = Vec::new();
        for (offset, part) in parts {
            for mut span in part.spans {
                span.start += offset;
                span.end += offset;
                spans.push(span);
            }
        }
        spans.sort_by_key(|s| (s.start, s.node));
        RunTrace { spans, workers, elapsed }
    }

    /// Spans that actually dispatched (everything but skips).
    pub fn executed(&self) -> impl Iterator<Item = &TaskSpan> {
        self.spans.iter().filter(|s| s.status.executed())
    }

    /// The span of the named task, if present (first match).
    pub fn span_named(&self, name: &str) -> Option<&TaskSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Wall-clock duration of the named task's span, if traced.
    pub fn elapsed_of(&self, name: &str) -> Option<Duration> {
        self.span_named(name).map(TaskSpan::duration)
    }

    /// The `k` slowest executed tasks, longest first.
    pub fn top_k(&self, k: usize) -> Vec<&TaskSpan> {
        let mut spans: Vec<&TaskSpan> = self.executed().collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.duration()));
        spans.truncate(k);
        spans
    }

    /// Busy fraction per worker id (`busy task time / run elapsed`),
    /// indexed `0..workers`.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let mut busy = vec![Duration::ZERO; self.workers.max(1)];
        for span in self.executed() {
            if let Some(b) = busy.get_mut(span.worker) {
                *b += span.duration();
            }
        }
        let total = self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        busy.iter().map(|b| (b.as_secs_f64() / total).min(1.0)).collect()
    }

    /// Queue-wait histogram over the fixed log-scaled
    /// [`QUEUE_WAIT_EDGES`] buckets: `(label, count)` per bucket.
    pub fn queue_wait_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts = vec![0usize; QUEUE_WAIT_EDGES.len()];
        for span in self.executed() {
            let bucket = QUEUE_WAIT_EDGES
                .iter()
                .position(|(edge, _)| span.queue_wait < *edge)
                .unwrap_or(QUEUE_WAIT_EDGES.len() - 1);
            counts[bucket] += 1;
        }
        QUEUE_WAIT_EDGES.iter().map(|(_, l)| *l).zip(counts).collect()
    }

    /// The critical path: longest dependency chain by summed span
    /// duration. Node ids ascend in dependency order, so one forward
    /// pass suffices.
    pub fn critical_path(&self) -> CriticalPath {
        let mut best: HashMap<NodeId, (Duration, NodeId)> = HashMap::new();
        let mut tail: Option<NodeId> = None;
        let mut tail_total = Duration::ZERO;
        for span in &self.spans {
            let (dep_total, dep) = span
                .deps
                .iter()
                .filter_map(|d| best.get(d).map(|&(t, _)| (t, *d)))
                .max_by_key(|&(t, _)| t)
                .unwrap_or((Duration::ZERO, span.node));
            let total = dep_total + span.duration();
            best.insert(span.node, (total, dep));
            if total >= tail_total {
                tail_total = total;
                tail = Some(span.node);
            }
        }
        let names: HashMap<NodeId, &str> =
            self.spans.iter().map(|s| (s.node, s.name.as_str())).collect();
        let mut tasks = Vec::new();
        let mut cursor = tail;
        while let Some(node) = cursor {
            tasks.push(names.get(&node).copied().unwrap_or("?").to_string());
            let (_, dep) = best[&node];
            cursor = if dep == node { None } else { Some(dep) };
        }
        tasks.reverse();
        CriticalPath { total: tail_total, tasks }
    }

    /// Mean duration of executed spans (zero when none ran).
    pub fn mean_task_time(&self) -> Duration {
        let (mut sum, mut n) = (Duration::ZERO, 0u32);
        for span in self.executed() {
            sum += span.duration();
            n += 1;
        }
        if n == 0 {
            Duration::ZERO
        } else {
            sum / n
        }
    }

    /// Estimated task time the optimizer saved, in wall-task-seconds:
    /// `avoided_tasks × mean task time`. This turns the node-count
    /// `cse_hits` / pruned counters into the paper's actual currency —
    /// computation time not spent.
    pub fn estimated_savings(&self, avoided_tasks: usize) -> Duration {
        let mean = self.mean_task_time();
        mean.checked_mul(avoided_tasks as u32).unwrap_or(Duration::MAX)
    }

    /// Export as Chrome `trace_event` JSON (the object form with a
    /// `traceEvents` array), loadable in `chrome://tracing` or Perfetto.
    ///
    /// Executed spans become complete (`"ph":"X"`) events — one per task
    /// that ran, failed, or timed out — with worker as the thread id.
    /// Cache hits also export as `"ph":"X"` events, but zero-width and
    /// tagged `"status":"cached"`, so the viewer shows what the cache
    /// short-circuited. Skipped and cancelled tasks become instant
    /// (`"ph":"i"`) events tagged with their status, so the viewer still
    /// shows where the graph was cut (or where a cancellation drained
    /// it).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for span in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let name = json_escape(&span.name);
            let ts = span.start.as_micros();
            if span.status.executed() || span.status == SpanStatus::Cached {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":1,\"tid\":{tid},\"args\":{{\"node\":{node},\
                     \"status\":\"{status}\",\"queue_wait_us\":{qw},\"payload_bytes\":{pb}}}}}",
                    dur = span.duration().as_micros(),
                    tid = span.worker,
                    node = span.node,
                    status = span.status.label(),
                    qw = span.queue_wait.as_micros(),
                    pb = span.payload_bytes,
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"task\",\"ph\":\"i\",\"ts\":{ts},\
                     \"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{{\"node\":{node},\
                     \"status\":\"{status}\"}}}}",
                    tid = span.worker,
                    node = span.node,
                    status = span.status.label(),
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Export as collapsed-stack lines (`frame;frame weight`), the input
    /// format of inferno / flamegraph.pl. Tasks aggregate by name under
    /// a `run` root frame; weights are microseconds of task time.
    pub fn to_collapsed_stacks(&self) -> String {
        let mut by_name: HashMap<&str, u128> = HashMap::new();
        for span in self.executed() {
            *by_name.entry(span.name.as_str()).or_insert(0) +=
                span.duration().as_micros();
        }
        let mut lines: Vec<(&str, u128)> = by_name.into_iter().collect();
        lines.sort();
        let mut out = String::new();
        for (name, micros) in lines {
            let _ = writeln!(out, "run;{} {micros}", fold_escape(name));
        }
        out
    }
}

/// Make a task name safe as a collapsed-stack frame: `;` separates
/// frames and whitespace separates the stack from its weight, so both
/// (and control characters, which would break line-oriented consumers)
/// are scrubbed to `_`/`,` rather than corrupting the whole line.
fn fold_escape(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ',',
            c if c.is_whitespace() => '_',
            c if (c as u32) < 0x20 => '_',
            c => c,
        })
        .collect()
}

/// Estimate the in-memory size of a payload in bytes.
///
/// Payloads are type-erased, so this downcasts against the common kernel
/// payload shapes and falls back to the fat-pointer size for everything
/// else — an *estimate* for profiling, not an accounting tool.
pub fn estimate_payload_bytes(p: &Payload) -> usize {
    if let Some(v) = p.downcast_ref::<Vec<f64>>() {
        v.len() * 8
    } else if let Some(v) = p.downcast_ref::<Vec<i64>>() {
        v.len() * 8
    } else if let Some(v) = p.downcast_ref::<Vec<u64>>() {
        v.len() * 8
    } else if let Some(v) = p.downcast_ref::<Vec<usize>>() {
        v.len() * 8
    } else if let Some(v) = p.downcast_ref::<Vec<bool>>() {
        v.len()
    } else if let Some(v) = p.downcast_ref::<Vec<(f64, f64)>>() {
        v.len() * 16
    } else if let Some(v) = p.downcast_ref::<Vec<String>>() {
        v.iter().map(|s| s.len() + 24).sum()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.len() + 24
    } else if p.downcast_ref::<f64>().is_some()
        || p.downcast_ref::<i64>().is_some()
        || p.downcast_ref::<u64>().is_some()
        || p.downcast_ref::<usize>().is_some()
    {
        8
    } else {
        std::mem::size_of::<Payload>()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Structured logging with a RUST_LOG-style env filter.
// ---------------------------------------------------------------------------

/// Allocate a process-unique run id. The schedulers stamp one on every
/// structured log line (`run_id=<n>`) so the interleaved stderr of
/// concurrent runs can be correlated back into per-run streams.
pub fn next_run_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
}

/// Log verbosity, ordered. Controlled by the `EDA_LOG` environment
/// variable (`error`..`trace`, or `target=level` items separated by
/// commas, of which the level parts apply); unset or `off` disables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Logging disabled.
    Off = 0,
    /// Failures only.
    Error = 1,
    /// Suspicious but recoverable conditions.
    Warn = 2,
    /// One line per run.
    Info = 3,
    /// One line per task.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl LogLevel {
    fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }
}

fn max_level() -> LogLevel {
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let Ok(spec) = std::env::var("EDA_LOG") else { return LogLevel::Off };
        // RUST_LOG-style: comma-separated `level` or `target=level`
        // items; the most verbose level wins (targets all live in this
        // workspace, so per-target filtering adds nothing here).
        spec.split(',')
            .filter_map(|item| {
                let level = item.rsplit('=').next().unwrap_or(item);
                LogLevel::parse(level)
            })
            .max()
            .unwrap_or(LogLevel::Off)
    })
}

/// Whether a message at `level` would be emitted. Callers use this to
/// skip formatting entirely on the hot path.
pub fn log_enabled(level: LogLevel) -> bool {
    level <= max_level() && level != LogLevel::Off
}

/// Emit one compact structured line to stderr:
/// `eda level=<level> target=<target> <message>`, where `message` is
/// `key=value` pairs by convention.
pub fn log(level: LogLevel, target: &str, message: std::fmt::Arguments<'_>) {
    if log_enabled(level) {
        eprintln!("eda level={} target={} {}", level.label(), target, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    fn span(node: NodeId, name: &str, worker: usize, start_us: u64, end_us: u64, deps: Vec<NodeId>) -> TaskSpan {
        TaskSpan {
            node,
            name: name.into(),
            worker,
            start: Duration::from_micros(start_us),
            end: Duration::from_micros(end_us),
            queue_wait: Duration::ZERO,
            status: SpanStatus::Ok,
            payload_bytes: 0,
            deps,
        }
    }

    fn diamond_trace() -> RunTrace {
        // a(0..100) -> b(110..300 on w0), c(120..200 on w1) -> d(310..400)
        RunTrace::from_buffers(
            vec![
                vec![span(0, "a", 0, 0, 100, vec![]), span(1, "b", 0, 110, 300, vec![0])],
                vec![span(2, "c", 1, 120, 200, vec![0]), span(3, "d", 1, 310, 400, vec![1, 2])],
            ],
            2,
            Duration::from_micros(400),
        )
    }

    #[test]
    fn queue_wait_derived_from_dep_ends() {
        let t = diamond_trace();
        let by_name = |n: &str| t.span_named(n).unwrap();
        assert_eq!(by_name("a").queue_wait, Duration::ZERO);
        assert_eq!(by_name("b").queue_wait, Duration::from_micros(10));
        assert_eq!(by_name("c").queue_wait, Duration::from_micros(20));
        assert_eq!(by_name("d").queue_wait, Duration::from_micros(10)); // after b at 300
    }

    #[test]
    fn critical_path_follows_slow_branch() {
        let t = diamond_trace();
        let cp = t.critical_path();
        assert_eq!(cp.tasks, vec!["a", "b", "d"]);
        // 100 + 190 + 90
        assert_eq!(cp.total, Duration::from_micros(380));
    }

    #[test]
    fn top_k_is_sorted_desc() {
        let t = diamond_trace();
        let top = t.top_k(2);
        assert_eq!(top[0].name, "b"); // 190us
        assert_eq!(top[1].name, "a"); // 100us
    }

    #[test]
    fn utilization_per_worker() {
        let t = diamond_trace();
        let u = t.worker_utilization();
        assert_eq!(u.len(), 2);
        // w0 busy 100+190 of 400; w1 busy 80+90 of 400.
        assert!((u[0] - 290.0 / 400.0).abs() < 1e-9, "{u:?}");
        assert!((u[1] - 170.0 / 400.0).abs() < 1e-9, "{u:?}");
    }

    #[test]
    fn queue_wait_histogram_buckets() {
        let t = diamond_trace();
        let hist = t.queue_wait_histogram();
        assert_eq!(hist.len(), QUEUE_WAIT_EDGES.len());
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<usize>(), 4);
        // All waits are 0-20us: first two buckets.
        assert_eq!(hist[0].1 + hist[1].1, 4);
    }

    #[test]
    fn chrome_trace_shape() {
        let t = diamond_trace();
        let json = t.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 0);
        // Balanced braces (hand-rolled JSON sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn skipped_spans_export_as_instants() {
        let mut t = diamond_trace();
        t.spans[3].status = SpanStatus::Skipped;
        let json = t.to_chrome_trace();
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
    }

    #[test]
    fn cached_spans_export_as_zero_width_complete_events() {
        let mut t = diamond_trace();
        t.spans[1].status = SpanStatus::Cached;
        t.spans[1].end = t.spans[1].start; // hits are zero-width
        let json = t.to_chrome_trace();
        // Still a complete event (timeline-visible), tagged cached, dur 0.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert!(json.contains("\"status\":\"cached\""));
        assert!(json.contains("\"dur\":0"));
        // Cache hits are not "executed": they add no worker busy time.
        assert!(!SpanStatus::Cached.executed());
        assert_eq!(SpanStatus::Cached.label(), "cached");
    }

    #[test]
    fn cancelled_spans_export_as_tagged_instants() {
        let mut t = diamond_trace();
        t.spans[2].status = SpanStatus::Cancelled;
        t.spans[2].end = t.spans[2].start;
        let json = t.to_chrome_trace();
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"status\":\"cancelled\""), "{json}");
        assert!(!SpanStatus::Cancelled.executed());
    }

    #[test]
    fn budget_exceeded_and_retried_spans_export_as_complete_events() {
        let mut t = diamond_trace();
        t.spans[1].status = SpanStatus::BudgetExceeded;
        t.spans[2].status = SpanStatus::Retried;
        let json = t.to_chrome_trace();
        // Both ran on a worker: timeline-visible complete events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert!(json.contains("\"status\":\"budget_exceeded\""), "{json}");
        assert!(json.contains("\"status\":\"retried\""), "{json}");
        assert!(SpanStatus::BudgetExceeded.executed());
        assert!(SpanStatus::Retried.executed());
    }

    #[test]
    fn collapsed_stacks_aggregate_by_name() {
        let mut t = diamond_trace();
        t.spans.push(span(4, "b", 0, 500, 600, vec![]));
        let folded = t.to_collapsed_stacks();
        let line = folded.lines().find(|l| l.starts_with("run;b ")).unwrap();
        assert_eq!(line, "run;b 290"); // 190 + 100
        assert!(folded.lines().all(|l| l.starts_with("run;")));
    }

    #[test]
    fn collapsed_stacks_escape_hostile_names() {
        let mut t = diamond_trace();
        t.spans[0].name = "weird; name\twith spaces\n".into();
        let folded = t.to_collapsed_stacks();
        for line in folded.lines() {
            // Exactly one space per line (stack/weight separator), a
            // numeric weight, and no embedded separators in frames.
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(weight.parse::<u128>().is_ok(), "bad weight in {line:?}");
            assert!(!stack.contains(' '), "unescaped space in {stack:?}");
            assert_eq!(stack.matches(';').count(), 1, "extra frame separator in {stack:?}");
        }
        assert!(folded.contains("run;weird,_name_with_spaces_ "), "{folded:?}");
    }

    #[test]
    fn run_ids_are_unique_and_nonzero() {
        let a = next_run_id();
        let b = next_run_id();
        assert!(a > 0);
        assert_ne!(a, b);
    }

    #[test]
    fn savings_scale_with_mean_task_time() {
        let t = diamond_trace();
        // mean = (100+190+80+90)/4 = 115us
        assert_eq!(t.mean_task_time(), Duration::from_micros(115));
        assert_eq!(t.estimated_savings(3), Duration::from_micros(345));
    }

    #[test]
    fn payload_size_estimates() {
        let v: Payload = Arc::new(vec![1.0f64; 10]);
        assert_eq!(estimate_payload_bytes(&v), 80);
        let b: Payload = Arc::new(vec![true; 5]);
        assert_eq!(estimate_payload_bytes(&b), 5);
        let s: Payload = Arc::new(String::from("abc"));
        assert_eq!(estimate_payload_bytes(&s), 27);
        let scalar: Payload = Arc::new(7i64);
        assert_eq!(estimate_payload_bytes(&scalar), 8);
        struct Opaque;
        let o: Payload = Arc::new(Opaque);
        assert_eq!(estimate_payload_bytes(&o), std::mem::size_of::<Payload>());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
    }

    #[test]
    fn merge_sequential_offsets_spans() {
        let part = RunTrace::from_buffers(
            vec![vec![span(0, "a", 0, 0, 100, vec![])]],
            1,
            Duration::from_micros(100),
        );
        let merged = RunTrace::merge_sequential(
            vec![(Duration::ZERO, part.clone()), (Duration::from_micros(500), part)],
            1,
            Duration::from_micros(600),
        );
        assert_eq!(merged.spans.len(), 2);
        assert_eq!(merged.spans[1].start, Duration::from_micros(500));
        assert_eq!(merged.spans[1].end, Duration::from_micros(600));
    }

    #[test]
    fn log_levels_ordered_and_parse() {
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("nope"), None);
    }

    /// The collector-side clock helper: offsets are measured from one
    /// origin Instant.
    #[test]
    fn spans_nest_within_elapsed_by_construction() {
        let origin = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let start = origin.elapsed();
        let end = origin.elapsed();
        assert!(start <= end);
    }
}
