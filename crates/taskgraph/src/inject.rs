//! Fault-injection harness for scheduler hardening.
//!
//! Production EDA runs hit panicking kernels, wedged I/O, and corrupted
//! intermediates; this module manufactures those failures on demand so
//! the fault-tolerance machinery can be tested deterministically, end to
//! end, through the public API.
//!
//! A [`FaultInjector`] holds a list of [`FaultPlan`]s. The schedulers
//! consult the injector (when one is attached to the graph) at every
//! task dispatch; a matching plan makes that dispatch panic, stall, or
//! return a garbage payload instead of/around running the real task.
//!
//! Graphs built deep inside `eda-core` can be reached via thread-local
//! arming: [`arm`] stores an injector that the next [`TaskGraph::new`]
//! on this thread adopts, so tests can say "make the `moments:price`
//! kernel panic inside `create_report`" without touching core's
//! internals. The injector travels *with the graph*, so pool workers on
//! other threads see it too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::graph::NodeId;
#[cfg(doc)]
use crate::graph::TaskGraph;

/// What a matching dispatch does instead of running normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic with an "injected fault" message (models a kernel bug).
    Panic,
    /// Sleep for the given duration before running the real task
    /// (models a wedged kernel; combine with a deadline to exercise
    /// timeouts).
    Stall(Duration),
    /// Return a payload of a type no consumer expects (models a
    /// corrupted intermediate; dependents blow up on downcast).
    Garbage,
    /// Panic with an "injected fault: transient" message for the first
    /// `failures` matching dispatches of this plan, then let the task
    /// run normally (models a flaky kernel; exercises
    /// [`crate::govern::RetryPolicy`]).
    TransientPanic {
        /// How many matching dispatches fail before the task heals.
        failures: usize,
    },
    /// Wedge the task: spin (observing the current
    /// [`crate::govern::CancelToken`]) for up to the given duration
    /// before running the real task. Unlike [`FaultMode::Stall`], a
    /// wedged task wakes as soon as its token fires, which is exactly
    /// what the deadline-reclamation machinery needs to be tested
    /// against.
    Wedge(Duration),
}

/// Which dispatches a plan applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// The Nth task dispatch (0-based) counted across the injector's
    /// lifetime, whatever that task is.
    Nth(usize),
    /// A specific node id.
    Node(NodeId),
    /// Every task whose name contains this substring.
    NameContains(String),
}

/// One injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which dispatches to sabotage.
    pub target: FaultTarget,
    /// How to sabotage them.
    pub mode: FaultMode,
}

/// A set of fault plans plus dispatch bookkeeping. Shared (`Arc`)
/// between the arming test, the graph, and every scheduler thread.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plans: Vec<FaultPlan>,
    /// Per-plan trigger counts (parallel to `plans`), so bounded modes
    /// like [`FaultMode::TransientPanic`] know when to stop firing.
    hits: Vec<AtomicUsize>,
    dispatched: AtomicUsize,
    triggered: AtomicUsize,
}

impl FaultInjector {
    /// Build an injector from explicit plans.
    pub fn new(plans: Vec<FaultPlan>) -> Arc<Self> {
        let hits = plans.iter().map(|_| AtomicUsize::new(0)).collect();
        Arc::new(FaultInjector { plans, hits, ..Default::default() })
    }

    /// Convenience: panic every task whose name contains `substr`.
    pub fn panic_on(substr: &str) -> Arc<Self> {
        Self::new(vec![FaultPlan {
            target: FaultTarget::NameContains(substr.to_string()),
            mode: FaultMode::Panic,
        }])
    }

    /// Convenience: stall tasks whose name contains `substr` for `d`.
    pub fn stall_on(substr: &str, d: Duration) -> Arc<Self> {
        Self::new(vec![FaultPlan {
            target: FaultTarget::NameContains(substr.to_string()),
            mode: FaultMode::Stall(d),
        }])
    }

    /// Convenience: corrupt the output of tasks whose name contains
    /// `substr`.
    pub fn garbage_on(substr: &str) -> Arc<Self> {
        Self::new(vec![FaultPlan {
            target: FaultTarget::NameContains(substr.to_string()),
            mode: FaultMode::Garbage,
        }])
    }

    /// Convenience: tasks whose name contains `substr` fail transiently
    /// for their first `failures` dispatches, then heal.
    pub fn transient_on(substr: &str, failures: usize) -> Arc<Self> {
        Self::new(vec![FaultPlan {
            target: FaultTarget::NameContains(substr.to_string()),
            mode: FaultMode::TransientPanic { failures },
        }])
    }

    /// Convenience: wedge tasks whose name contains `substr` for up to
    /// `max` (they wake early if their cancel token fires).
    pub fn wedge_on(substr: &str, max: Duration) -> Arc<Self> {
        Self::new(vec![FaultPlan {
            target: FaultTarget::NameContains(substr.to_string()),
            mode: FaultMode::Wedge(max),
        }])
    }

    /// Called by schedulers at each dispatch: returns the fault to
    /// apply, if any, and advances the dispatch counter. Re-executions
    /// (retries) count as fresh dispatches, which is what lets a
    /// [`FaultMode::TransientPanic`] plan exhaust itself and the retry
    /// succeed.
    pub fn decide(&self, node: NodeId, name: &str) -> Option<FaultMode> {
        let n = self.dispatched.fetch_add(1, Ordering::SeqCst);
        for (i, plan) in self.plans.iter().enumerate() {
            let hit = match &plan.target {
                FaultTarget::Nth(k) => *k == n,
                FaultTarget::Node(id) => *id == node,
                FaultTarget::NameContains(s) => name.contains(s.as_str()),
            };
            if !hit {
                continue;
            }
            if let FaultMode::TransientPanic { failures } = &plan.mode {
                // Bounded plan: fire only for its first `failures` hits.
                let seen = self.hits.get(i).map_or(0, |h| h.fetch_add(1, Ordering::SeqCst));
                if seen >= *failures {
                    continue;
                }
            } else if let Some(h) = self.hits.get(i) {
                h.fetch_add(1, Ordering::SeqCst);
            }
            self.triggered.fetch_add(1, Ordering::SeqCst);
            return Some(plan.mode.clone());
        }
        None
    }

    /// Total task dispatches seen.
    pub fn dispatched(&self) -> usize {
        self.dispatched.load(Ordering::SeqCst)
    }

    /// How many dispatches matched a plan.
    pub fn triggered(&self) -> usize {
        self.triggered.load(Ordering::SeqCst)
    }
}

/// The payload type [`FaultMode::Garbage`] substitutes: intentionally a
/// type no kernel consumes, so downstream downcasts fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Garbage;

thread_local! {
    static ARMED: std::cell::RefCell<Option<Arc<FaultInjector>>> =
        const { std::cell::RefCell::new(None) };
}

/// Arm `injector` for this thread: every [`TaskGraph`] constructed on
/// this thread while the returned guard lives adopts it. Lets tests
/// sabotage graphs built deep inside higher layers.
pub fn arm(injector: Arc<FaultInjector>) -> ArmGuard {
    ARMED.with(|a| *a.borrow_mut() = Some(injector));
    ArmGuard { _private: () }
}

/// The injector currently armed on this thread, if any.
pub(crate) fn armed() -> Option<Arc<FaultInjector>> {
    ARMED.with(|a| a.borrow().clone())
}

/// Disarms the thread-local injector when dropped.
pub struct ArmGuard {
    _private: (),
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        ARMED.with(|a| *a.borrow_mut() = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    #[test]
    fn name_target_matches_substring() {
        let inj = FaultInjector::panic_on("moments:price");
        assert_eq!(inj.decide(0, "hist:price"), None);
        assert_eq!(inj.decide(1, "moments:price"), Some(FaultMode::Panic));
        assert_eq!(inj.decide(2, "moments:qty"), None);
        assert_eq!(inj.dispatched(), 3);
        assert_eq!(inj.triggered(), 1);
    }

    #[test]
    fn nth_target_counts_dispatches() {
        let inj = FaultInjector::new(vec![FaultPlan {
            target: FaultTarget::Nth(2),
            mode: FaultMode::Garbage,
        }]);
        assert_eq!(inj.decide(10, "a"), None);
        assert_eq!(inj.decide(11, "b"), None);
        assert_eq!(inj.decide(12, "c"), Some(FaultMode::Garbage));
        assert_eq!(inj.decide(13, "d"), None);
    }

    #[test]
    fn node_target_matches_id() {
        let inj = FaultInjector::new(vec![FaultPlan {
            target: FaultTarget::Node(7),
            mode: FaultMode::Stall(Duration::from_millis(1)),
        }]);
        assert_eq!(inj.decide(6, "x"), None);
        assert!(matches!(inj.decide(7, "x"), Some(FaultMode::Stall(_))));
    }

    #[test]
    fn transient_plan_exhausts_after_configured_failures() {
        let inj = FaultInjector::transient_on("flaky", 2);
        assert!(matches!(inj.decide(0, "flaky:a"), Some(FaultMode::TransientPanic { .. })));
        assert!(matches!(inj.decide(0, "flaky:a"), Some(FaultMode::TransientPanic { .. })));
        // Third matching dispatch: the plan is spent, the task heals.
        assert_eq!(inj.decide(0, "flaky:a"), None);
        assert_eq!(inj.decide(1, "steady"), None);
        assert_eq!(inj.triggered(), 2);
    }

    #[test]
    fn wedge_plan_matches_by_name() {
        let inj = FaultInjector::wedge_on("slow", Duration::from_secs(3));
        assert!(matches!(inj.decide(0, "slow:x"), Some(FaultMode::Wedge(_))));
        assert_eq!(inj.decide(1, "fast:y"), None);
    }

    #[test]
    fn arming_attaches_to_new_graphs_and_disarms_on_drop() {
        let inj = FaultInjector::panic_on("anything");
        {
            let _guard = arm(Arc::clone(&inj));
            let g = TaskGraph::new();
            assert!(g.fault_injector().is_some());
        }
        let g = TaskGraph::new();
        assert!(g.fault_injector().is_none());
    }
}
