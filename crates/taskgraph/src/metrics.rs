//! Process-lifetime telemetry.
//!
//! Per-run [`crate::stats::ExecStats`] and traces (PR 2) die with the
//! call that produced them; an operator watching a long-lived process —
//! the EDA-as-a-service server of the ROADMAP — needs aggregate health:
//! cache hit-rates over thousands of runs, shed rates under load, kernel
//! throughput over time. This module is that layer: a process-wide
//! registry of counters, gauges, and log-linear-bucket histograms,
//! recorded lock-free on hot paths and merged only when a snapshot is
//! taken.
//!
//! Design, mirroring the per-worker span buffers of [`crate::trace`]:
//!
//! * [`Counter`] is sharded: each recording thread owns one cache-line-
//!   aligned shard (assigned round-robin on first use), so a hot-path
//!   increment is one `Relaxed` `fetch_add` with no cross-core traffic
//!   under the shard count. Shards are summed only by [`Counter::get`].
//! * [`Gauge`] is a single atomic with `set` / `set_max` (peaks).
//! * [`Histogram`] uses log-linear buckets — four linear sub-buckets per
//!   power of two, the HdrHistogram layout — so one `Relaxed` add per
//!   observation yields percentile-grade resolution from 1µs to days
//!   without a lock or an allocation.
//!
//! Everything hangs off one [`MetricsRegistry`] singleton ([`global`]).
//! Recording is opt-in per run (`ExecOptions::metrics`, surfaced as the
//! `engine.metrics` knob): when the knob is off the schedulers never
//! touch the registry, and output stays bit-identical. The registry
//! itself additionally carries an `enabled` latch for recorders that
//! cannot see run options (the kernel morsel probe in `eda-stats`).
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) are plain data and export
//! to Prometheus text exposition format
//! ([`MetricsSnapshot::to_prometheus`], the payload a `/metrics`
//! endpoint serves) and JSON ([`MetricsSnapshot::to_json`]).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::stats::ExecStats;

/// Shards per [`Counter`]. A small power of two: enough to keep typical
/// worker pools from bouncing one cache line, cheap enough to sum.
const SHARDS: usize = 8;

/// One cache line per shard so two shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// The calling thread's shard index, assigned round-robin on first use
/// and stable for the thread's lifetime.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
    }
    INDEX.with(|i| *i)
}

/// A monotone counter sharded per recording thread.
///
/// `add` is one `Relaxed` `fetch_add` on the caller's own shard; `get`
/// sums the shards. Totals are exact (every add lands in some shard);
/// only the read is a momentary cut across shards, which is all a
/// monitoring scrape needs.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter { shards: [const { Shard(AtomicU64::new(0)) }; SHARDS] }
    }

    /// Add `v` to the calling thread's shard.
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is higher (process high-water mark).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two: 2 bits → 4 sub-buckets, i.e.
/// ≤25% relative bucket width everywhere.
const SUB_BITS: u32 = 2;
/// `1 << SUB_BITS`.
const SUB: usize = 1 << SUB_BITS;
/// Bucket count including the final overflow bucket. 147 finite buckets
/// cover `[0, 7·2³⁵)` — about 2.8 days in microseconds.
const NBUCKETS: usize = 148;

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let shift = exp - SUB_BITS;
    let idx = ((shift as u64 + 1) * SUB as u64 + ((v >> shift) - SUB as u64)) as usize;
    idx.min(NBUCKETS - 1)
}

/// Smallest value landing in bucket `i` (the bucket covers
/// `[lower_bound(i), lower_bound(i+1))`).
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let group = i / SUB;
    let sub = (i % SUB) as u64;
    (SUB as u64 + sub) << (group - 1)
}

/// Inclusive upper bound of bucket `i` (`None` for the overflow bucket).
fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= NBUCKETS {
        None
    } else {
        Some(bucket_lower_bound(i + 1) - 1)
    }
}

/// A log-linear-bucket histogram: one `Relaxed` add per observation
/// (plus one for the running sum), percentile-grade resolution, no
/// locks, no allocation.
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum: Counter,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Histogram {
        Histogram { buckets: [const { AtomicU64::new(0) }; NBUCKETS], sum: Counter::new() }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// Record a duration in microseconds (saturating past `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    fn snapshot(&self, name: &'static str, help: &'static str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut overflow = 0;
        let mut count = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            count += n;
            match bucket_upper_bound(i) {
                Some(le) => buckets.push((le, n)),
                None => overflow = n,
            }
        }
        HistogramSnapshot { name, help, buckets, overflow, count, sum: self.sum() }
    }
}

/// Frozen view of one [`Histogram`]: per-bucket (not cumulative) counts
/// for the non-empty finite buckets, keyed by inclusive upper bound,
/// plus the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name (without the `eda_` prefix conventions applied by
    /// exporters — this is already the full exported name).
    pub name: &'static str,
    /// One-line help string.
    pub help: &'static str,
    /// `(inclusive upper bound, count)` for each non-empty finite bucket,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last finite bucket.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Smallest bucket upper bound with cumulative count ≥ `q·count` —
    /// a bucket-resolution quantile (`q` in `[0,1]`). `None` when empty
    /// or when the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0;
        for &(le, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return Some(le);
            }
        }
        None
    }
}

/// Frozen view of the whole registry at one instant. Plain data:
/// comparable, clonable, renderable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, help, value)` per counter, fixed registry order.
    pub counters: Vec<(&'static str, &'static str, u64)>,
    /// `(name, help, value)` per gauge, fixed registry order.
    pub gauges: Vec<(&'static str, &'static str, u64)>,
    /// One snapshot per histogram, fixed registry order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _, _)| *n == name).map(|&(_, _, v)| v)
    }

    /// Value of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _, _)| *n == name).map(|&(_, _, v)| v)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Export in Prometheus text exposition format (version 0.0.4), the
    /// payload a `/metrics` endpoint serves. Counters end in `_total`,
    /// histograms emit cumulative `_bucket{le="..."}` series plus
    /// `_sum` / `_count`, and every family carries `# HELP` / `# TYPE`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, help, value) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for &(name, help, value) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0;
            for &(le, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", h.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }

    /// Export as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,
    /// "sum":..,"overflow":..,"buckets":[[le,count],..]}}}`. Names are
    /// `[a-z0-9_]` by construction, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, &(name, _, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, &(name, _, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"overflow\":{},\"buckets\":[",
                h.name, h.count, h.sum, h.overflow
            );
            for (j, &(le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{le},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide metric registry. One instance lives for the process
/// ([`global`]); constructing others is supported for tests.
///
/// Naming conventions (also DESIGN.md §14): every series is prefixed
/// `eda_`, counters end `_total`, byte-valued series end `_bytes`, and
/// histograms carry their unit as a suffix (`_us`).
#[derive(Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,

    /// Graph executions folded into this registry.
    pub runs_total: Counter,
    /// Tasks that executed and produced a payload.
    pub tasks_run_total: Counter,
    /// Nodes never dispatched thanks to dead-node pruning.
    pub tasks_pruned_total: Counter,
    /// Tasks that panicked (isolated; the runs continued).
    pub tasks_failed_total: Counter,
    /// Tasks skipped because an upstream dependency failed.
    pub tasks_skipped_total: Counter,
    /// Tasks that finished but blew their per-task deadline.
    pub tasks_timed_out_total: Counter,
    /// Tasks cancelled by a fired run token (request or deadline).
    pub tasks_cancelled_total: Counter,
    /// Tasks re-executed at least once after a transient failure.
    pub tasks_retried_total: Counter,
    /// Tasks whose output charge was refused by a memory gauge.
    pub tasks_budget_exceeded_total: Counter,
    /// Graph insertions answered by common-subexpression elimination.
    pub cse_hits_total: Counter,

    /// Tasks satisfied by the cross-call result cache.
    pub cache_hits_total: Counter,
    /// Cache probes that found nothing.
    pub cache_misses_total: Counter,
    /// Cache entries evicted to respect the byte budget.
    pub cache_evictions_total: Counter,
    /// Estimated payload bytes served from the cache instead of being
    /// recomputed.
    pub cache_bytes_saved_total: Counter,

    /// Runs refused admission (`EdaError::Overloaded`).
    pub admission_shed_total: Counter,
    /// Runs in which the memory budget refused at least one charge.
    pub budget_trip_runs_total: Counter,

    /// Kernel morsels processed (one per interrupt-probe boundary).
    pub morsels_total: Counter,
    /// Rows processed across kernel morsels.
    pub morsel_rows_total: Counter,
    /// Morsels produced by splitting task row ranges for the
    /// work-stealing engine ([`crate::morsel`]).
    pub morsels_split_total: Counter,
    /// Split morsels executed by helper threads (stolen from the back
    /// of the deque) rather than the owning worker.
    pub morsels_stolen_total: Counter,

    /// Process high-water mark of gauge-charged payload bytes.
    pub mem_peak_bytes: Gauge,
    /// Resident bytes in the session result cache at last snapshot.
    pub cache_resident_bytes: Gauge,
    /// Configured byte budget of the session result cache.
    pub cache_budget_bytes: Gauge,

    /// Wall-clock duration of executed tasks, microseconds.
    pub task_duration_us: Histogram,
    /// Ready-to-dispatch queue wait of executed tasks, microseconds
    /// (folded from run traces; populated only on profiled runs).
    pub queue_wait_us: Histogram,
    /// Wall-clock duration of whole graph executions, microseconds.
    pub run_duration_us: Histogram,
}

impl MetricsRegistry {
    /// A fresh, disabled registry (all series zero).
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            runs_total: Counter::new(),
            tasks_run_total: Counter::new(),
            tasks_pruned_total: Counter::new(),
            tasks_failed_total: Counter::new(),
            tasks_skipped_total: Counter::new(),
            tasks_timed_out_total: Counter::new(),
            tasks_cancelled_total: Counter::new(),
            tasks_retried_total: Counter::new(),
            tasks_budget_exceeded_total: Counter::new(),
            cse_hits_total: Counter::new(),
            cache_hits_total: Counter::new(),
            cache_misses_total: Counter::new(),
            cache_evictions_total: Counter::new(),
            cache_bytes_saved_total: Counter::new(),
            admission_shed_total: Counter::new(),
            budget_trip_runs_total: Counter::new(),
            morsels_total: Counter::new(),
            morsel_rows_total: Counter::new(),
            morsels_split_total: Counter::new(),
            morsels_stolen_total: Counter::new(),
            mem_peak_bytes: Gauge::new(),
            cache_resident_bytes: Gauge::new(),
            cache_budget_bytes: Gauge::new(),
            task_duration_us: Histogram::new(),
            queue_wait_us: Histogram::new(),
            run_duration_us: Histogram::new(),
        }
    }

    /// Whether out-of-band recorders (the kernel morsel probe) should
    /// record. Scheduler paths are gated by `ExecOptions::metrics`
    /// instead and never consult this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Latch the registry on (or off). Flipped on the first run
    /// configured with `engine.metrics`; telemetry is process-lifetime,
    /// so it normally stays on once on.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Fold one finished run's [`ExecStats`] into the lifetime series.
    /// Called by the schedulers after stats are final; per-task series
    /// ([`MetricsRegistry::task_duration_us`]) are recorded live at task
    /// completion instead.
    pub fn record_run(&self, stats: &ExecStats) {
        self.runs_total.incr();
        self.tasks_run_total.add(stats.tasks_run as u64);
        self.tasks_pruned_total.add(stats.pruned() as u64);
        self.tasks_failed_total.add(stats.tasks_failed as u64);
        self.tasks_skipped_total.add(stats.tasks_skipped as u64);
        self.tasks_timed_out_total.add(stats.tasks_timed_out as u64);
        self.tasks_cancelled_total.add(stats.tasks_cancelled as u64);
        self.tasks_retried_total.add(stats.tasks_retried as u64);
        self.tasks_budget_exceeded_total.add(stats.tasks_budget_exceeded as u64);
        self.cse_hits_total.add(stats.cse_hits as u64);
        self.cache_hits_total.add(stats.cache_hits as u64);
        self.cache_misses_total.add(stats.cache_misses as u64);
        self.cache_evictions_total.add(stats.cache_evictions as u64);
        self.cache_bytes_saved_total.add(stats.cache_bytes_saved as u64);
        if stats.tasks_budget_exceeded > 0 {
            self.budget_trip_runs_total.incr();
        }
        self.mem_peak_bytes.set_max(stats.mem_peak_bytes as u64);
        self.run_duration_us.record_duration(stats.elapsed);
        if let Some(trace) = &stats.trace {
            for span in trace.executed() {
                self.queue_wait_us.record_duration(span.queue_wait);
            }
        }
    }

    /// Freeze every series into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters: &[(&'static str, &'static str, &Counter)] = &[
            ("eda_runs_total", "Graph executions recorded.", &self.runs_total),
            ("eda_tasks_run_total", "Tasks that executed and produced a payload.", &self.tasks_run_total),
            ("eda_tasks_pruned_total", "Nodes never dispatched thanks to dead-node pruning.", &self.tasks_pruned_total),
            ("eda_tasks_failed_total", "Tasks that panicked (isolated; runs continued).", &self.tasks_failed_total),
            ("eda_tasks_skipped_total", "Tasks skipped because an upstream dependency failed.", &self.tasks_skipped_total),
            ("eda_tasks_timed_out_total", "Tasks that blew their per-task deadline.", &self.tasks_timed_out_total),
            ("eda_tasks_cancelled_total", "Tasks cancelled by a fired run token.", &self.tasks_cancelled_total),
            ("eda_tasks_retried_total", "Tasks re-executed after a transient failure.", &self.tasks_retried_total),
            ("eda_tasks_budget_exceeded_total", "Tasks whose output charge was refused by a memory gauge.", &self.tasks_budget_exceeded_total),
            ("eda_cse_hits_total", "Graph insertions answered by common-subexpression elimination.", &self.cse_hits_total),
            ("eda_cache_hits_total", "Tasks satisfied by the cross-call result cache.", &self.cache_hits_total),
            ("eda_cache_misses_total", "Cache probes that found nothing.", &self.cache_misses_total),
            ("eda_cache_evictions_total", "Cache entries evicted to respect the byte budget.", &self.cache_evictions_total),
            ("eda_cache_bytes_saved_total", "Estimated payload bytes served from the cache.", &self.cache_bytes_saved_total),
            ("eda_admission_shed_total", "Runs refused admission under load.", &self.admission_shed_total),
            ("eda_budget_trip_runs_total", "Runs in which the memory budget refused a charge.", &self.budget_trip_runs_total),
            ("eda_morsels_total", "Kernel morsels processed.", &self.morsels_total),
            ("eda_morsel_rows_total", "Rows processed across kernel morsels.", &self.morsel_rows_total),
            ("eda_morsels_split_total", "Morsels produced for the work-stealing engine.", &self.morsels_split_total),
            ("eda_morsels_stolen_total", "Split morsels executed by helper threads.", &self.morsels_stolen_total),
        ];
        let gauges: &[(&'static str, &'static str, &Gauge)] = &[
            ("eda_mem_peak_bytes", "Process high-water mark of gauge-charged payload bytes.", &self.mem_peak_bytes),
            ("eda_cache_resident_bytes", "Resident bytes in the session result cache.", &self.cache_resident_bytes),
            ("eda_cache_budget_bytes", "Configured byte budget of the session result cache.", &self.cache_budget_bytes),
        ];
        MetricsSnapshot {
            counters: counters.iter().map(|&(n, h, c)| (n, h, c.get())).collect(),
            gauges: gauges.iter().map(|&(n, h, g)| (n, h, g.get())).collect(),
            histograms: vec![
                self.task_duration_us.snapshot(
                    "eda_task_duration_us",
                    "Wall-clock duration of executed tasks, microseconds.",
                ),
                self.queue_wait_us.snapshot(
                    "eda_queue_wait_us",
                    "Queue wait of executed tasks, microseconds (profiled runs only).",
                ),
                self.run_duration_us.snapshot(
                    "eda_run_duration_us",
                    "Wall-clock duration of graph executions, microseconds.",
                ),
            ],
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn bucket_index_is_monotone_and_log_linear() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            last = i;
        }
        // Linear region: one bucket per value.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(3), 3);
        // Log-linear: 4 sub-buckets per octave.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        // Overflow clamps.
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for i in 0..NBUCKETS - 1 {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of {i}");
            if let Some(ub) = bucket_upper_bound(i) {
                assert_eq!(bucket_index(ub), i, "upper bound of {i}");
                assert_eq!(bucket_index(ub + 1), i + 1, "first value past {i}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 11_104);
        let snap = h.snapshot("t", "t");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 6);
        // Median lands in the bucket holding 2; p100 covers 10_000.
        let p50 = snap.quantile(0.5).unwrap();
        assert!((2..100).contains(&p50), "{p50}");
        let p100 = snap.quantile(1.0).unwrap();
        assert!(p100 >= 10_000, "{p100}");
        // Bucket-resolution guarantee: ≤25% relative error.
        assert!(p100 <= 12_500, "{p100}");
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot("t", "t");
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.quantile(0.5), None); // in the overflow bucket
    }

    #[test]
    fn record_run_folds_exec_stats() {
        let m = MetricsRegistry::new();
        let stats = ExecStats {
            tasks_run: 5,
            live_nodes: 5,
            total_nodes: 8,
            tasks_failed: 1,
            tasks_retried: 2,
            tasks_budget_exceeded: 1,
            cache_hits: 3,
            mem_peak_bytes: 1 << 20,
            elapsed: Duration::from_micros(1500),
            ..ExecStats::default()
        };
        m.record_run(&stats);
        m.record_run(&stats);
        let s = m.snapshot();
        assert_eq!(s.counter("eda_runs_total"), Some(2));
        assert_eq!(s.counter("eda_tasks_run_total"), Some(10));
        assert_eq!(s.counter("eda_tasks_pruned_total"), Some(6));
        assert_eq!(s.counter("eda_cache_hits_total"), Some(6));
        assert_eq!(s.counter("eda_budget_trip_runs_total"), Some(2));
        assert_eq!(s.gauge("eda_mem_peak_bytes"), Some(1 << 20));
        let runs = s.histogram("eda_run_duration_us").unwrap();
        assert_eq!(runs.count, 2);
        assert_eq!(runs.sum, 3000);
    }

    #[test]
    fn snapshot_lookup_misses_are_none() {
        let s = MetricsRegistry::new().snapshot();
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.gauge("nope"), None);
        assert!(s.histogram("nope").is_none());
    }

    #[test]
    fn enabled_latch() {
        let m = MetricsRegistry::new();
        assert!(!m.enabled());
        m.set_enabled(true);
        assert!(m.enabled());
    }

    #[test]
    fn prometheus_output_shape() {
        let m = MetricsRegistry::new();
        m.tasks_run_total.add(7);
        m.task_duration_us.record(100);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE eda_tasks_run_total counter"));
        assert!(text.contains("\neda_tasks_run_total 7\n"));
        assert!(text.contains("# TYPE eda_task_duration_us histogram"));
        assert!(text.contains("eda_task_duration_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("eda_task_duration_us_sum 100"));
        assert!(text.contains("eda_task_duration_us_count 1"));
    }

    #[test]
    fn json_output_shape() {
        let m = MetricsRegistry::new();
        m.cache_hits_total.add(2);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"eda_cache_hits_total\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
