//! Ingestion fan-out: independent chunk jobs on the worker pool.
//!
//! Chunked readers (the `eda-io` CSV pipeline) need a narrower contract
//! than a full task graph: N index-addressed jobs with no edges between
//! them, executed on the shared pool with the usual governance
//! (cancellation checked at every dispatch — i.e. at chunk boundaries —
//! memory budgets, retries, tracing), results handed back in index order
//! regardless of completion interleaving.
//!
//! Two shapes:
//!
//! * [`run_chunk_tasks`] — one pool run over all `count` jobs. Payloads
//!   for every chunk are live at once; right when the caller folds them
//!   all into one output (building a frame is O(file) anyway).
//! * [`run_chunk_waves`] — jobs executed in bounded waves of
//!   `workers × wave_factor`, with a fold callback between waves and
//!   payloads dropped as each wave retires. This is the out-of-core
//!   shape: peak memory is O(chunk × wave) however long the stream is,
//!   which is what lets streaming statistics run over data larger than
//!   RAM.

use std::sync::Arc;

use crate::graph::{Payload, TaskGraph};
use crate::key::TaskKey;
use crate::outcome::TaskOutcome;
use crate::scheduler::{run_pool_opts, ExecOptions, ExecResult};

/// Run `count` independent chunk jobs on the pool; `job(i)` produces
/// chunk `i`'s payload. Outcomes come back in index order. Jobs run under
/// the full [`ExecOptions`] contract: a fired cancel token stops
/// dispatching at the next chunk boundary, panics isolate to their chunk,
/// and the memory gauge prices every payload.
pub fn run_chunk_tasks<F>(
    label: &str,
    count: usize,
    job: F,
    workers: usize,
    opts: &ExecOptions,
) -> ExecResult
where
    F: Fn(usize) -> Payload + Send + Sync + 'static,
{
    run_range(label, 0, count, &Arc::new(job), workers, opts)
}

/// Summary of a wave-bounded ingest run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WaveStats {
    /// Waves dispatched (including a final short wave).
    pub waves: usize,
    /// Chunk jobs whose outcomes were delivered to the fold callback.
    pub tasks_delivered: usize,
    /// True when the fold callback stopped the run early.
    pub stopped_early: bool,
}

/// Run `count` chunk jobs in waves of `workers × wave_factor`, calling
/// `fold(first_index, outcomes)` after each wave. Returning `false` from
/// the fold stops the run (error found, token fired, enough data).
/// Payloads never outlive their wave, so peak memory is bounded by the
/// wave size — the executor for folds over streams larger than RAM.
pub fn run_chunk_waves<F>(
    label: &str,
    count: usize,
    job: F,
    workers: usize,
    wave_factor: usize,
    opts: &ExecOptions,
    mut fold: impl FnMut(usize, Vec<TaskOutcome>) -> bool,
) -> WaveStats
where
    F: Fn(usize) -> Payload + Send + Sync + 'static,
{
    let job = Arc::new(job);
    let wave = workers.max(1) * wave_factor.max(1);
    let mut stats = WaveStats::default();
    let mut base = 0;
    while base < count {
        let n = wave.min(count - base);
        let result = run_range(label, base, n, &job, workers, opts);
        stats.waves += 1;
        stats.tasks_delivered += result.outcomes.len();
        if !fold(base, result.outcomes) {
            stats.stopped_early = true;
            break;
        }
        base += n;
    }
    stats
}

fn run_range<F>(
    label: &str,
    base: usize,
    count: usize,
    job: &Arc<F>,
    workers: usize,
    opts: &ExecOptions,
) -> ExecResult
where
    F: Fn(usize) -> Payload + Send + Sync + 'static,
{
    // Chunk payloads are positional per run, not content-addressed:
    // dedup off so the result cache can never alias two runs' chunks.
    let mut graph = TaskGraph::without_dedup();
    let name = format!("ingest:{label}");
    let outputs: Vec<_> = (0..count)
        .map(|i| {
            let job = Arc::clone(job);
            let index = base + i;
            graph.source(&name, TaskKey::leaf(&name, index as u64), move || job(index))
        })
        .collect();
    run_pool_opts(&graph, &outputs, workers, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::CancelToken;

    fn payload(v: usize) -> Payload {
        Arc::new(v)
    }

    fn as_usize(o: &TaskOutcome) -> Option<usize> {
        o.payload().and_then(|p| p.downcast_ref::<usize>()).copied()
    }

    #[test]
    fn outcomes_in_index_order() {
        let r = run_chunk_tasks("t", 16, |i| payload(i * 10), 4, &ExecOptions::default());
        let got: Vec<_> = r.outcomes.iter().map(|o| as_usize(o).unwrap()).collect();
        assert_eq!(got, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_chunk_isolates() {
        let r = run_chunk_tasks(
            "t",
            8,
            |i| {
                assert!(i != 3, "injected chunk failure");
                payload(i)
            },
            4,
            &ExecOptions::default(),
        );
        assert!(r.outcomes[3].is_failed());
        for (i, o) in r.outcomes.iter().enumerate() {
            if i != 3 {
                assert_eq!(as_usize(o), Some(i), "chunk {i} must survive chunk 3's panic");
            }
        }
    }

    #[test]
    fn fired_token_stops_at_chunk_boundary() {
        let token = CancelToken::new();
        token.cancel();
        let opts = ExecOptions { cancel: Some(token), ..ExecOptions::default() };
        let r = run_chunk_tasks("t", 8, payload, 4, &opts);
        assert!(r.outcomes.iter().all(|o| o.is_failed()), "no chunk may run after cancel");
    }

    #[test]
    fn waves_deliver_contiguous_bases() {
        let mut bases = Vec::new();
        let stats = run_chunk_waves(
            "t",
            10,
            payload,
            2,
            2,
            &ExecOptions::default(),
            |base, outcomes| {
                bases.push((base, outcomes.len()));
                true
            },
        );
        assert_eq!(bases, vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(stats, WaveStats { waves: 3, tasks_delivered: 10, stopped_early: false });
    }

    #[test]
    fn wave_fold_can_stop_early() {
        let stats =
            run_chunk_waves("t", 100, payload, 2, 1, &ExecOptions::default(), |_, _| false);
        assert!(stats.stopped_early);
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.tasks_delivered, 2);
    }
}
