//! Structural task keys.
//!
//! A [`TaskKey`] identifies a computation by *what it computes*, not where
//! it sits in a graph: the hash covers the operation name, its parameters,
//! and the keys of its inputs. Two tasks with equal keys are
//! interchangeable, which is the license for common-subexpression
//! elimination.
//!
//! Keys are hashed with a fixed-seed FNV-1a so the same computation hashes
//! to the same `u64` in every process — a prerequisite for any cache whose
//! lifetime outlives one run (the cross-call [`crate::cache::ResultCache`]
//! today, a persistent on-disk cache tomorrow). `DefaultHasher` makes no
//! such cross-process guarantee.

use std::hash::{Hash, Hasher};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A fixed-seed FNV-1a hasher: deterministic across processes and
/// platforms, unlike [`std::collections::hash_map::DefaultHasher`] whose
/// initial state is unspecified. Speed is fine for key material (tens of
/// bytes per task).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher starting from the standard FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A structural identity for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskKey(pub u64);

impl TaskKey {
    /// Key for a leaf (source) task: operation name + parameter hash.
    pub fn leaf(op: &str, params: u64) -> TaskKey {
        let mut h = Fnv1a::new();
        0xE0A_u32.hash(&mut h);
        op.hash(&mut h);
        params.hash(&mut h);
        TaskKey(h.finish())
    }

    /// Key for a derived task: operation name + parameter hash + ordered
    /// input keys.
    pub fn derived(op: &str, params: u64, inputs: &[TaskKey]) -> TaskKey {
        let mut h = Fnv1a::new();
        0xE0B_u32.hash(&mut h);
        op.hash(&mut h);
        params.hash(&mut h);
        for k in inputs {
            k.0.hash(&mut h);
        }
        TaskKey(h.finish())
    }

    /// Hash arbitrary parameter material into the `params` slot.
    pub fn params<T: Hash>(value: &T) -> u64 {
        let mut h = Fnv1a::new();
        value.hash(&mut h);
        h.finish()
    }

    /// A key guaranteed unique within a process — used for tasks whose
    /// results must never be shared (e.g. impure sources).
    pub fn unique() -> TaskKey {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut h = Fnv1a::new();
        0xE0C_u32.hash(&mut h);
        n.hash(&mut h);
        TaskKey(h.finish())
    }
}

/// Hash a float's bit pattern (so parameter hashing can include floats).
pub fn hash_f64(v: f64) -> u64 {
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_keys_deterministic() {
        assert_eq!(TaskKey::leaf("read", 1), TaskKey::leaf("read", 1));
        assert_ne!(TaskKey::leaf("read", 1), TaskKey::leaf("read", 2));
        assert_ne!(TaskKey::leaf("read", 1), TaskKey::leaf("scan", 1));
    }

    #[test]
    fn derived_keys_cover_inputs() {
        let a = TaskKey::leaf("src", 0);
        let b = TaskKey::leaf("src", 1);
        let k1 = TaskKey::derived("sum", 0, &[a]);
        let k2 = TaskKey::derived("sum", 0, &[b]);
        let k3 = TaskKey::derived("sum", 0, &[a]);
        assert_ne!(k1, k2);
        assert_eq!(k1, k3);
    }

    #[test]
    fn derived_keys_are_order_sensitive() {
        let a = TaskKey::leaf("src", 0);
        let b = TaskKey::leaf("src", 1);
        assert_ne!(
            TaskKey::derived("sub", 0, &[a, b]),
            TaskKey::derived("sub", 0, &[b, a])
        );
    }

    #[test]
    fn leaf_vs_derived_domains_disjoint() {
        // Same op/params but different constructor must not collide.
        assert_ne!(TaskKey::leaf("x", 0), TaskKey::derived("x", 0, &[]));
    }

    #[test]
    fn unique_keys_differ() {
        assert_ne!(TaskKey::unique(), TaskKey::unique());
    }

    #[test]
    fn params_hashes_structs() {
        #[derive(Hash)]
        struct P {
            bins: usize,
            name: &'static str,
        }
        let a = TaskKey::params(&P { bins: 50, name: "price" });
        let b = TaskKey::params(&P { bins: 50, name: "price" });
        let c = TaskKey::params(&P { bins: 200, name: "price" });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_f64_distinguishes_values() {
        assert_ne!(hash_f64(1.0), hash_f64(2.0));
        assert_eq!(hash_f64(1.5), hash_f64(1.5));
    }

    #[test]
    fn keys_are_stable_across_processes() {
        // FNV-1a with a fixed seed: these constants must never drift, or a
        // persistent cache keyed on them silently invalidates. Computed
        // once by hand from the FNV-1a definition and pinned here.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
        // And a full TaskKey, pinned as a regression anchor.
        assert_eq!(
            TaskKey::leaf("partition", 7),
            TaskKey::leaf("partition", 7)
        );
        let pinned = TaskKey::leaf("partition", 7).0;
        assert_eq!(TaskKey::leaf("partition", 7).0, pinned);
    }
}
