//! Map / tree-reduce combinators over partitioned data.
//!
//! These are the building blocks `eda-core` uses to phrase every statistic
//! as "map a mergeable kernel over partitions, tree-reduce the partials" —
//! the Dask-phase of the paper's two-phase pipeline. The combinators only
//! *build* graph nodes; nothing executes until an engine runs the graph.

use std::sync::Arc;

use eda_dataframe::DataFrame;

use crate::graph::{NodeId, Payload, TaskGraph};
use crate::partition::payload_frame;

/// Add one task per partition node applying `f` to the partition's frame.
///
/// `op` names the operation and `params` distinguishes configurations
/// (both feed the structural key, so identical maps dedupe).
pub fn map_partitions<F>(
    graph: &mut TaskGraph,
    op: &str,
    params: u64,
    partitions: &[NodeId],
    f: F,
) -> Vec<NodeId>
where
    F: Fn(&DataFrame) -> Payload + Send + Sync + 'static,
{
    let f = Arc::new(f);
    partitions
        .iter()
        .map(|&p| {
            let f = Arc::clone(&f);
            graph.op(op, params, vec![p], move |inputs| {
                let frame = payload_frame(&inputs[0]);
                f(&frame)
            })
        })
        .collect()
}

/// Reduce `nodes` pairwise with `combine` until one node remains.
///
/// The combine tasks form a balanced binary tree, so a parallel executor
/// gets log-depth critical paths. A single input is returned unchanged;
/// empty input panics (callers always have ≥1 partition).
pub fn tree_reduce<F>(
    graph: &mut TaskGraph,
    op: &str,
    params: u64,
    nodes: &[NodeId],
    combine: F,
) -> NodeId
where
    F: Fn(&Payload, &Payload) -> Payload + Send + Sync + 'static,
{
    assert!(!nodes.is_empty(), "tree_reduce of zero nodes");
    let combine = Arc::new(combine);
    let mut layer: Vec<NodeId> = nodes.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let c = Arc::clone(&combine);
                next.push(graph.op(op, params, vec![pair[0], pair[1]], move |inputs| {
                    c(&inputs[0], &inputs[1])
                }));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Map partitions and tree-reduce in one call — the common shape of every
/// mergeable statistic.
pub fn map_reduce<M, C>(
    graph: &mut TaskGraph,
    op: &str,
    params: u64,
    partitions: &[NodeId],
    map: M,
    combine: C,
) -> NodeId
where
    M: Fn(&DataFrame) -> Payload + Send + Sync + 'static,
    C: Fn(&Payload, &Payload) -> Payload + Send + Sync + 'static,
{
    let mapped = map_partitions(graph, op, params, partitions, map);
    tree_reduce(graph, &format!("{op}/reduce"), params, &mapped, combine)
}

/// A finishing task over already-reduced (small) inputs — the "Pandas
/// phase" boundary: everything upstream is partition-parallel, the closure
/// here sees small aggregates only.
pub fn finish<F>(
    graph: &mut TaskGraph,
    op: &str,
    params: u64,
    deps: Vec<NodeId>,
    f: F,
) -> NodeId
where
    F: Fn(&[Payload]) -> Payload + Send + Sync + 'static,
{
    graph.op(op, params, deps, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionedFrame;
    use crate::scheduler::run_single_thread;
    use eda_dataframe::Column;

    fn frame(n: usize) -> DataFrame {
        DataFrame::new(vec![(
            "x".into(),
            Column::from_i64((0..n as i64).collect()),
        )])
        .unwrap()
    }

    fn sum_payload(p: &Payload) -> i64 {
        *p.downcast_ref::<i64>().expect("i64")
    }

    fn build_sum(
        graph: &mut TaskGraph,
        pf: &PartitionedFrame,
        params: u64,
    ) -> NodeId {
        let sources = pf.source_nodes(graph);
        map_reduce(
            graph,
            "sum_x",
            params,
            &sources,
            |df| {
                let s: i64 = df
                    .column("x")
                    .unwrap()
                    .numeric_nonnull()
                    .unwrap()
                    .iter()
                    .map(|&v| v as i64)
                    .sum();
                Arc::new(s)
            },
            |a, b| Arc::new(sum_payload(a) + sum_payload(b)),
        )
    }

    #[test]
    fn map_reduce_sums_partitions() {
        let pf = PartitionedFrame::from_frame(&frame(100), 7);
        let mut g = TaskGraph::new();
        let out = build_sum(&mut g, &pf, 0);
        let r = run_single_thread(&g, &[out]);
        assert_eq!(sum_payload(&r.outputs()[0]), (0..100).sum::<i64>());
    }

    #[test]
    fn identical_map_reduce_dedupes_completely() {
        let pf = PartitionedFrame::from_frame(&frame(50), 4);
        let mut g = TaskGraph::new();
        let a = build_sum(&mut g, &pf, 0);
        let before = g.len();
        let b = build_sum(&mut g, &pf, 0);
        assert_eq!(a, b);
        assert_eq!(g.len(), before, "second build must add zero nodes");
    }

    #[test]
    fn different_params_do_not_dedupe() {
        let pf = PartitionedFrame::from_frame(&frame(50), 4);
        let mut g = TaskGraph::new();
        let a = build_sum(&mut g, &pf, 0);
        let b = build_sum(&mut g, &pf, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn tree_reduce_single_node_passthrough() {
        let pf = PartitionedFrame::from_frame(&frame(10), 1);
        let mut g = TaskGraph::new();
        let out = build_sum(&mut g, &pf, 0);
        let r = run_single_thread(&g, &[out]);
        assert_eq!(sum_payload(&r.outputs()[0]), 45);
    }

    #[test]
    fn tree_reduce_odd_number_of_nodes() {
        let pf = PartitionedFrame::from_frame(&frame(9), 3);
        let mut g = TaskGraph::new();
        let out = build_sum(&mut g, &pf, 0);
        let r = run_single_thread(&g, &[out]);
        assert_eq!(sum_payload(&r.outputs()[0]), 36);
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn tree_reduce_empty_panics() {
        let mut g = TaskGraph::new();
        tree_reduce(&mut g, "x", 0, &[], |a, _| Arc::clone(a));
    }

    #[test]
    fn finish_runs_on_reduced_data() {
        let pf = PartitionedFrame::from_frame(&frame(20), 4);
        let mut g = TaskGraph::new();
        let sum = build_sum(&mut g, &pf, 0);
        let doubled = finish(&mut g, "double", 0, vec![sum], |d| {
            Arc::new(sum_payload(&d[0]) * 2)
        });
        let r = run_single_thread(&g, &[doubled]);
        assert_eq!(sum_payload(&r.outputs()[0]), 2 * (0..20).sum::<i64>());
    }
}
