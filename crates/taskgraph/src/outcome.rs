//! Per-task execution outcomes.
//!
//! Fault tolerance starts here: instead of a bare [`Payload`], every
//! executed node yields a [`TaskOutcome`] — either a payload or a
//! [`TaskError`] describing a panic, a blown deadline, or a skip forced
//! by an upstream failure. Schedulers never poison a whole run because
//! one kernel misbehaved; callers decide per output how to degrade.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::govern::CancelReason;
use crate::graph::{NodeId, Payload};

/// Why a task produced no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The task body panicked; the payload message is captured.
    Panicked(String),
    /// The task finished but exceeded its wall-clock budget.
    TimedOut {
        /// The configured per-task budget.
        budget: Duration,
        /// How long the task actually took.
        elapsed: Duration,
    },
    /// The task never ran because an upstream dependency failed.
    Skipped {
        /// The originally failing task (transitive root, not the
        /// immediate dependency).
        root_cause: NodeId,
        /// Name of the originally failing task.
        root_name: String,
        /// Description of the root failure (e.g. `panicked: boom`), so
        /// diagnostics built from a skip still name the actual reason.
        root_failure: String,
    },
    /// The run was cancelled ([`crate::govern::CancelToken`]) before or
    /// while this task executed; any partial result was discarded.
    Cancelled(CancelReason),
    /// Charging this task's output against the run's memory budget
    /// ([`crate::govern::MemoryGauge`]) was refused; the payload was
    /// dropped and the section degrades instead of the process OOMing.
    BudgetExceeded {
        /// The run's byte budget.
        budget: usize,
        /// Bytes already charged by earlier tasks.
        used: usize,
        /// The refused charge (this task's estimated payload bytes).
        requested: usize,
    },
    /// A scheduler invariant was violated (a dependency result missing
    /// at dispatch, a closed work queue, a worker lost mid-run). The
    /// run degrades to a partial result instead of panicking; the
    /// message names the broken invariant.
    Internal(String),
}

impl TaskFailure {
    /// Whether this failure is worth retrying ([`crate::govern::RetryPolicy`]).
    ///
    /// The contract is message-based: a panic whose payload mentions
    /// `transient` (the marker `inject::FaultMode::TransientPanic` and
    /// flaky-I/O kernels embed) is transient; everything else —
    /// deterministic panics, deadline/budget violations, cancellations,
    /// skips — is permanent and retrying would only repeat the failure.
    pub fn is_transient(&self) -> bool {
        matches!(self, TaskFailure::Panicked(msg) if msg.contains("transient"))
    }
}

/// A failed task: which node, its name, what went wrong, and how long it
/// took to go wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The failing node.
    pub task: NodeId,
    /// The failing node's name (op label).
    pub name: String,
    /// The failure itself.
    pub failure: TaskFailure,
    /// Wall-clock time spent before the failure was recorded. Skips
    /// inherit the root failure's elapsed time.
    pub elapsed: Duration,
}

impl TaskError {
    /// The node that originally failed: for `Skipped` errors the
    /// transitive root cause, otherwise this task itself.
    pub fn root_cause(&self) -> (NodeId, &str) {
        match &self.failure {
            TaskFailure::Skipped { root_cause, root_name, .. } => (*root_cause, root_name),
            _ => (self.task, &self.name),
        }
    }

    /// What went wrong at the root: a direct failure describes itself,
    /// a skip repeats the root failure's description.
    pub fn root_description(&self) -> String {
        match &self.failure {
            TaskFailure::Panicked(msg) => format!("panicked: {msg}"),
            TaskFailure::TimedOut { budget, elapsed } => {
                format!("exceeded its {budget:?} deadline (took {elapsed:?})")
            }
            TaskFailure::Skipped { root_failure, .. } => root_failure.clone(),
            TaskFailure::Cancelled(reason) => format!("cancelled: {reason}"),
            TaskFailure::BudgetExceeded { budget, used, requested } => format!(
                "exceeded the run memory budget ({requested} requested, {used} of {budget} bytes used)"
            ),
            TaskFailure::Internal(msg) => format!("scheduler invariant violated: {msg}"),
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            TaskFailure::Panicked(msg) => {
                write!(f, "task '{}' (node {}) panicked: {}", self.name, self.task, msg)
            }
            TaskFailure::TimedOut { budget, elapsed } => write!(
                f,
                "task '{}' (node {}) exceeded its {:?} deadline (took {:?})",
                self.name, self.task, budget, elapsed
            ),
            TaskFailure::Skipped { root_cause, root_name, root_failure } => write!(
                f,
                "task '{}' (node {}) skipped: upstream task '{}' (node {}) {}",
                self.name, self.task, root_name, root_cause, root_failure
            ),
            TaskFailure::Cancelled(reason) => write!(
                f,
                "task '{}' (node {}) cancelled: {}",
                self.name, self.task, reason
            ),
            TaskFailure::BudgetExceeded { budget, used, requested } => write!(
                f,
                "task '{}' (node {}) exceeded the run memory budget: charge of {} bytes refused ({} of {} bytes already used)",
                self.name, self.task, requested, used, budget
            ),
            TaskFailure::Internal(msg) => write!(
                f,
                "task '{}' (node {}) failed on a scheduler invariant: {}",
                self.name, self.task, msg
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// Outcome of one task: a payload, or the error that prevented one.
#[derive(Clone)]
pub enum TaskOutcome {
    /// The task completed and produced a payload.
    Ok(Payload),
    /// The task failed, timed out, or was skipped.
    Failed(Arc<TaskError>),
}

impl TaskOutcome {
    /// `true` when a payload was produced.
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskOutcome::Ok(_))
    }

    /// `true` when the task failed, timed out, or was skipped.
    pub fn is_failed(&self) -> bool {
        !self.is_ok()
    }

    /// Borrow the payload, if any.
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            TaskOutcome::Ok(p) => Some(p),
            TaskOutcome::Failed(_) => None,
        }
    }

    /// Borrow the error, if any.
    pub fn error(&self) -> Option<&Arc<TaskError>> {
        match self {
            TaskOutcome::Ok(_) => None,
            TaskOutcome::Failed(e) => Some(e),
        }
    }

    /// Extract the payload, panicking with the task error otherwise.
    /// The infallible-caller convenience; fault-aware callers should
    /// match instead.
    pub fn unwrap(self) -> Payload {
        match self {
            TaskOutcome::Ok(p) => p,
            TaskOutcome::Failed(e) => panic!("task outcome unwrapped on failure: {e}"),
        }
    }
}

impl fmt::Debug for TaskOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskOutcome::Ok(_) => f.write_str("TaskOutcome::Ok(..)"),
            TaskOutcome::Failed(e) => f.debug_tuple("TaskOutcome::Failed").field(e).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(failure: TaskFailure) -> TaskError {
        TaskError { task: 3, name: "moments:price".into(), failure, elapsed: Duration::ZERO }
    }

    #[test]
    fn display_panicked() {
        let e = err(TaskFailure::Panicked("boom".into()));
        assert_eq!(e.to_string(), "task 'moments:price' (node 3) panicked: boom");
    }

    #[test]
    fn display_timed_out_mentions_budget() {
        let e = err(TaskFailure::TimedOut {
            budget: Duration::from_millis(5),
            elapsed: Duration::from_millis(9),
        });
        let s = e.to_string();
        assert!(s.contains("5ms"), "{s}");
        assert!(s.contains("deadline"), "{s}");
    }

    #[test]
    fn display_skipped_names_root() {
        let e = err(TaskFailure::Skipped {
            root_cause: 1,
            root_name: "hist".into(),
            root_failure: "panicked: boom".into(),
        });
        let s = e.to_string();
        assert!(s.contains("skipped") && s.contains("hist") && s.contains("node 1"), "{s}");
        assert!(s.contains("panicked: boom"), "{s}");
    }

    #[test]
    fn root_cause_follows_skip() {
        let skipped = err(TaskFailure::Skipped {
            root_cause: 1,
            root_name: "hist".into(),
            root_failure: "panicked: x".into(),
        });
        assert_eq!(skipped.root_cause(), (1, "hist"));
        let direct = err(TaskFailure::Panicked("x".into()));
        assert_eq!(direct.root_cause(), (3, "moments:price"));
    }

    #[test]
    fn display_cancelled_names_reason() {
        let e = err(TaskFailure::Cancelled(CancelReason::DeadlineExceeded));
        let s = e.to_string();
        assert!(s.contains("cancelled") && s.contains("run deadline exceeded"), "{s}");
    }

    #[test]
    fn display_budget_exceeded_mentions_memory_budget() {
        let e = err(TaskFailure::BudgetExceeded { budget: 100, used: 90, requested: 20 });
        let s = e.to_string();
        assert!(s.contains("memory budget") && s.contains("20"), "{s}");
        assert!(e.root_description().contains("memory budget"), "{}", e.root_description());
    }

    #[test]
    fn transient_classification_is_message_based() {
        assert!(TaskFailure::Panicked("injected fault: transient kernel failure".into())
            .is_transient());
        assert!(!TaskFailure::Panicked("boom".into()).is_transient());
        assert!(!TaskFailure::Cancelled(CancelReason::Requested).is_transient());
        assert!(!TaskFailure::BudgetExceeded { budget: 1, used: 0, requested: 2 }.is_transient());
        assert!(!TaskFailure::TimedOut {
            budget: Duration::from_millis(1),
            elapsed: Duration::from_millis(2),
        }
        .is_transient());
    }

    #[test]
    fn outcome_accessors() {
        let ok = TaskOutcome::Ok(Arc::new(1i64));
        assert!(ok.is_ok() && !ok.is_failed());
        assert!(ok.payload().is_some() && ok.error().is_none());
        let failed = TaskOutcome::Failed(Arc::new(err(TaskFailure::Panicked("p".into()))));
        assert!(failed.is_failed() && failed.payload().is_none());
    }

    #[test]
    #[should_panic(expected = "panicked: p")]
    fn unwrap_failed_panics_with_context() {
        TaskOutcome::Failed(Arc::new(err(TaskFailure::Panicked("p".into())))).unwrap();
    }
}
