//! Property-based tests on the statistical kernels: merge-equivalence of
//! every mergeable sketch, agreement of fast vs naive algorithms, and
//! range/invariance properties of the coefficients.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use eda_stats::corr::{kendall_tau, kendall_tau_naive, pearson, spearman, PearsonPartial};
use eda_stats::corr::{CorrMatrix, CorrMethod};
use eda_stats::freq::FreqTable;
use eda_stats::histogram::Histogram;
use eda_stats::hypothesis::ks_distance;
use eda_stats::moments::Moments;
use eda_stats::quantile::{quantile_sorted, quantiles, quantiles_nth, sorted_values, BoxPlot};
use eda_stats::rank::ranks;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Bounded magnitude keeps the merge-equality tolerances honest.
    -1.0e6..1.0e6f64
}

fn data(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), min_len..200)
}

proptest! {
    #[test]
    fn moments_merge_equals_single_pass(values in data(0), split in 0.0f64..1.0) {
        let cut = ((values.len() as f64) * split) as usize;
        let whole = Moments::from_slice(&values);
        let mut merged = Moments::from_slice(&values[..cut]);
        merged.merge(&Moments::from_slice(&values[cut..]));
        prop_assert_eq!(merged.count, whole.count);
        if whole.count > 0 {
            prop_assert!((merged.mean - whole.mean).abs() <= 1e-6 * (1.0 + whole.mean.abs()));
            prop_assert!((merged.m2 - whole.m2).abs() <= 1e-5 * (1.0 + whole.m2.abs()));
            prop_assert_eq!(merged.min, whole.min);
            prop_assert_eq!(merged.max, whole.max);
        }
    }

    #[test]
    fn variance_is_nonnegative(values in data(2)) {
        let m = Moments::from_slice(&values);
        prop_assert!(m.variance().unwrap() >= -1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in data(1)) {
        let sorted = sorted_values(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = quantile_sorted(&sorted, q).unwrap();
            prop_assert!(v >= prev);
            prop_assert!(v >= sorted[0] && v <= sorted[sorted.len() - 1]);
            prev = v;
        }
    }

    #[test]
    fn boxplot_structure(values in data(4)) {
        let bp = BoxPlot::from_values(&values, 100).unwrap();
        prop_assert!(bp.q1 <= bp.median && bp.median <= bp.q3);
        prop_assert!(bp.whisker_low <= bp.whisker_high);
        // Whiskers are data points within [min, max]. (Note: an
        // interpolated quartile can exceed the whisker when the data is
        // dominated by repeats — e.g. [0,0,0,8e4] has q3 = 2e4 but
        // whisker_high = 0 — so whiskers are NOT ordered against q1/q3.)
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(bp.whisker_low >= min && bp.whisker_high <= max);
        // Outliers live strictly outside the whisker interval.
        for &o in &bp.outliers {
            prop_assert!(o < bp.whisker_low || o > bp.whisker_high);
        }
    }

    #[test]
    fn histogram_conserves_count(values in data(0), bins in 1usize..64) {
        let h = Histogram::from_values(&values, bins);
        let finite = values.iter().filter(|v| v.is_finite()).count() as u64;
        prop_assert_eq!(h.total() + h.underflow + h.overflow, finite);
    }

    #[test]
    fn histogram_merge_equals_single_pass(values in data(0), bins in 1usize..32, split in 0.0f64..1.0) {
        let cut = ((values.len() as f64) * split) as usize;
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut whole = Histogram::new(lo, hi, bins);
        whole.extend(values.iter().copied());
        let mut a = Histogram::new(lo, hi, bins);
        a.extend(values[..cut].iter().copied());
        let mut b = Histogram::new(lo, hi, bins);
        b.extend(values[cut..].iter().copied());
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn pearson_in_range_and_symmetric(x in data(2), y in data(2)) {
        let n = x.len().min(y.len());
        if let Some(r) = pearson(&x[..n], &y[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&y[..n], &x[..n]).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_partial_merge(x in data(2), y in data(2), split in 0.0f64..1.0) {
        let n = x.len().min(y.len());
        let cut = ((n as f64) * split) as usize;
        let mut whole = PearsonPartial::new();
        for i in 0..n { whole.push(x[i], y[i]); }
        let mut a = PearsonPartial::new();
        for i in 0..cut { a.push(x[i], y[i]); }
        let mut b = PearsonPartial::new();
        for i in cut..n { b.push(x[i], y[i]); }
        a.merge(&b);
        match (whole.finish(), a.finish()) {
            (Some(rw), Some(rm)) => prop_assert!((rw - rm).abs() < 1e-6),
            (None, None) => {}
            other => prop_assert!(false, "merge changed definedness: {other:?}"),
        }
    }

    #[test]
    fn pearson_invariant_under_affine_maps(x in data(3), y in data(3), a in 0.1f64..10.0, b in -100.0f64..100.0) {
        let n = x.len().min(y.len());
        let xs = &x[..n];
        let ys = &y[..n];
        let mapped: Vec<f64> = xs.iter().map(|v| a * v + b).collect();
        if let (Some(r1), Some(r2)) = (pearson(xs, ys), pearson(&mapped, ys)) {
            prop_assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
        } // either-None cases: affine map can change degeneracy at fp limits
    }

    #[test]
    fn kendall_fast_matches_naive(x in prop::collection::vec(-20i32..20, 2..60), y in prop::collection::vec(-20i32..20, 2..60)) {
        let n = x.len().min(y.len());
        let xs: Vec<f64> = x[..n].iter().map(|&v| v as f64).collect();
        let ys: Vec<f64> = y[..n].iter().map(|&v| v as f64).collect();
        match (kendall_tau(&xs, &ys), kendall_tau_naive(&xs, &ys)) {
            (Some(f), Some(s)) => prop_assert!((f - s).abs() < 1e-9, "{f} vs {s}"),
            (None, None) => {}
            other => prop_assert!(false, "definedness mismatch: {other:?}"),
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_map(x in data(3), y in data(3)) {
        let n = x.len().min(y.len());
        let xs = &x[..n];
        let ys = &y[..n];
        // exp is strictly monotone: Spearman must not change.
        let mapped: Vec<f64> = xs.iter().map(|v| (v / 1.0e6).exp()).collect();
        if let (Some(r1), Some(r2)) = (spearman(xs, ys), spearman(&mapped, ys)) {
            prop_assert!((r1 - r2).abs() < 1e-9);
        } // exp can collapse distinct tiny values at fp precision
    }

    #[test]
    fn ranks_are_a_permutation_sum(values in data(1)) {
        let r = ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn freq_merge_equals_single_pass(labels in prop::collection::vec(prop::option::of(0u8..12), 0..200), split in 0.0f64..1.0) {
        let strs: Vec<Option<String>> = labels.iter().map(|l| l.map(|v| format!("c{v}"))).collect();
        let cut = ((strs.len() as f64) * split) as usize;
        let mut whole = FreqTable::new();
        for s in &strs { whole.push(s.as_deref()); }
        let mut a = FreqTable::new();
        for s in &strs[..cut] { a.push(s.as_deref()); }
        let mut b = FreqTable::new();
        for s in &strs[cut..] { b.push(s.as_deref()); }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn ks_distance_in_unit_interval(a in data(1), b in data(1)) {
        let d = ks_distance(&a, &b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        // Identity of indiscernibles (one direction).
        let self_d = ks_distance(&a, &a).unwrap();
        prop_assert!(self_d.abs() < 1e-12);
    }

    #[test]
    fn quantiles_nth_agrees_with_full_sort(values in data(0), qs in prop::collection::vec(0.0f64..=1.0, 1..8)) {
        prop_assert_eq!(quantiles_nth(&values, &qs), quantiles(&values, &qs));
    }

    #[test]
    fn spearman_matrix_rank_once_equals_per_pair(
        cols in prop::collection::vec(data(3), 2..5),
    ) {
        // Equal-length NaN-free columns: the matrix's rank-once fast path
        // must agree with re-ranking every pair from scratch.
        let n = cols.iter().map(Vec::len).min().unwrap();
        let named: Vec<(String, Vec<f64>)> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| (format!("c{i}"), c[..n].to_vec()))
            .collect();
        let m = CorrMatrix::compute(&named, CorrMethod::Spearman);
        for i in 0..named.len() {
            for j in (i + 1)..named.len() {
                let per_pair = spearman(&named[i].1, &named[j].1);
                let fast = m.get(i, j);
                match (fast, per_pair) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn spearman_matrix_with_nulls_matches_per_pair(
        cols in prop::collection::vec(prop::collection::vec(prop::option::of(finite_f64()), 4..60), 2..4),
    ) {
        // Columns with NaN-marked nulls take the pairwise-complete
        // fallback; cells must equal the direct per-pair computation.
        let n = cols.iter().map(Vec::len).min().unwrap();
        let named: Vec<(String, Vec<f64>)> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (format!("c{i}"), c[..n].iter().map(|v| v.unwrap_or(f64::NAN)).collect())
            })
            .collect();
        let m = CorrMatrix::compute(&named, CorrMethod::Spearman);
        for i in 0..named.len() {
            for j in (i + 1)..named.len() {
                prop_assert_eq!(m.get(i, j), spearman(&named[i].1, &named[j].1));
            }
        }
    }
}
