//! Property tests pinning the SIMD/scalar kernel contract: the vector
//! shape (with or without AVX2 underneath — the intrinsic/fallback pair
//! is bit-identity-tested inside `eda_stats::vector`) and the scalar
//! per-value loops agree on every integer-exact statistic for arbitrary
//! data, including NaN, infinities, signed zeros, all-null slices, and
//! single-distinct columns.

// Test code asserts freely; the package-level unwrap/expect deny
// targets shipped code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use eda_stats::corr::PearsonPartial;
use eda_stats::histogram::Histogram;
use eda_stats::moments::Moments;
use eda_stats::vector::{count_joint, set_force_scalar};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-wide scalar override so
/// parallel test threads never observe each other's toggles.
static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

/// Re-enables the vector shape even when a failing case unwinds.
struct Reset;

impl Drop for Reset {
    fn drop(&mut self) {
        set_force_scalar(false);
    }
}

/// Evaluate `f` once with the scalar shape forced and once with the
/// compiled-in default, returning `(scalar, vector)`.
fn both_shapes<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    set_force_scalar(true);
    let scalar = f();
    set_force_scalar(false);
    let vector = f();
    (scalar, vector)
}

/// Finite values mixed with every special class the kernels classify.
fn any_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e6..1.0e6f64,
        1 => Just(f64::NAN),
        1 => prop_oneof![Just(f64::INFINITY), Just(f64::NEG_INFINITY), Just(0.0), Just(-0.0)],
    ]
}

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any_value(), 0..300)
}

proptest! {
    #[test]
    fn moments_shapes_agree(vals in values()) {
        let (s, v) = both_shapes(|| Moments::from_slice(&vals));
        // Counters, extrema, and the valid count are exact integers /
        // exact comparisons in both shapes — they must match bitwise.
        prop_assert_eq!(s.count, v.count);
        prop_assert_eq!(s.zeros, v.zeros);
        prop_assert_eq!(s.negatives, v.negatives);
        prop_assert_eq!(s.infinites, v.infinites);
        prop_assert_eq!(s.nans, v.nans);
        // Power sums differ only in association order; extrema are exact.
        if s.count > 0 {
            prop_assert_eq!(s.min.to_bits(), v.min.to_bits());
            prop_assert_eq!(s.max.to_bits(), v.max.to_bits());
            prop_assert!((s.mean - v.mean).abs() <= 1e-9 * (1.0 + s.mean.abs()));
            prop_assert!((s.m2 - v.m2).abs() <= 1e-6 * (1.0 + s.m2.abs()));
        }
    }

    #[test]
    fn moments_all_null_and_single_distinct(x in -1.0e6..1.0e6f64, n in 1usize..200) {
        let nulls = vec![f64::NAN; n];
        let (s, v) = both_shapes(|| Moments::from_slice(&nulls));
        prop_assert_eq!(s.count, 0);
        prop_assert_eq!(v.count, 0);
        prop_assert_eq!(s.nans, n as u64);
        prop_assert_eq!(v.nans, n as u64);

        let constant = vec![x; n];
        let (s, v) = both_shapes(|| Moments::from_slice(&constant));
        prop_assert_eq!(s.count, v.count);
        prop_assert_eq!(s.min.to_bits(), v.min.to_bits());
        prop_assert_eq!(s.max.to_bits(), v.max.to_bits());
        prop_assert_eq!(s.mean.to_bits(), v.mean.to_bits());
        prop_assert_eq!(s.m2.to_bits(), v.m2.to_bits());
    }

    #[test]
    fn histogram_shapes_partition_identically(vals in values(), bins in 1usize..48) {
        let (s, v) = both_shapes(|| Histogram::from_values(&vals, bins));
        prop_assert_eq!(s.min.to_bits(), v.min.to_bits());
        prop_assert_eq!(s.max.to_bits(), v.max.to_bits());
        // Out-of-range and non-finite classification is exact in both
        // shapes; only interior boundary attribution may differ (the
        // vector shape multiplies by 1/width instead of dividing).
        prop_assert_eq!(s.underflow, v.underflow);
        prop_assert_eq!(s.overflow, v.overflow);
        prop_assert_eq!(s.total(), v.total());
        prop_assert_eq!(
            s.counts.iter().sum::<u64>(),
            v.counts.iter().sum::<u64>()
        );
    }

    #[test]
    fn histogram_power_of_two_width_bitwise(
        raw in prop::collection::vec(-512i32..512, 0..300),
        bins_log2 in 0u32..5,
    ) {
        // On power-of-two bin widths `* (1/w)` and `/ w` are the same
        // operation, so the shapes must agree bin-for-bin.
        let vals: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        let bins = 1usize << bins_log2;
        let (s, v) = both_shapes(|| {
            let mut h = Histogram::new(-256.0, 256.0, bins);
            h.fill_slice(&vals);
            h
        });
        prop_assert_eq!(&s.counts, &v.counts);
        prop_assert_eq!(s.underflow, v.underflow);
        prop_assert_eq!(s.overflow, v.overflow);
    }

    #[test]
    fn pearson_shapes_agree(
        // Finite values plus NaN: the NaN pair-mask is exact in both
        // shapes, but an infinity turns the second moments into NaN by
        // different (shape-dependent) propagation paths.
        x in prop::collection::vec(
            prop_oneof![9 => -1.0e6..1.0e6f64, 1 => Just(f64::NAN)], 0..200),
        y in prop::collection::vec(
            prop_oneof![9 => -1.0e6..1.0e6f64, 1 => Just(f64::NAN)], 0..200),
    ) {
        let (s, v) = both_shapes(|| {
            let mut p = PearsonPartial::new();
            p.push_slices(&x, &y);
            p
        });
        prop_assert_eq!(s.n, v.n);
        let (sc, vc) = (s.finish(), v.finish());
        prop_assert_eq!(sc.is_some(), vc.is_some());
        if let (Some(a), Some(b)) = (sc, vc) {
            prop_assert!((a - b).abs() <= 1e-6);
        }
    }

    #[test]
    fn count_joint_matches_naive_zip(
        a in prop::collection::vec(any::<bool>(), 0..4000),
        b in prop::collection::vec(any::<bool>(), 0..4000),
    ) {
        let naive = a.iter().zip(&b).fold((0u64, 0u64, 0u64), |(na, nb, nab), (&x, &y)| {
            (na + u64::from(x), nb + u64::from(y), nab + u64::from(x && y))
        });
        prop_assert_eq!(count_joint(&a, &b), naive);
    }
}
