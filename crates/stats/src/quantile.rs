//! Exact quantiles and box-plot statistics.
//!
//! Quantiles use the "linear interpolation between closest ranks" method
//! (type 7 in Hyndman–Fan taxonomy, the NumPy/Pandas default), so results
//! line up with what the paper's Python implementation reports.

/// Quantile `q ∈ [0, 1]` of data that is **already sorted ascending**.
///
/// Returns `None` for empty data. NaNs must be filtered out beforehand.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sort a copy of `values` (NaNs dropped) ascending.
pub fn sorted_values(values: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_unstable_by(f64::total_cmp);
    v
}

/// Evaluate several quantiles over unsorted data in one sort.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    let sorted = sorted_values(values);
    qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
}

/// Evaluate a *small* set of quantiles without sorting: each rank the
/// type-7 interpolation touches is placed by `select_nth_unstable_by`
/// over the not-yet-partitioned suffix — O(n·k) for k quantiles instead
/// of O(n log n), a win when k is the handful a five-number summary
/// needs. Results are identical to [`quantiles`].
pub fn quantiles_nth(values: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return vec![None; qs.len()];
    }
    let n = v.len();
    let rank_pair = |q: f64| {
        let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
        (pos.floor() as usize, pos.ceil() as usize, pos)
    };
    let mut ranks: Vec<usize> = Vec::with_capacity(qs.len() * 2);
    for &q in qs {
        let (lo, hi, _) = rank_pair(q);
        ranks.push(lo);
        ranks.push(hi);
    }
    ranks.sort_unstable();
    ranks.dedup();
    // Ascending ranks: once rank r is selected, everything left of it is
    // ≤ v[r], so the next selection only scans the suffix after r.
    let mut start = 0usize;
    for &r in &ranks {
        if start >= n {
            break;
        }
        v[start..].select_nth_unstable_by(r - start, |a, b| a.total_cmp(b));
        start = r + 1;
    }
    qs.iter()
        .map(|&q| {
            let (lo, hi, pos) = rank_pair(q);
            if lo == hi {
                Some(v[lo])
            } else {
                let frac = pos - lo as f64;
                Some(v[lo] * (1.0 - frac) + v[hi] * frac)
            }
        })
        .collect()
}

/// Tukey box-plot statistics with 1.5·IQR whiskers.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Interquartile range (`q3 - q1`).
    pub iqr: f64,
    /// Smallest value ≥ `q1 - 1.5 IQR`.
    pub whisker_low: f64,
    /// Largest value ≤ `q3 + 1.5 IQR`.
    pub whisker_high: f64,
    /// Values outside the whiskers (at most `max_outliers`, order preserved
    /// from sorted data: low side then high side).
    pub outliers: Vec<f64>,
    /// Total count of outliers, even when `outliers` is truncated.
    pub n_outliers: usize,
    /// Number of data points summarized.
    pub n: usize,
}

impl BoxPlot {
    /// Build from raw values. Returns `None` for empty (or all-NaN) input.
    ///
    /// Quartiles come from [`quantiles_nth`] and the whiskers/outliers
    /// from one linear scan, so this never fully sorts the data — only
    /// the (few) outliers get sorted to keep the same output order as
    /// [`Self::from_sorted`].
    pub fn from_values(values: &[f64], max_outliers: usize) -> Option<BoxPlot> {
        let clean: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        if clean.is_empty() {
            return None;
        }
        let qs = quantiles_nth(&clean, &[0.25, 0.5, 0.75]);
        let (q1, median, q3) = (qs[0]?, qs[1]?, qs[2]?);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut whisker_low = f64::INFINITY;
        let mut whisker_high = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &v in &clean {
            if v < lo_fence || v > hi_fence {
                outliers.push(v);
            } else {
                whisker_low = whisker_low.min(v);
                whisker_high = whisker_high.max(v);
            }
        }
        let n_outliers = outliers.len();
        outliers.sort_unstable_by(f64::total_cmp);
        outliers.truncate(max_outliers);
        Some(BoxPlot {
            q1,
            median,
            q3,
            iqr,
            // The fences always bracket at least one value (they bracket
            // the quartiles), so the whiskers are finite here.
            whisker_low,
            whisker_high,
            outliers,
            n_outliers,
            n: clean.len(),
        })
    }

    /// Build from pre-sorted values (ascending, no NaNs).
    pub fn from_sorted(sorted: &[f64], max_outliers: usize) -> Option<BoxPlot> {
        if sorted.is_empty() {
            return None;
        }
        let q1 = quantile_sorted(sorted, 0.25)?;
        let median = quantile_sorted(sorted, 0.5)?;
        let q3 = quantile_sorted(sorted, 0.75)?;
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1]);
        let mut outliers = Vec::new();
        let mut n_outliers = 0;
        for &v in sorted {
            if v < lo_fence || v > hi_fence {
                n_outliers += 1;
                if outliers.len() < max_outliers {
                    outliers.push(v);
                }
            }
        }
        Some(BoxPlot {
            q1,
            median,
            q3,
            iqr,
            whisker_low,
            whisker_high,
            outliers,
            n_outliers,
            n: sorted.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(quantile_sorted(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn quantile_interpolates_linearly() {
        // numpy.quantile([1,2,3,4], .25) == 1.75
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&s, 0.25), Some(1.75));
        assert_eq!(quantile_sorted(&s, 0.5), Some(2.5));
        assert_eq!(quantile_sorted(&s, 0.75), Some(3.25));
    }

    #[test]
    fn quantile_clamps_q() {
        let s = [1.0, 2.0];
        assert_eq!(quantile_sorted(&s, -1.0), Some(1.0));
        assert_eq!(quantile_sorted(&s, 2.0), Some(2.0));
    }

    #[test]
    fn quantiles_handles_unsorted_and_nan() {
        let out = quantiles(&[3.0, f64::NAN, 1.0, 2.0], &[0.0, 0.5, 1.0]);
        assert_eq!(out, vec![Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(quantiles(&[5.0, 1.0, 3.0], &[0.5])[0], Some(3.0));
        assert_eq!(quantiles(&[4.0, 1.0, 3.0, 2.0], &[0.5])[0], Some(2.5));
    }

    #[test]
    fn quantiles_nth_matches_full_sort() {
        // Deterministic pseudo-random data (LCG), including NaNs.
        let mut x = 0x2545_f491u64;
        let vals: Vec<f64> = (0..500)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if i % 37 == 0 {
                    f64::NAN
                } else {
                    (x >> 40) as f64 / 1e3
                }
            })
            .collect();
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
        assert_eq!(quantiles_nth(&vals, &qs), quantiles(&vals, &qs));
    }

    #[test]
    fn quantiles_nth_edge_cases() {
        assert_eq!(quantiles_nth(&[], &[0.5]), vec![None]);
        assert_eq!(quantiles_nth(&[f64::NAN], &[0.5]), vec![None]);
        assert_eq!(quantiles_nth(&[7.0], &[0.0, 0.5, 1.0]), vec![Some(7.0); 3]);
        // Interpolation between ranks, same as the sorted path.
        assert_eq!(quantiles_nth(&[4.0, 1.0, 3.0, 2.0], &[0.25]), vec![Some(1.75)]);
        // Duplicate and unsorted quantile requests.
        assert_eq!(
            quantiles_nth(&[5.0, 1.0, 3.0], &[1.0, 0.5, 0.5]),
            vec![Some(5.0), Some(3.0), Some(3.0)]
        );
    }

    #[test]
    fn boxplot_no_outliers() {
        let bp = BoxPlot::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0], 10).unwrap();
        assert_eq!(bp.median, 3.0);
        assert_eq!(bp.q1, 2.0);
        assert_eq!(bp.q3, 4.0);
        assert_eq!(bp.iqr, 2.0);
        assert_eq!(bp.whisker_low, 1.0);
        assert_eq!(bp.whisker_high, 5.0);
        assert!(bp.outliers.is_empty());
        assert_eq!(bp.n, 5);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut vals: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        vals.push(100.0);
        let bp = BoxPlot::from_values(&vals, 10).unwrap();
        assert_eq!(bp.n_outliers, 1);
        assert_eq!(bp.outliers, vec![100.0]);
        assert!(bp.whisker_high <= 20.0);
    }

    #[test]
    fn boxplot_truncates_outlier_sample() {
        // 100 zeros force IQR = 0, so all 20 high values are outliers.
        let mut vals = vec![0.0; 100];
        vals.extend((0..20).map(|i| 1000.0 + i as f64));
        let bp = BoxPlot::from_values(&vals, 5).unwrap();
        assert_eq!(bp.n_outliers, 20);
        assert_eq!(bp.outliers.len(), 5);
    }

    #[test]
    fn boxplot_from_values_matches_from_sorted() {
        let mut x = 0x9e37_79b9u64;
        let vals: Vec<f64> = (0..300)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 45) as f64) - 250_000.0
            })
            .collect();
        let selected = BoxPlot::from_values(&vals, 7).unwrap();
        let sorted = BoxPlot::from_sorted(&sorted_values(&vals), 7).unwrap();
        assert_eq!(selected, sorted);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(BoxPlot::from_values(&[], 10).is_none());
        assert!(BoxPlot::from_values(&[f64::NAN], 10).is_none());
    }

    #[test]
    fn boxplot_constant_data() {
        let bp = BoxPlot::from_values(&[2.0; 8], 10).unwrap();
        assert_eq!(bp.iqr, 0.0);
        assert_eq!(bp.whisker_low, 2.0);
        assert_eq!(bp.whisker_high, 2.0);
        assert_eq!(bp.n_outliers, 0);
    }
}
