//! Correlation kernels and matrices.
//!
//! `plot_correlation` (paper Figure 2, rows 5–7) needs three coefficients —
//! Pearson, Spearman, Kendall's tau — over single pairs, one-vs-rest
//! vectors, and full matrices. Pairs with a NaN on either side are dropped
//! (pairwise-complete observations), matching Pandas' `corr` semantics.

mod kendall;
mod matrix;
mod pearson;
mod spearman;

pub use kendall::{kendall_prep, kendall_tau, kendall_tau_prepped, KendallPrep};
#[doc(hidden)]
pub use kendall::kendall_tau_naive;
pub use matrix::CorrMatrix;
pub use pearson::{pearson, PearsonPartial};
pub use spearman::{spearman, spearman_from_ranks};

/// The correlation methods DataPrep.EDA computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrMethod {
    /// Pearson product-moment correlation.
    Pearson,
    /// Spearman rank correlation.
    Spearman,
    /// Kendall's tau-b.
    KendallTau,
}

impl CorrMethod {
    /// All methods, in report order.
    pub const ALL: [CorrMethod; 3] =
        [CorrMethod::Pearson, CorrMethod::Spearman, CorrMethod::KendallTau];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CorrMethod::Pearson => "Pearson",
            CorrMethod::Spearman => "Spearman",
            CorrMethod::KendallTau => "KendallTau",
        }
    }

    /// Compute this coefficient over a pair of equal-length slices.
    pub fn compute(self, x: &[f64], y: &[f64]) -> Option<f64> {
        match self {
            CorrMethod::Pearson => pearson(x, y),
            CorrMethod::Spearman => spearman(x, y),
            CorrMethod::KendallTau => kendall_tau(x, y),
        }
    }
}

/// Drop index positions where either side is NaN; returns parallel vectors.
pub(crate) fn complete_pairs(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(x.len(), y.len(), "correlation inputs must be equal length");
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    // eda-lint: allow(EDA-L6) single linear filter pass; correlation kernels poll per chunk/pass
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            xs.push(a);
            ys.push(b);
        }
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names() {
        assert_eq!(CorrMethod::Pearson.name(), "Pearson");
        assert_eq!(CorrMethod::ALL.len(), 3);
    }

    #[test]
    fn dispatch_agrees_with_direct_calls() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.5, 3.1, 2.9, 4.2];
        assert_eq!(CorrMethod::Pearson.compute(&x, &y), pearson(&x, &y));
        assert_eq!(CorrMethod::Spearman.compute(&x, &y), spearman(&x, &y));
        assert_eq!(CorrMethod::KendallTau.compute(&x, &y), kendall_tau(&x, &y));
    }

    #[test]
    fn complete_pairs_drops_nans() {
        let (x, y) = complete_pairs(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, f64::NAN]);
        assert_eq!(x, vec![1.0]);
        assert_eq!(y, vec![1.0]);
    }
}
