//! Pearson product-moment correlation, whole-slice and mergeable.

use super::complete_pairs;

/// Pearson correlation over pairwise-complete observations.
///
/// Returns `None` when fewer than 2 complete pairs remain or either side
/// has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    let (xs, ys) = complete_pairs(x, y);
    let mut p = PearsonPartial::new();
    // Chunked accumulation: polls the interrupt probe per CHECK_INTERVAL
    // pairs and takes the vector shape when available.
    p.push_slices(&xs, &ys);
    p.finish()
}

/// Mergeable co-moment accumulator for Pearson correlation.
///
/// Tracks means and centered second moments with the pairwise-update
/// formulas, so per-partition partials combine exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PearsonPartial {
    /// Number of complete pairs.
    pub n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl PearsonPartial {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a partial directly from reduced sums — the bridge from the
    /// lane-parallel chunk kernels in [`crate::vector`], which compute
    /// the same centered moments from shifted power sums.
    pub(crate) fn from_raw(
        n: u64,
        mean_x: f64,
        mean_y: f64,
        m2x: f64,
        m2y: f64,
        cxy: f64,
    ) -> Self {
        PearsonPartial { n, mean_x, mean_y, m2x, m2y, cxy }
    }

    /// Accumulate a pair of parallel slices (co-indexed columns),
    /// polling the cooperative-interruption probe and reporting morsel
    /// telemetry every [`crate::interrupt::CHECK_INTERVAL`] pairs.
    /// Takes the vector shape when [`crate::vector::simd_enabled`].
    pub fn push_slices(&mut self, x: &[f64], y: &[f64]) {
        if crate::vector::simd_enabled() {
            crate::vector::pearson_slices(self, x, y);
            return;
        }
        let len = x.len().min(y.len());
        let step = crate::interrupt::CHECK_INTERVAL;
        let mut start = 0;
        while start < len {
            if crate::interrupt::interrupted() {
                return;
            }
            let end = (start + step).min(len);
            for (a, b) in x[start..end].iter().zip(&y[start..end]) {
                self.push(*a, *b);
            }
            crate::telemetry::record_morsel(end - start);
            start = end;
        }
    }

    /// Accumulate one pair; NaN on either side is skipped.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        if x.is_nan() || y.is_nan() {
            return;
        }
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // Note: uses the updated mean for one side (standard co-moment trick).
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
        self.cxy += dx * (y - self.mean_y);
    }

    /// Merge another partial into this one.
    pub fn merge(&mut self, other: &PearsonPartial) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2x += other.m2x + dx * dx * na * nb / n;
        self.m2y += other.m2y + dy * dy * na * nb / n;
        self.cxy += other.cxy + dx * dy * na * nb / n;
        self.mean_x += dx * nb / n;
        self.mean_y += dy * nb / n;
        self.n += other.n;
    }

    /// The correlation coefficient, `None` when degenerate.
    pub fn finish(&self) -> Option<f64> {
        if self.n < 2 || self.m2x <= 0.0 || self.m2y <= 0.0 {
            return None;
        }
        Some(self.cxy / (self.m2x * self.m2y).sqrt())
    }

    /// Covariance (sample), `None` when fewer than 2 pairs.
    pub fn covariance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.cxy / (self.n - 1) as f64)
    }

    /// Means `(mean_x, mean_y)` of the accumulated pairs.
    pub fn means(&self) -> (f64, f64) {
        (self.mean_x, self.mean_y)
    }

    /// Centered second moments `(Σ(x-x̄)², Σ(y-ȳ)²)`.
    pub fn second_moments(&self) -> (f64, f64) {
        (self.m2x, self.m2y)
    }

    /// Centered co-moment `Σ(x-x̄)(y-ȳ)`.
    pub fn comoment(&self) -> f64 {
        self.cxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // scipy.stats.pearsonr([1,2,3,4,5], [2,1,4,3,5]) ≈ 0.8
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((pearson(&x, &y).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn constant_side_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), None);
    }

    #[test]
    fn too_few_pairs_is_none() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        // NaNs shrink the effective sample.
        assert_eq!(pearson(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, f64::NAN]), None);
    }

    #[test]
    fn nan_pairs_are_dropped() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0];
        let y = [2.0, 4.0, 100.0, 8.0, 10.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let x: Vec<f64> = (0..500).map(|i| ((i * 17) % 83) as f64).collect();
        let y: Vec<f64> = (0..500).map(|i| ((i * 29) % 97) as f64 + 0.5).collect();
        let whole = {
            let mut p = PearsonPartial::new();
            for (a, b) in x.iter().zip(&y) {
                p.push(*a, *b);
            }
            p
        };
        let mut merged = PearsonPartial::new();
        for (cx, cy) in x.chunks(77).zip(y.chunks(77)) {
            let mut part = PearsonPartial::new();
            for (a, b) in cx.iter().zip(cy) {
                part.push(*a, *b);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.n, whole.n);
        assert!((merged.finish().unwrap() - whole.finish().unwrap()).abs() < 1e-12);
        assert!((merged.covariance().unwrap() - whole.covariance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn symmetry() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0];
        assert_eq!(pearson(&x, &y), pearson(&y, &x));
    }
}
