//! Spearman rank correlation.

use super::{complete_pairs, pearson::pearson};
use crate::rank::ranks;

/// Spearman's rho over pairwise-complete observations: Pearson correlation
/// of mid-ranks, which handles ties correctly. Ranks are computed over
/// the pair's complete observations (SciPy semantics).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    let (xs, ys) = complete_pairs(x, y);
    if xs.len() < 2 {
        return None;
    }
    pearson(&ranks(&xs), &ranks(&ys))
}

/// Spearman's rho from per-column precomputed ranks (NaN rank at null
/// positions): Pearson over the rank vectors with pairwise-complete
/// filtering. This is **pandas' `DataFrame.corr(method="spearman")`
/// semantics** — each column is ranked once and shared across all its
/// pairs — which is what DataPrep's matrix path uses; it coincides with
/// the per-pair form whenever neither column has nulls.
pub fn spearman_from_ranks(rank_x: &[f64], rank_y: &[f64]) -> Option<f64> {
    pearson(rank_x, rank_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_nonlinear_is_one() {
        // y = x^3 is monotone: Spearman 1, even though Pearson < 1.
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn reversed_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value_with_ties() {
        // scipy.stats.spearmanr([1,2,2,3], [1,3,2,4]) = 3/sqrt(10)
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        let expected = 3.0 / 10.0_f64.sqrt();
        assert!((rho - expected).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(spearman(&[], &[]), None);
        assert_eq!(spearman(&[1.0], &[1.0]), None);
        assert_eq!(spearman(&[2.0, 2.0], &[1.0, 3.0]), None); // constant ranks
    }

    #[test]
    fn nan_pairs_dropped() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_once_matches_per_pair_without_nulls() {
        use crate::rank::ranks;
        let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 53) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i * 29) % 47) as f64).collect();
        let a = spearman(&x, &y).unwrap();
        let b = spearman_from_ranks(&ranks(&x), &ranks(&y)).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        assert_eq!(spearman(&x, &y), spearman(&y, &x));
    }
}
