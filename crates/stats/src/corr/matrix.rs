//! Correlation matrices over named column sets.

use super::{spearman::spearman_from_ranks, CorrMethod};
use crate::rank::ranks;

/// A symmetric correlation matrix with column labels.
///
/// Cells are `None` when a coefficient is undefined (constant column,
/// too few complete pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrMatrix {
    /// Column labels, in matrix order.
    pub labels: Vec<String>,
    /// The method that produced the matrix.
    pub method: CorrMethod,
    /// Row-major `labels.len() × labels.len()` cells.
    pub cells: Vec<Option<f64>>,
}

impl CorrMatrix {
    /// Compute the matrix for `method` over named numeric columns.
    ///
    /// Columns are full-length with NaN marking nulls; each pair uses its
    /// own pairwise-complete subset, like `pandas.DataFrame.corr`.
    pub fn compute(
        columns: &[(String, Vec<f64>)],
        method: CorrMethod,
    ) -> CorrMatrix {
        let m = columns.len();
        // Spearman over a NaN-free column pair is Pearson over the
        // columns' own ranks, so rank each complete column once —
        // O(m·n log n) ranking instead of O(m²·n log n). A column with
        // NaNs keeps `None` here and its pairs fall back to the per-pair
        // path, which re-ranks over each pair's complete subset (the
        // two paths only coincide when nothing is dropped).
        let col_ranks: Vec<Option<Vec<f64>>> = if method == CorrMethod::Spearman {
            columns
                .iter()
                .map(|(_, v)| (!v.iter().any(|x| x.is_nan())).then(|| ranks(v)))
                .collect()
        } else {
            Vec::new()
        };
        let mut cells = vec![None; m * m];
        for i in 0..m {
            // Each pair costs O(n) .. O(n log n); the pair boundary is the
            // natural morsel for cooperative interruption on wide frames.
            // Remaining cells stay `None` — the bailed result is discarded
            // by the governed scheduler.
            if crate::interrupt::interrupted() {
                break;
            }
            cells[i * m + i] = Some(1.0);
            for j in (i + 1)..m {
                let r = match method {
                    CorrMethod::Spearman => match (&col_ranks[i], &col_ranks[j]) {
                        (Some(ri), Some(rj)) => spearman_from_ranks(ri, rj),
                        _ => method.compute(&columns[i].1, &columns[j].1),
                    },
                    _ => method.compute(&columns[i].1, &columns[j].1),
                };
                cells[i * m + j] = r;
                cells[j * m + i] = r;
            }
            // One matrix row is the morsel here; report its row count.
            crate::telemetry::record_morsel(columns[i].1.len());
        }
        CorrMatrix {
            labels: columns.iter().map(|(n, _)| n.clone()).collect(),
            method,
            cells,
        }
    }

    /// Matrix dimension.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Cell `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        self.cells[i * self.size() + j]
    }

    /// Cell by label pair. Outer `None` when a label is unknown; inner
    /// `None` when the coefficient is undefined.
    pub fn get_by_name(&self, a: &str, b: &str) -> Option<Option<f64>> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        Some(self.get(i, j))
    }

    /// The one-vs-rest correlation vector for a label (self excluded),
    /// as `(other_label, value)` pairs in matrix order.
    pub fn vector_for(&self, label: &str) -> Option<Vec<(String, Option<f64>)>> {
        let i = self.labels.iter().position(|l| l == label)?;
        Some(
            self.labels
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, l)| (l.clone(), self.get(i, j)))
                .collect(),
        )
    }

    /// Off-diagonal pairs with `|r| >= threshold`, sorted by descending |r|.
    pub fn strong_pairs(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let m = self.size();
        let mut out = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                if let Some(r) = self.get(i, j) {
                    if r.abs() >= threshold {
                        out.push((self.labels[i].clone(), self.labels[j].clone(), r));
                    }
                }
            }
        }
        out.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<(String, Vec<f64>)> {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect(); // r = 1 with x
        let z: Vec<f64> = x.iter().map(|v| -v).collect(); // r = -1 with x
        let noise: Vec<f64> = (0..50).map(|i| ((i * 83 + 19) % 47) as f64).collect();
        vec![
            ("x".into(), x),
            ("y".into(), y),
            ("z".into(), z),
            ("noise".into(), noise),
        ]
    }

    #[test]
    fn diagonal_is_one() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::Pearson);
        for i in 0..m.size() {
            assert_eq!(m.get(i, i), Some(1.0));
        }
    }

    #[test]
    fn symmetric() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::Spearman);
        for i in 0..m.size() {
            for j in 0..m.size() {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn known_relationships() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::Pearson);
        assert!((m.get_by_name("x", "y").unwrap().unwrap() - 1.0).abs() < 1e-12);
        assert!((m.get_by_name("x", "z").unwrap().unwrap() + 1.0).abs() < 1e-12);
        assert!(m.get_by_name("x", "noise").unwrap().unwrap().abs() < 0.5);
    }

    #[test]
    fn constant_column_yields_none_cells() {
        let cols = vec![
            ("a".into(), vec![1.0, 2.0, 3.0]),
            ("const".into(), vec![7.0, 7.0, 7.0]),
        ];
        let m = CorrMatrix::compute(&cols, CorrMethod::Pearson);
        assert_eq!(m.get_by_name("a", "const").unwrap(), None);
        assert_eq!(m.get_by_name("const", "const").unwrap(), Some(1.0));
    }

    #[test]
    fn vector_for_excludes_self() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::Pearson);
        let v = m.vector_for("x").unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(l, _)| l != "x"));
        assert!(m.vector_for("missing").is_none());
    }

    #[test]
    fn strong_pairs_sorted_by_abs() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::Pearson);
        let pairs = m.strong_pairs(0.9);
        // x~y, x~z, y~z all have |r| = 1.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|(_, _, r)| r.abs() >= 0.9));
    }

    #[test]
    fn kendall_matrix_smoke() {
        let m = CorrMatrix::compute(&columns(), CorrMethod::KendallTau);
        assert!((m.get_by_name("x", "y").unwrap().unwrap() - 1.0).abs() < 1e-12);
        assert!((m.get_by_name("x", "z").unwrap().unwrap() + 1.0).abs() < 1e-12);
    }
}
