//! Kendall's tau-b via Knight's O(n log n) algorithm.
//!
//! The naive tau is O(n²) in pair comparisons — too slow for the row counts
//! in the paper's Table 2. Knight (1966) counts discordant pairs as merge
//! sort inversions after sorting by one coordinate, and corrects for ties:
//!
//! `tau_b = (n0 - n1 - n2 + n3 - 2·D) / sqrt((n0 - n1)(n0 - n2))`
//!
//! with `n0 = n(n-1)/2`, `n1`/`n2` tie pair counts in x/y, `n3` joint-tie
//! pairs, `D` discordant pairs — the same formulation SciPy uses.

use super::complete_pairs;

/// Kendall's tau-b over pairwise-complete observations.
///
/// Returns `None` when fewer than 2 complete pairs remain or either side is
/// entirely tied.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Option<f64> {
    let (xs, ys) = complete_pairs(x, y);
    let n = xs.len();
    if n < 2 {
        return None;
    }

    // Sort indices by (x, y).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| xs[a].total_cmp(&xs[b]).then(ys[a].total_cmp(&ys[b])));

    let n0 = pairs(n as u64);

    // Tie counts in x, and joint ties (x and y both equal).
    let mut n1 = 0u64;
    let mut n3 = 0u64;
    {
        let mut i = 0;
        let mut next_poll = 0;
        while i < n {
            if i >= next_poll {
                if crate::interrupt::interrupted() {
                    return None;
                }
                next_poll = i + crate::interrupt::CHECK_INTERVAL;
            }
            let mut j = i;
            while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            n1 += pairs((j - i + 1) as u64);
            // Within the x-tie group, indices are sorted by y: count y runs.
            let mut k = i;
            while k <= j {
                let mut m = k;
                while m < j && ys[idx[m + 1]] == ys[idx[k]] {
                    m += 1;
                }
                n3 += pairs((m - k + 1) as u64);
                k = m + 1;
            }
            i = j + 1;
        }
    }

    // Tie counts in y.
    let mut sorted_y: Vec<f64> = ys.clone();
    sorted_y.sort_unstable_by(f64::total_cmp);
    let mut n2 = 0u64;
    {
        let mut i = 0;
        let mut next_poll = 0;
        while i < n {
            if i >= next_poll {
                if crate::interrupt::interrupted() {
                    return None;
                }
                next_poll = i + crate::interrupt::CHECK_INTERVAL;
            }
            let mut j = i;
            while j + 1 < n && sorted_y[j + 1] == sorted_y[i] {
                j += 1;
            }
            n2 += pairs((j - i + 1) as u64);
            i = j + 1;
        }
    }

    // Discordant pairs = inversions of the y sequence ordered by (x, y).
    let mut seq: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let mut buf = vec![0.0; n];
    let discordant = count_inversions(&mut seq, &mut buf)?;

    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return None;
    }
    let numer = n0 as f64 - n1 as f64 - n2 as f64 + n3 as f64 - 2.0 * discordant as f64;
    Some(numer / denom.sqrt())
}

/// `k choose 2`.
fn pairs(k: u64) -> u64 {
    k * k.saturating_sub(1) / 2
}

/// Count inversions (strictly decreasing pairs) with bottom-up merge sort.
///
/// Returns `None` when the run is interrupted mid-count (polled once per
/// O(n) merge pass, so cancellation latency is one pass).
fn count_inversions(seq: &mut [f64], buf: &mut [f64]) -> Option<u64> {
    let n = seq.len();
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        if crate::interrupt::interrupted() {
            return None;
        }
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            inversions += merge_count(&seq[lo..hi], mid - lo, &mut buf[lo..hi]);
            seq[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    Some(inversions)
}

/// Merge two sorted halves of `slice` (split at `mid`) into `out`,
/// counting cross-half inversions.
fn merge_count(slice: &[f64], mid: usize, out: &mut [f64]) -> u64 {
    let (left, right) = slice.split_at(mid);
    let mut inversions = 0u64;
    let (mut i, mut j, mut k) = (0, 0, 0);
    // eda-lint: allow(EDA-L6) bounded to one merge window; count_inversions polls between passes
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out[k] = left[i];
            i += 1;
        } else {
            // right[j] jumps ahead of all remaining left items: each is an
            // inversion.
            inversions += (left.len() - i) as u64;
            out[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    out[k..k + left.len() - i].copy_from_slice(&left[i..]);
    let k = k + left.len() - i;
    out[k..k + right.len() - j].copy_from_slice(&right[j..]);
    inversions
}

/// Per-column state reusable across every pair involving the column:
/// its stable sort permutation and its tie-pair count. Computing these
/// once per column (instead of once per pair) is the shared-computation
/// optimization the DataPrep correlation matrix applies.
#[derive(Debug, Clone, PartialEq)]
pub struct KendallPrep {
    /// Stable argsort of the column (indices in ascending value order).
    pub perm: Vec<u32>,
    /// `Σ t(t-1)/2` over the column's tie groups.
    pub tie_pairs: u64,
}

/// Build the shared per-column state. Returns `None` when the column
/// contains NaN (pairwise-complete filtering invalidates a shared
/// permutation; callers fall back to [`kendall_tau`] for such columns).
pub fn kendall_prep(values: &[f64]) -> Option<KendallPrep> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut perm: Vec<u32> = (0..values.len() as u32).collect();
    perm.sort_by(|&a, &b| values[a as usize].total_cmp(&values[b as usize]));
    let mut tie_pairs = 0u64;
    let mut i = 0;
    while i < perm.len() {
        let mut j = i;
        while j + 1 < perm.len() && values[perm[j + 1] as usize] == values[perm[i] as usize] {
            j += 1;
        }
        tie_pairs += pairs((j - i + 1) as u64);
        i = j + 1;
    }
    Some(KendallPrep { perm, tie_pairs })
}

/// Kendall's tau-b over NaN-free columns using precomputed per-column
/// state: `x_prep` is x's shared sort permutation / tie count, and
/// `y_tie_pairs` comes from y's own prep. Exactly equal to
/// [`kendall_tau`] on the same data, but the per-pair cost drops from
/// two comparison sorts to one linear pass plus the inversion count.
pub fn kendall_tau_prepped(
    x: &[f64],
    y: &[f64],
    x_prep: &KendallPrep,
    y_tie_pairs: u64,
) -> Option<f64> {
    let n = x.len();
    if n < 2 || y.len() != n || x_prep.perm.len() != n {
        return None;
    }
    let n0 = pairs(n as u64);
    let n1 = x_prep.tie_pairs;
    let n2 = y_tie_pairs;

    // Walk x's shared order; within each x-tie group sort the y values
    // ascending (required by Knight) and count joint ties.
    let mut seq: Vec<f64> = Vec::with_capacity(n);
    let mut n3 = 0u64;
    let perm = &x_prep.perm;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[perm[j + 1] as usize] == x[perm[i] as usize] {
            j += 1;
        }
        if j == i {
            seq.push(y[perm[i] as usize]);
        } else {
            let start = seq.len();
            for &p in &perm[i..=j] {
                seq.push(y[p as usize]);
            }
            let group = &mut seq[start..];
            group.sort_unstable_by(|a, b| a.total_cmp(b));
            let mut k = 0;
            while k < group.len() {
                let mut m = k;
                while m + 1 < group.len() && group[m + 1] == group[k] {
                    m += 1;
                }
                n3 += pairs((m - k + 1) as u64);
                k = m + 1;
            }
        }
        i = j + 1;
    }

    let mut buf = vec![0.0; n];
    let discordant = count_inversions(&mut seq, &mut buf)?;
    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return None;
    }
    let numer = n0 as f64 - n1 as f64 - n2 as f64 + n3 as f64 - 2.0 * discordant as f64;
    Some(numer / denom.sqrt())
}

/// Independent O(n log n) tau-b cross-check used to validate the fast
/// path in tests. Formerly an O(n²) double loop over all pairs; now it
/// counts discordant pairs as inversions with a Fenwick (binary indexed)
/// tree over rank-compressed y values — the same pair counts as the
/// double loop, via a mechanism shared with neither Knight merge path.
#[doc(hidden)]
pub fn kendall_tau_naive(x: &[f64], y: &[f64]) -> Option<f64> {
    let (xs, ys) = complete_pairs(x, y);
    let n = xs.len();
    if n < 2 {
        return None;
    }

    // Order by (x, y) — the same primary sort Knight uses, so within an
    // x-tie group y never strictly decreases and within-group pairs are
    // never counted as inversions.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| xs[a].total_cmp(&xs[b]).then(ys[a].total_cmp(&ys[b])));

    // Tie-pair counts from run lengths: n1 over x, n2 over y, n3 joint.
    let n0 = pairs(n as u64);
    let mut n1 = 0u64;
    let mut n3 = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        n1 += pairs((j - i + 1) as u64);
        let mut k = i;
        while k <= j {
            let mut m = k;
            while m < j && ys[idx[m + 1]] == ys[idx[k]] {
                m += 1;
            }
            n3 += pairs((m - k + 1) as u64);
            k = m + 1;
        }
        i = j + 1;
    }

    // Rank-compress y and count y tie pairs from the sorted copy.
    let mut distinct: Vec<f64> = ys.clone();
    distinct.sort_unstable_by(f64::total_cmp);
    let mut n2 = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && distinct[j + 1] == distinct[i] {
            j += 1;
        }
        n2 += pairs((j - i + 1) as u64);
        i = j + 1;
    }
    distinct.dedup();

    // Discordant pairs: walk in (x, y) order, and for each element count
    // the already-seen elements with a strictly larger y rank.
    let mut tree = Fenwick::new(distinct.len());
    let mut discordant = 0u64;
    for (seen, &p) in idx.iter().enumerate() {
        // Every y is in `distinct` by construction; the insertion
        // point is the same rank, so a miss cannot miscount.
        let rank = distinct
            .binary_search_by(|v| v.total_cmp(&ys[p]))
            .unwrap_or_else(|pos| pos);
        discordant += seen as u64 - tree.prefix_count(rank);
        tree.add(rank);
    }

    // Same integer identities as the double loop: C + D + (n1 + n2 - n3)
    // covers every pair, so C - D falls out exactly. Signed arithmetic —
    // the degenerate all-tied case drives the partial sums negative.
    let concordant = n0 as i64 - n1 as i64 - n2 as i64 + n3 as i64 - discordant as i64;
    let denom = ((n0 - n1) as f64) * ((n0 - n2) as f64);
    if denom <= 0.0 {
        return None;
    }
    Some((concordant - discordant as i64) as f64 / denom.sqrt())
}

/// Fenwick tree over element counts, 0-indexed ranks.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(size: usize) -> Self {
        Fenwick { tree: vec![0; size + 1] }
    }

    /// Increment the count at `rank`.
    fn add(&mut self, rank: usize) {
        let mut i = rank + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of inserted elements with rank ≤ `rank`.
    fn prefix_count(&self, rank: usize) -> u64 {
        let mut i = rank + 1;
        let mut total = 0;
        while i > 0 {
            total += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // scipy.stats.kendalltau([1,2,3,4,5], [2,1,4,3,5]).statistic == 0.6
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((kendall_tau(&x, &y).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ties_handled_as_tau_b() {
        // scipy.stats.kendalltau([1,2,2,3], [1,2,3,4]) ≈ 0.9128709291752769
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!((tau - 0.912_870_929_175_276_9).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(kendall_tau(&[], &[]), None);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
        assert_eq!(kendall_tau(&[2.0, 2.0], &[1.0, 3.0]), None);
    }

    #[test]
    fn nan_pairs_dropped() {
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [1.0, 99.0, 2.0, 3.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_matches_naive_on_pseudorandom_data() {
        // Deterministic pseudo-random data with plenty of ties.
        let x: Vec<f64> = (0..300).map(|i| ((i * 37 + 11) % 23) as f64).collect();
        let y: Vec<f64> = (0..300).map(|i| ((i * 53 + 7) % 19) as f64).collect();
        let fast = kendall_tau(&x, &y).unwrap();
        let naive = kendall_tau_naive(&x, &y).unwrap();
        assert!((fast - naive).abs() < 1e-12, "{fast} vs {naive}");
    }

    #[test]
    fn fast_matches_naive_continuous() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 97 + 13) % 541) as f64 / 7.0).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 31 + 29) % 769) as f64 / 11.0).collect();
        let fast = kendall_tau(&x, &y).unwrap();
        let naive = kendall_tau_naive(&x, &y).unwrap();
        assert!((fast - naive).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0];
        let a = kendall_tau(&x, &y).unwrap();
        let b = kendall_tau(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn prepped_matches_plain_on_tied_data() {
        let x: Vec<f64> = (0..300).map(|i| ((i * 37 + 11) % 23) as f64).collect();
        let y: Vec<f64> = (0..300).map(|i| ((i * 53 + 7) % 19) as f64).collect();
        let xp = kendall_prep(&x).unwrap();
        let yp = kendall_prep(&y).unwrap();
        let fast = kendall_tau_prepped(&x, &y, &xp, yp.tie_pairs).unwrap();
        let plain = kendall_tau(&x, &y).unwrap();
        assert!((fast - plain).abs() < 1e-12, "{fast} vs {plain}");
        // Symmetric use of the preps.
        let rev = kendall_tau_prepped(&y, &x, &yp, xp.tie_pairs).unwrap();
        assert!((fast - rev).abs() < 1e-12);
    }

    #[test]
    fn prepped_matches_plain_continuous() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 97 + 13) % 541) as f64 / 7.0).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 31 + 29) % 769) as f64 / 11.0).collect();
        let xp = kendall_prep(&x).unwrap();
        let yp = kendall_prep(&y).unwrap();
        let fast = kendall_tau_prepped(&x, &y, &xp, yp.tie_pairs).unwrap();
        let plain = kendall_tau(&x, &y).unwrap();
        assert!((fast - plain).abs() < 1e-12);
    }

    #[test]
    fn prep_rejects_nan_columns() {
        assert!(kendall_prep(&[1.0, f64::NAN]).is_none());
        assert!(kendall_prep(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn prepped_degenerate() {
        let xp = kendall_prep(&[2.0, 2.0]).unwrap();
        let yp = kendall_prep(&[1.0, 3.0]).unwrap();
        assert_eq!(
            kendall_tau_prepped(&[2.0, 2.0], &[1.0, 3.0], &xp, yp.tie_pairs),
            None
        );
    }

    /// O(n²) double loop kept only as a test oracle for the two
    /// O(n log n) production paths (merge-sort and Fenwick).
    fn kendall_tau_quadratic(x: &[f64], y: &[f64]) -> Option<f64> {
        let (xs, ys) = complete_pairs(x, y);
        let n = xs.len();
        if n < 2 {
            return None;
        }
        let (mut concordant, mut discordant, mut tx, mut ty) = (0i64, 0i64, 0u64, 0u64);
        for i in 0..n {
            for j in i + 1..n {
                let dx = xs[i] - xs[j];
                let dy = ys[i] - ys[j];
                if dx == 0.0 && dy == 0.0 {
                    tx += 1;
                    ty += 1;
                } else if dx == 0.0 {
                    tx += 1;
                } else if dy == 0.0 {
                    ty += 1;
                } else if dx * dy > 0.0 {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let n0 = (n * (n - 1) / 2) as f64;
        let denom = (n0 - tx as f64) * (n0 - ty as f64);
        if denom <= 0.0 {
            return None;
        }
        Some((concordant - discordant) as f64 / denom.sqrt())
    }

    #[test]
    fn fenwick_reference_matches_quadratic_oracle() {
        let x: Vec<f64> = (0..300).map(|i| ((i * 37 + 11) % 23) as f64).collect();
        let y: Vec<f64> = (0..300).map(|i| ((i * 53 + 7) % 19) as f64).collect();
        let fenwick = kendall_tau_naive(&x, &y).unwrap();
        let oracle = kendall_tau_quadratic(&x, &y).unwrap();
        assert!((fenwick - oracle).abs() < 1e-12, "{fenwick} vs {oracle}");
        let xc: Vec<f64> = (0..150).map(|i| ((i * 97 + 13) % 541) as f64 / 7.0).collect();
        let yc: Vec<f64> = (0..150).map(|i| ((i * 31 + 29) % 769) as f64 / 11.0).collect();
        let fenwick = kendall_tau_naive(&xc, &yc).unwrap();
        let oracle = kendall_tau_quadratic(&xc, &yc).unwrap();
        assert!((fenwick - oracle).abs() < 1e-12);
    }

    #[test]
    fn fenwick_reference_degenerate_cases() {
        assert_eq!(kendall_tau_naive(&[], &[]), None);
        assert_eq!(kendall_tau_naive(&[1.0], &[1.0]), None);
        // All-tied sides must return None without underflowing the
        // signed pair identities.
        assert_eq!(kendall_tau_naive(&[2.0, 2.0], &[1.0, 3.0]), None);
        assert_eq!(kendall_tau_naive(&[2.0, 2.0, 2.0], &[2.0, 2.0, 2.0]), None);
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [1.0, 99.0, 2.0, 3.0];
        assert!((kendall_tau_naive(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inversion_counter_basics() {
        let mut seq = vec![3.0, 1.0, 2.0];
        let mut buf = vec![0.0; 3];
        assert_eq!(count_inversions(&mut seq, &mut buf), Some(2));
        assert_eq!(seq, vec![1.0, 2.0, 3.0]);

        let mut sorted = vec![1.0, 2.0, 3.0, 4.0];
        let mut buf = vec![0.0; 4];
        assert_eq!(count_inversions(&mut sorted, &mut buf), Some(0));

        let mut rev = vec![4.0, 3.0, 2.0, 1.0];
        let mut buf = vec![0.0; 4];
        assert_eq!(count_inversions(&mut rev, &mut buf), Some(6));
    }
}
