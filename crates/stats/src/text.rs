//! Text statistics for categorical columns.
//!
//! The univariate-categorical panel (paper Figure 2, row 2, case C) shows a
//! word cloud, word frequencies, and string-length statistics. This module
//! provides the tokenization and the mergeable length/word accumulators.

use crate::freq::FreqTable;
use crate::moments::Moments;

/// Lowercased alphanumeric tokens of a string (split on everything else).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Mergeable accumulator for string-column text statistics.
#[derive(Debug, Clone, Default)]
pub struct TextStats {
    /// Frequencies of individual words across all values.
    pub words: FreqTable,
    /// Distribution of string lengths (in chars).
    pub lengths: Moments,
    /// Number of values consisting solely of whitespace (or empty).
    pub blank: u64,
    /// Total number of non-null values.
    pub count: u64,
}

impl TextStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        TextStats { lengths: Moments::new(), ..Default::default() }
    }

    /// Accumulate one value; `None` is ignored (nulls are tracked by the
    /// frequency-table kernel, not here).
    pub fn push(&mut self, value: Option<&str>) {
        let Some(v) = value else { return };
        self.count += 1;
        self.lengths.push(v.chars().count() as f64);
        if v.trim().is_empty() {
            self.blank += 1;
        }
        for token in tokenize(v) {
            self.words.push_owned(Some(token));
        }
    }

    /// Merge another partial.
    pub fn merge(&mut self, other: &TextStats) {
        self.words.merge(&other.words);
        self.lengths.merge(&other.lengths);
        self.blank += other.blank;
        self.count += other.count;
    }

    /// Total words observed.
    pub fn total_words(&self) -> u64 {
        self.words.total()
    }

    /// Distinct words observed.
    pub fn distinct_words(&self) -> usize {
        self.words.distinct()
    }

    /// The `k` most frequent words.
    pub fn top_words(&self, k: usize) -> Vec<(String, u64)> {
        self.words.top_k(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("a-b_c d"), vec!["a", "b", "c", "d"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("year2024"), vec!["year2024"]);
    }

    #[test]
    fn tokenize_unicode() {
        assert_eq!(tokenize("Crème brûlée"), vec!["crème", "brûlée"]);
    }

    #[test]
    fn stats_accumulate() {
        let mut t = TextStats::new();
        t.push(Some("red apple"));
        t.push(Some("green apple"));
        t.push(None);
        t.push(Some(""));
        assert_eq!(t.count, 3);
        assert_eq!(t.blank, 1);
        assert_eq!(t.total_words(), 4);
        assert_eq!(t.distinct_words(), 3);
        assert_eq!(t.top_words(1), vec![("apple".to_string(), 2)]);
        assert_eq!(t.lengths.count, 3);
        assert_eq!(t.lengths.max, 11.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let values = ["one two", "two three", "three three four"];
        let whole = {
            let mut t = TextStats::new();
            for v in values {
                t.push(Some(v));
            }
            t
        };
        let mut merged = TextStats::new();
        for v in values {
            let mut part = TextStats::new();
            part.push(Some(v));
            merged.merge(&part);
        }
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.words, whole.words);
        assert_eq!(merged.lengths.count, whole.lengths.count);
        assert!((merged.lengths.mean - whole.lengths.mean).abs() < 1e-12);
    }

    #[test]
    fn length_stats_in_chars_not_bytes() {
        let mut t = TextStats::new();
        t.push(Some("été")); // 3 chars, 5 bytes
        assert_eq!(t.lengths.max, 3.0);
    }
}
