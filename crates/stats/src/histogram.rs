//! Fixed-bin histograms with mergeable partials.
//!
//! The bin range is fixed at construction — in the two-phase pipeline the
//! global `[min, max]` comes from a first-pass [`crate::Moments`] (or the
//! precomputed chunk metadata), after which every partition fills the same
//! bin grid and partials merge by element-wise addition. This mirrors how
//! the paper computes one histogram across Dask partitions.

/// A histogram over `[min, max]` with equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub min: f64,
    /// Inclusive upper bound of the last bin.
    pub max: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Values below `min` (possible when the range was estimated).
    pub underflow: u64,
    /// Values above `max`.
    pub overflow: u64,
}

impl Histogram {
    /// An empty histogram with `bins` equal-width bins over `[min, max]`.
    ///
    /// Degenerate ranges (`min == max`, or non-finite bounds) collapse to a
    /// single bin that captures everything equal to `min`.
    pub fn new(min: f64, max: f64, bins: usize) -> Histogram {
        let bins = bins.max(1);
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Histogram { min, max: min, counts: vec![0; 1], underflow: 0, overflow: 0 };
        }
        Histogram { min, max, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Build over a slice using its own extrema for the range.
    ///
    /// The extrema scan and the fill take the lane-parallel vector shape
    /// when [`crate::vector::simd_enabled`].
    pub fn from_values(values: &[f64], bins: usize) -> Histogram {
        let (min, max) = if crate::vector::simd_enabled() {
            crate::vector::minmax(values)
        } else {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &v in values {
                if v.is_finite() {
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            (min, max)
        };
        let mut h = Histogram::new(min, max, bins);
        h.fill_slice(values);
        h
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.counts.len()
    }

    /// Whether the range is degenerate (single-point).
    pub fn is_degenerate(&self) -> bool {
        self.min >= self.max
    }

    /// Accumulate one value. Non-finite values are ignored.
    #[inline]
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.is_degenerate() {
            if value == self.min {
                self.counts[0] += 1;
            } else if value < self.min {
                self.underflow += 1;
            } else {
                self.overflow += 1;
            }
            return;
        }
        if value < self.min {
            self.underflow += 1;
            return;
        }
        if value > self.max {
            self.overflow += 1;
            return;
        }
        let width = (self.max - self.min) / self.nbins() as f64;
        let mut idx = ((value - self.min) / width) as usize;
        // The maximum falls into the last bin (right-closed final bin).
        if idx >= self.nbins() {
            idx = self.nbins() - 1;
        }
        self.counts[idx] += 1;
    }

    /// Accumulate many values. Polls the cooperative-interruption probe
    /// every [`crate::interrupt::CHECK_INTERVAL`] values and bails early
    /// when it fires (the partial grid is discarded by the scheduler).
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        const MORSEL: usize = crate::interrupt::CHECK_INTERVAL;
        let mut seen = 0usize;
        for (i, v) in values.into_iter().enumerate() {
            if i % MORSEL == 0 {
                if crate::interrupt::interrupted() {
                    return;
                }
                if i > 0 {
                    crate::telemetry::record_morsel(MORSEL);
                }
            }
            self.push(v);
            seen = i + 1;
        }
        // The trailing (possibly partial) morsel reports after the loop.
        if seen > 0 {
            let tail = seen % MORSEL;
            crate::telemetry::record_morsel(if tail == 0 { MORSEL } else { tail });
        }
    }

    /// Accumulate a contiguous slice — the columnar-window entry point.
    ///
    /// Dispatches to the vector fill (hoisted reciprocal binning, striped
    /// counts — see [`crate::vector::histogram_fill`]) when
    /// [`crate::vector::simd_enabled`], else to the scalar per-value loop
    /// bit-identically to [`Histogram::extend`]. Both poll the
    /// interruption probe and report morsel telemetry per
    /// [`crate::interrupt::CHECK_INTERVAL`] values.
    pub fn fill_slice(&mut self, values: &[f64]) {
        if crate::vector::simd_enabled() {
            crate::vector::histogram_fill(self, values);
        } else {
            self.extend(values.iter().copied());
        }
    }

    /// Merge a partial built over the identical bin grid.
    ///
    /// Panics if the grids differ — partials must come from the same plan.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min, other.min, "histogram grids differ (min)");
        assert_eq!(self.max, other.max, "histogram grids differ (max)");
        assert_eq!(self.nbins(), other.nbins(), "histogram grids differ (bins)");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Total count captured in bins (excluding under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `i`-th bin's `[low, high)` edges (last bin is closed).
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.nbins());
        if self.is_degenerate() {
            return (self.min, self.min);
        }
        let width = (self.max - self.min) / self.nbins() as f64;
        (self.min + width * i as f64, self.min + width * (i + 1) as f64)
    }

    /// All bin boundaries (length `nbins + 1`).
    pub fn edges(&self) -> Vec<f64> {
        if self.is_degenerate() {
            return vec![self.min, self.min];
        }
        let width = (self.max - self.min) / self.nbins() as f64;
        (0..=self.nbins())
            .map(|i| self.min + width * i as f64)
            .collect()
    }

    /// Normalized bin heights (sum to 1), or zeros when empty.
    pub fn density(&self) -> Vec<f64> {
        let total = self.total() as f64;
        if total == 0.0 {
            return vec![0.0; self.nbins()];
        }
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Index of the fullest bin, `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total() == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.9, 10.0]);
        assert_eq!(h.counts, vec![2, 1, 1, 0, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(1.0);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.overflow, 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.5);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        assert_eq!(h.total(), 0);
        assert_eq!(h.underflow + h.overflow, 0);
    }

    #[test]
    fn degenerate_range_single_bin() {
        let h = Histogram::from_values(&[5.0, 5.0, 5.0], 10);
        assert_eq!(h.nbins(), 1);
        assert_eq!(h.total(), 3);
        assert!(h.is_degenerate());
    }

    #[test]
    fn empty_input_degenerate() {
        let h = Histogram::from_values(&[], 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.nbins(), 1);
    }

    #[test]
    fn merge_partials_equals_whole() {
        let data: Vec<f64> = (0..500).map(|i| (i % 97) as f64).collect();
        let whole = {
            let mut h = Histogram::new(0.0, 96.0, 20);
            h.extend(data.iter().copied());
            h
        };
        let mut merged = Histogram::new(0.0, 96.0, 20);
        for chunk in data.chunks(123) {
            let mut part = Histogram::new(0.0, 96.0, 20);
            part.extend(chunk.iter().copied());
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    #[should_panic(expected = "grids differ")]
    fn merge_mismatched_grids_panics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 2.0, 4);
        a.merge(&b);
    }

    #[test]
    fn edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.edges(), vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(h.bin_edges(1), (2.0, 4.0));
    }

    #[test]
    fn density_sums_to_one() {
        let h = Histogram::from_values(&[1.0, 2.0, 3.0, 4.0], 4);
        let sum: f64 = h.density().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(Histogram::new(0.0, 1.0, 2).mode_bin(), None);
    }
}
