//! Morsel-throughput telemetry hook for hot kernels.
//!
//! The same shape as [`crate::interrupt`]: `eda-stats` is dependency-
//! free, so instead of depending on the runtime's metric registry it
//! exposes a process-wide write-once sink slot. The runtime layer
//! registers a sink function once ([`register`]); kernels report each
//! processed morsel — [`crate::interrupt::CHECK_INTERVAL`]-sized batch
//! of rows — at the same boundaries where they poll the interruption
//! probe, so throughput telemetry piggybacks on cadence the kernels
//! already have.
//!
//! With nothing registered, [`record_morsel`] is a single lock-free
//! load returning immediately — standalone kernel use pays essentially
//! nothing, and whether the registered sink actually records anywhere
//! (e.g. only when `engine.metrics` is on) is the sink's business.

use std::sync::OnceLock;

/// The registered sink: write-once, then lock-free to read. Receives
/// the number of rows the finished morsel processed.
static SINK: OnceLock<fn(u64)> = OnceLock::new();

/// Register the morsel sink. Only the first registration in a process
/// takes effect (later ones are ignored), so a sink observed once stays
/// valid forever — kernels never race a change.
pub fn register(sink: fn(u64)) {
    let _ = SINK.set(sink);
}

/// Report one processed morsel of `rows` rows. A no-op costing one
/// lock-free load when no sink is registered.
#[inline]
pub fn record_morsel(rows: usize) {
    if let Some(sink) = SINK.get() {
        sink(rows as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn test_sink(rows: u64) {
        SEEN.fetch_add(rows, Ordering::Relaxed);
    }

    #[test]
    fn sink_receives_morsel_rows() {
        record_morsel(5); // pre-registration: dropped, not a crash
        register(test_sink);
        register(test_sink); // second registration is ignored
        let before = SEEN.load(Ordering::Relaxed);
        record_morsel(3);
        record_morsel(4);
        assert_eq!(SEEN.load(Ordering::Relaxed) - before, 7);
    }
}
