//! Time-series kernels.
//!
//! The paper's §7 names time-series analysis as the first future-work
//! task ("a common EDA task in finance, e.g. stock price analysis"); this
//! module provides the kernels behind the `plot_timeseries` extension in
//! `eda-core`: time-ordered resampling, rolling means, and the
//! autocorrelation function.

/// Mean-aggregate `(t, v)` points into `buckets` equal-width time bins.
///
/// Returns `(bin_center_times, mean_values)`; empty bins are skipped.
/// Input need not be sorted. NaNs on either side are dropped.
pub fn resample_mean(points: &[(f64, f64)], buckets: usize) -> (Vec<f64>, Vec<f64>) {
    let finite: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(t, v)| t.is_finite() && v.is_finite())
        .collect();
    if finite.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let buckets = buckets.max(1);
    let t_min = finite.iter().map(|(t, _)| *t).fold(f64::INFINITY, f64::min);
    let t_max = finite.iter().map(|(t, _)| *t).fold(f64::NEG_INFINITY, f64::max);
    if t_min == t_max {
        let mean = finite.iter().map(|(_, v)| v).sum::<f64>() / finite.len() as f64;
        return (vec![t_min], vec![mean]);
    }
    let width = (t_max - t_min) / buckets as f64;
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0usize; buckets];
    for (t, v) in finite {
        let mut idx = ((t - t_min) / width) as usize;
        if idx >= buckets {
            idx = buckets - 1;
        }
        sums[idx] += v;
        counts[idx] += 1;
    }
    let mut times = Vec::new();
    let mut values = Vec::new();
    for i in 0..buckets {
        if counts[i] > 0 {
            times.push(t_min + width * (i as f64 + 0.5));
            values.push(sums[i] / counts[i] as f64);
        }
    }
    (times, values)
}

/// Centered rolling mean with window `w` (clipped at the edges).
///
/// Output has the same length as the input. NaNs are ignored inside each
/// window; windows that are all-NaN yield NaN.
pub fn rolling_mean(values: &[f64], w: usize) -> Vec<f64> {
    let n = values.len();
    let w = w.max(1);
    let half = w / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let window: Vec<f64> = values[lo..hi].iter().copied().filter(|v| !v.is_nan()).collect();
            if window.is_empty() {
                f64::NAN
            } else {
                window.iter().sum::<f64>() / window.len() as f64
            }
        })
        .collect()
}

/// Sample autocorrelation at lags `1..=max_lag` (lag-0 omitted; it is 1).
///
/// Uses the standard biased estimator `r_k = c_k / c_0`. Returns an empty
/// vector when the series is too short or constant.
pub fn acf(values: &[f64], max_lag: usize) -> Vec<f64> {
    let xs: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    let n = xs.len();
    if n < 3 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|v| (v - mean) * (v - mean)).sum();
    if c0 <= 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 2).max(1);
    (1..=max_lag)
        .map(|k| {
            let ck: f64 = (0..n - k)
                .map(|i| (xs[i] - mean) * (xs[i + k] - mean))
                .sum();
            ck / c0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_means_per_bucket() {
        let pts = vec![(0.0, 1.0), (1.0, 3.0), (10.0, 5.0), (11.0, 7.0)];
        let (ts, vs) = resample_mean(&pts, 2);
        assert_eq!(ts.len(), 2);
        assert!((vs[0] - 2.0).abs() < 1e-12);
        assert!((vs[1] - 6.0).abs() < 1e-12);
        assert!(ts[0] < ts[1]);
    }

    #[test]
    fn resample_skips_empty_buckets() {
        let pts = vec![(0.0, 1.0), (100.0, 2.0)];
        let (ts, vs) = resample_mean(&pts, 10);
        assert_eq!(ts.len(), 2);
        assert_eq!(vs, vec![1.0, 2.0]);
    }

    #[test]
    fn resample_degenerate() {
        assert_eq!(resample_mean(&[], 5).0.len(), 0);
        let (ts, vs) = resample_mean(&[(3.0, 1.0), (3.0, 3.0)], 5);
        assert_eq!(ts, vec![3.0]);
        assert_eq!(vs, vec![2.0]);
        // NaNs dropped.
        let (ts, _) = resample_mean(&[(f64::NAN, 1.0), (1.0, 2.0)], 2);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn rolling_mean_smooths() {
        let vals = vec![0.0, 10.0, 0.0, 10.0, 0.0];
        let rm = rolling_mean(&vals, 3);
        assert_eq!(rm.len(), 5);
        // Interior points average their neighbours.
        assert!((rm[2] - 20.0 / 3.0).abs() < 1e-12);
        // Edges use clipped windows.
        assert!((rm[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_mean_window_one_is_identity() {
        let vals = vec![1.0, 2.0, 3.0];
        assert_eq!(rolling_mean(&vals, 1), vals);
    }

    #[test]
    fn rolling_mean_ignores_nans() {
        let vals = vec![1.0, f64::NAN, 3.0];
        let rm = rolling_mean(&vals, 3);
        assert!((rm[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let period = 8;
        let vals: Vec<f64> = (0..160)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect();
        let r = acf(&vals, 16);
        assert_eq!(r.len(), 16);
        // Strong positive autocorrelation at the period lag...
        assert!(r[period - 1] > 0.8, "acf[{period}] = {}", r[period - 1]);
        // ...and strong negative at half the period.
        assert!(r[period / 2 - 1] < -0.8);
    }

    #[test]
    fn acf_of_alternating_signal() {
        let vals: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = acf(&vals, 2);
        assert!(r[0] < -0.9);
        assert!(r[1] > 0.9);
    }

    #[test]
    fn acf_degenerate() {
        assert!(acf(&[1.0, 2.0], 5).is_empty());
        assert!(acf(&[3.0; 50], 5).is_empty());
    }

    #[test]
    fn acf_values_bounded() {
        let vals: Vec<f64> = (0..200).map(|i| ((i * 37) % 23) as f64).collect();
        for r in acf(&vals, 20) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
