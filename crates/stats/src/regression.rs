//! Simple linear regression.
//!
//! `plot_correlation(df, x, y)` draws a scatter plot with a regression line
//! (paper Figure 2, row 7); this module provides the fit.

use crate::corr::PearsonPartial;

/// An ordinary-least-squares fit `y = slope · x + intercept`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// Line slope.
    pub slope: f64,
    /// Line intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Number of complete pairs used.
    pub n: u64,
}

impl LinearFit {
    /// Fit over pairwise-complete observations.
    ///
    /// Returns `None` with fewer than 2 complete pairs or zero x-variance.
    pub fn fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
        let mut p = PearsonPartial::new();
        for (&a, &b) in x.iter().zip(y) {
            p.push(a, b);
        }
        Self::from_partial(&p)
    }

    /// Fit from a pre-aggregated co-moment partial (used by the two-phase
    /// pipeline: partials reduce across partitions, the fit happens eagerly).
    pub fn from_partial(p: &PearsonPartial) -> Option<LinearFit> {
        if p.n < 2 {
            return None;
        }
        let (m2x, m2y) = p.second_moments();
        if m2x <= 0.0 {
            return None;
        }
        let slope = p.comoment() / m2x;
        let (mean_x, mean_y) = p.means();
        let intercept = mean_y - slope * mean_x;
        let r2 = if m2y > 0.0 {
            let r = p.comoment() / (m2x * m2y).sqrt();
            r * r
        } else {
            // y is constant: the line explains everything trivially.
            1.0
        };
        Some(LinearFit { slope, intercept, r2, n: p.n })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The two endpoints of the regression line across `[x_min, x_max]`,
    /// ready to hand to a line renderer.
    pub fn line_points(&self, x_min: f64, x_max: f64) -> [(f64, f64); 2] {
        [
            (x_min, self.predict(x_min)),
            (x_max, self.predict(x_max)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 4);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 3.0 * v + ((i * 37) % 11) as f64 - 5.0)
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r2 > 0.99 && fit.r2 < 1.0);
    }

    #[test]
    fn negative_slope() {
        let x = [1.0, 2.0, 3.0];
        let y = [6.0, 4.0, 2.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
    }

    #[test]
    fn nan_pairs_skipped() {
        let x = [0.0, 1.0, f64::NAN, 3.0];
        let y = [0.0, 2.0, 100.0, 6.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert_eq!(fit.n, 3);
        assert!((fit.slope - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(LinearFit::fit(&[], &[]).is_none());
        assert!(LinearFit::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_gives_flat_line() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!((fit.slope).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn line_points_span_range() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let pts = fit.line_points(-1.0, 2.0);
        assert_eq!(pts[0], (-1.0, -1.0));
        assert_eq!(pts[1], (2.0, 2.0));
    }
}
