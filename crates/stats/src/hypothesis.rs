//! Statistical tests backing the insight engine.
//!
//! The paper's Compute module classifies a data fact as an *insight* when a
//! statistic crosses a threshold (§4.2.2): uniformity, skewness/normality,
//! and distribution similarity. These tests provide those statistics.

use crate::qq::normal_cdf;

/// Chi-square statistic for uniformity of observed category counts.
///
/// Returns `(statistic, degrees_of_freedom)`, or `None` when fewer than two
/// categories or zero total count.
pub fn chi_square_uniform(counts: &[u64]) -> Option<(f64, usize)> {
    if counts.len() < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let expected = total as f64 / counts.len() as f64;
    let stat = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    Some((stat, counts.len() - 1))
}

/// Approximate upper-tail p-value of a chi-square statistic via the
/// Wilson–Hilferty cube-root normal approximation. Good to a few percent
/// for `df ≥ 3`, which is all the insight thresholds need.
pub fn chi_square_pvalue(stat: f64, df: usize) -> f64 {
    if df == 0 {
        return 1.0;
    }
    let k = df as f64;
    let z = ((stat / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    1.0 - normal_cdf(z)
}

/// Jarque–Bera normality statistic from sample skewness and excess
/// kurtosis: `n/6 (S² + K²/4)`. Large values reject normality.
pub fn jarque_bera(n: u64, skewness: f64, excess_kurtosis: f64) -> f64 {
    n as f64 / 6.0 * (skewness * skewness + excess_kurtosis * excess_kurtosis / 4.0)
}

/// Two-sample Kolmogorov–Smirnov distance: the max gap between empirical
/// CDFs. Returns `None` when either sample is empty.
///
/// Used by `plot_missing(df, x, y)` to quantify how much dropping x's
/// missing rows changes y's distribution.
pub fn ks_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut sa: Vec<f64> = a.iter().copied().filter(|v| !v.is_nan()).collect();
    let mut sb: Vec<f64> = b.iter().copied().filter(|v| !v.is_nan()).collect();
    if sa.is_empty() || sb.is_empty() {
        return None;
    }
    sa.sort_unstable_by(f64::total_cmp);
    sb.sort_unstable_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_of_perfectly_uniform_is_zero() {
        let (stat, df) = chi_square_uniform(&[10, 10, 10, 10]).unwrap();
        assert_eq!(stat, 0.0);
        assert_eq!(df, 3);
    }

    #[test]
    fn chi_square_grows_with_imbalance() {
        let (balanced, _) = chi_square_uniform(&[9, 11, 10, 10]).unwrap();
        let (skewed, _) = chi_square_uniform(&[38, 1, 1, 0]).unwrap();
        assert!(skewed > balanced);
    }

    #[test]
    fn chi_square_degenerate() {
        assert_eq!(chi_square_uniform(&[5]), None);
        assert_eq!(chi_square_uniform(&[0, 0]), None);
    }

    #[test]
    fn chi_square_pvalue_behaviour() {
        // Near-zero statistic: p close to 1; huge statistic: p close to 0.
        assert!(chi_square_pvalue(0.1, 5) > 0.9);
        assert!(chi_square_pvalue(100.0, 5) < 1e-6);
        // Median of chi2(10) is ≈ 9.34: p ≈ 0.5.
        let p = chi_square_pvalue(9.34, 10);
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn jarque_bera_zero_for_normal_moments() {
        assert_eq!(jarque_bera(1000, 0.0, 0.0), 0.0);
        assert!(jarque_bera(1000, 1.0, 0.0) > jarque_bera(100, 1.0, 0.0));
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &a), Some(0.0));
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_distance(&a, &b), Some(1.0));
    }

    #[test]
    fn ks_known_value() {
        // F_a jumps to 1 at 1; F_b jumps 0.5 at 1 and 1.0 at 2: D = 0.5.
        let a = [1.0, 1.0];
        let b = [1.0, 2.0];
        assert_eq!(ks_distance(&a, &b), Some(0.5));
    }

    #[test]
    fn ks_empty_is_none() {
        assert_eq!(ks_distance(&[], &[1.0]), None);
        assert_eq!(ks_distance(&[1.0], &[]), None);
        assert_eq!(ks_distance(&[f64::NAN], &[1.0]), None);
    }

    #[test]
    fn ks_symmetric() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &b), ks_distance(&b, &a));
    }
}
