//! Mid-rank computation with tie handling.
//!
//! Spearman correlation is Pearson over ranks; ties receive the average of
//! the ranks they span (the "fractional ranking" Pandas uses by default).

/// 1-based mid-ranks of `values`. NaNs receive NaN ranks.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).filter(|&i| !values[i].is_nan()).collect();
    idx.sort_unstable_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![f64::NAN; n];
    let mut i = 0;
    // eda-lint: allow(EDA-L6) linear tie pass; the dominant comparison sort above cannot poll
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Positions i..=j are tied; mid-rank is the average of 1-based ranks.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_mid_rank() {
        // [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(ranks(&[1.0, 2.0, 2.0, 3.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied() {
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn nan_ranks_stay_nan() {
        let r = ranks(&[2.0, f64::NAN, 1.0]);
        assert_eq!(r[0], 2.0);
        assert!(r[1].is_nan());
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn empty() {
        assert!(ranks(&[]).is_empty());
    }

    #[test]
    fn rank_sum_invariant() {
        // Sum of ranks of n distinct values is n(n+1)/2 — holds with ties too.
        let vals = [4.0, 1.0, 4.0, 2.0, 9.0, 2.0, 2.0];
        let s: f64 = ranks(&vals).iter().sum();
        let n = vals.len() as f64;
        assert!((s - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }
}
