//! Cooperative-interruption probe for hot kernels.
//!
//! `eda-stats` is a dependency-free kernel crate, but its kernels run
//! inside governed scheduler tasks that can be cancelled mid-flight
//! (`eda-taskgraph::govern`). Rather than depending on the scheduler,
//! the crate exposes a process-wide probe slot: the runtime layer
//! registers a check function once ([`register`]), and kernels poll
//! [`interrupted`] at morsel boundaries — every few thousand elements —
//! bailing early when it fires. The partial result a bailed kernel
//! returns is discarded by the scheduler (the task is recorded
//! `Cancelled`/`TimedOut`), so correctness never depends on it.
//!
//! With nothing registered the probe is a single lock-free load
//! returning `false`, so standalone kernel use pays essentially nothing.

use std::sync::OnceLock;

/// The registered probe: write-once, then lock-free to read.
static PROBE: OnceLock<fn() -> bool> = OnceLock::new();

/// How many elements a kernel processes between probes. Chosen so the
/// probe overhead is invisible (one call per ~4k elements) while
/// cancellation latency stays well under a millisecond for any kernel.
pub const CHECK_INTERVAL: usize = 4096;

/// Register the interruption probe. Only the first registration in a
/// process takes effect (later ones are ignored), so a probe observed
/// once stays valid forever — kernels never race a change.
pub fn register(probe: fn() -> bool) {
    let _ = PROBE.set(probe);
}

/// Whether the current task has been asked to stop. `false` when no
/// probe is registered (standalone kernel use).
#[inline]
pub fn interrupted() -> bool {
    PROBE.get().is_some_and(|probe| probe())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::cell::Cell;

    thread_local! {
        /// Per-thread interruption flag for tests: registering a global
        /// probe would leak into sibling tests running in the same
        /// process, so the test probe consults this thread-local
        /// instead.
        pub static TEST_INTERRUPT: Cell<bool> = const { Cell::new(false) };
    }

    /// The probe test code registers: interrupted iff this thread's
    /// flag is set.
    pub fn test_probe() -> bool {
        TEST_INTERRUPT.with(Cell::get)
    }

    #[test]
    fn probe_is_consulted_per_thread() {
        register(test_probe);
        assert!(!interrupted());
        TEST_INTERRUPT.with(|f| f.set(true));
        assert!(interrupted());
        TEST_INTERRUPT.with(|f| f.set(false));
        assert!(!interrupted());
    }
}
