//! Gaussian kernel density estimation.
//!
//! Used by the univariate-numeric panel (paper Figure 2, row 2): the KDE
//! curve is drawn over the histogram. Bandwidth defaults to Silverman's
//! rule of thumb, matching the SciPy/Seaborn default the paper's plots use.

use crate::quantile::{quantile_sorted, sorted_values};

/// Silverman's rule-of-thumb bandwidth:
/// `0.9 · min(σ̂, IQR/1.34) · n^(-1/5)`.
///
/// Returns `None` when fewer than 2 distinct values make a bandwidth
/// meaningless.
pub fn silverman_bandwidth(values: &[f64]) -> Option<f64> {
    let sorted = sorted_values(values);
    let n = sorted.len();
    if n < 2 {
        return None;
    }
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let std = var.sqrt();
    let iqr = quantile_sorted(&sorted, 0.75)? - quantile_sorted(&sorted, 0.25)?;
    let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
    if spread <= 0.0 {
        return None;
    }
    Some(0.9 * spread * (n as f64).powf(-0.2))
}

/// Evaluate a Gaussian KDE on `grid_size` evenly spaced points spanning
/// `[min - 3h, max + 3h]`.
///
/// Returns `(xs, densities)`; empty vectors when the data is degenerate
/// (fewer than 2 distinct values).
pub fn kde_grid(values: &[f64], grid_size: usize) -> (Vec<f64>, Vec<f64>) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let Some(h) = silverman_bandwidth(&finite) else {
        return (Vec::new(), Vec::new());
    };
    let grid_size = grid_size.max(2);
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = min - 3.0 * h;
    let hi = max + 3.0 * h;
    let step = (hi - lo) / (grid_size - 1) as f64;
    let xs: Vec<f64> = (0..grid_size).map(|i| lo + step * i as f64).collect();
    let norm = 1.0 / (finite.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            finite
                .iter()
                .map(|&v| {
                    let z = (x - v) / h;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm
        })
        .collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_needs_spread() {
        assert!(silverman_bandwidth(&[]).is_none());
        assert!(silverman_bandwidth(&[1.0]).is_none());
        assert!(silverman_bandwidth(&[2.0; 10]).is_none());
        assert!(silverman_bandwidth(&[1.0, 2.0, 3.0]).unwrap() > 0.0);
    }

    #[test]
    fn bandwidth_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..10000).map(|i| (i % 10) as f64).collect();
        assert!(silverman_bandwidth(&large).unwrap() < silverman_bandwidth(&small).unwrap());
    }

    #[test]
    fn kde_integrates_to_one() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 31) % 100) as f64 / 10.0).collect();
        let (xs, ys) = kde_grid(&data, 256);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn kde_peak_near_mode() {
        // Cluster around 5 with a couple of distant points.
        let mut data = vec![5.0, 5.1, 4.9, 5.0, 5.05, 4.95, 5.0];
        data.push(0.0);
        data.push(10.0);
        let (xs, ys) = kde_grid(&data, 512);
        let peak_x = xs[ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        assert!((peak_x - 5.0).abs() < 0.5, "peak at {peak_x}");
    }

    #[test]
    fn kde_degenerate_data_is_empty() {
        let (xs, ys) = kde_grid(&[3.0; 5], 100);
        assert!(xs.is_empty() && ys.is_empty());
    }

    #[test]
    fn kde_ignores_non_finite() {
        let (xs, ys) = kde_grid(&[1.0, 2.0, f64::NAN, 3.0, f64::INFINITY], 64);
        assert_eq!(xs.len(), 64);
        assert!(ys.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kde_grid_is_monotone() {
        let (xs, _) = kde_grid(&[1.0, 2.0, 3.0], 32);
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }
}
