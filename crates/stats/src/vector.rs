//! Explicitly vectorizable kernel inner loops.
//!
//! Every hot kernel in this crate has two shapes:
//!
//! * the **scalar** shape — the original streaming update (Welford push,
//!   per-value histogram binning), which is what default builds ship and
//!   what the bit-identical golden tests pin; and
//! * the **vector** shape in this module — chunked fixed-width loops over
//!   [`LANES`]-wide accumulator arrays with no cross-iteration dependency,
//!   which the autovectorizer provably turns into SIMD (the `eda-kernels`
//!   microbench asserts the throughput floor), plus optional
//!   `core::arch` AVX2 intrinsics behind the `simd` cargo feature with
//!   runtime detection.
//!
//! The intrinsic and autovectorized paths are **bit-identical** to each
//! other by construction: both perform the same IEEE operations on the
//! same lane layout in the same order (Rust never contracts `mul`+`add`
//! into FMA, comparisons use the same ordered predicates, and min/max are
//! explicit compare-and-select in both), the scalar tail after the full
//! 8-lane blocks is shared code, and the final lane reduction is a shared
//! helper with a fixed association order. `tests/prop_kernels.rs`
//! property-tests that equivalence, NaN/∞ columns included.
//!
//! The vector shape is only *used* by the public kernel entry points when
//! the `simd` feature is compiled in **and** the process-wide
//! [`set_force_scalar`] override (the `engine.simd = false` knob) is not
//! set; default builds are untouched. The vector shape is always
//! *compiled*, so benchmarks and property tests can compare both paths in
//! any build.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::corr::PearsonPartial;
use crate::histogram::Histogram;
use crate::moments::Moments;

/// Accumulator width of the chunked loops: 8 × f64 = one AVX-512 register
/// or two AVX2 registers. The fallback keeps the same width so lane
/// contents (and therefore reduction order) match the intrinsic path.
pub const LANES: usize = 8;

/// Sub-block length for the multi-pass moment loops: small enough that a
/// sub-block stays in L1 across the three accumulation passes.
const SUB_BLOCK: usize = 1024;

/// Process-wide override forcing the scalar kernel shapes even when the
/// `simd` feature is compiled in. Set from the `engine.simd = false`
/// knob; reads are a single relaxed load on the slice entry points.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or un-force) the scalar kernel shapes at runtime. `true`
/// makes [`simd_enabled`] return `false` regardless of compile features.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Whether the runtime scalar override is set.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Whether kernel entry points should take the vector shape: compiled
/// with the `simd` feature and not runtime-forced to scalar. Constant
/// `false` in default builds, so the branch folds away.
#[inline]
pub fn simd_enabled() -> bool {
    cfg!(feature = "simd") && !force_scalar()
}

/// Whether the AVX2 intrinsic backends will be dispatched to (feature
/// compiled in, x86-64, and the CPU reports AVX2). Informational — the
/// fallback is bit-identical, so callers never need to branch on this.
pub fn avx2_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

// ---------------------------------------------------------------------------
// Lane accumulators for the moment kernel
// ---------------------------------------------------------------------------

/// Lane-parallel accumulator state for one chunk of the moments kernel.
///
/// The chunk is shifted by its first finite-ish value before the power
/// sums, so `s1..s4` stay well-conditioned; the shift is undone in
/// [`finish_moments`]. Three separate passes keep each loop's live
/// accumulator set inside the vector register file:
/// pass 1 = `s1..s4`, pass 2 = `cnt/sv/mn/mx`, pass 3 = the counters.
struct MomentLanes {
    s1: [f64; LANES],
    s2: [f64; LANES],
    s3: [f64; LANES],
    s4: [f64; LANES],
    cnt: [f64; LANES],
    sv: [f64; LANES],
    mn: [f64; LANES],
    mx: [f64; LANES],
    zer: [f64; LANES],
    neg: [f64; LANES],
    inf: [f64; LANES],
    nan: [f64; LANES],
}

impl MomentLanes {
    fn new() -> Self {
        MomentLanes {
            s1: [0.0; LANES],
            s2: [0.0; LANES],
            s3: [0.0; LANES],
            s4: [0.0; LANES],
            cnt: [0.0; LANES],
            sv: [0.0; LANES],
            mn: [f64::INFINITY; LANES],
            mx: [f64::NEG_INFINITY; LANES],
            zer: [0.0; LANES],
            neg: [0.0; LANES],
            inf: [0.0; LANES],
            nan: [0.0; LANES],
        }
    }
}

/// One element's contribution to pass 1 (shifted power sums) on lane `j`.
#[inline(always)]
fn lane_sums(l: &mut MomentLanes, j: usize, v: f64, shift: f64) {
    let d = if v.is_finite() { v - shift } else { 0.0 };
    let d2 = d * d;
    l.s1[j] += d;
    l.s2[j] += d2;
    l.s3[j] += d2 * d;
    l.s4[j] += d2 * d2;
}

/// One element's contribution to pass 2 (count, raw sum, extrema) on
/// lane `j`. Min/max are explicit compare-and-select (not `f64::min`)
/// so the fallback matches `vcmppd`+`vblendvpd` exactly, signed zeros
/// included.
#[inline(always)]
fn lane_extrema(l: &mut MomentLanes, j: usize, v: f64) {
    let finite = v.is_finite();
    l.cnt[j] += if finite { 1.0 } else { 0.0 };
    l.sv[j] += if finite { v } else { 0.0 };
    let vmn = if finite { v } else { f64::INFINITY };
    let vmx = if finite { v } else { f64::NEG_INFINITY };
    l.mn[j] = if vmn < l.mn[j] { vmn } else { l.mn[j] };
    l.mx[j] = if vmx > l.mx[j] { vmx } else { l.mx[j] };
}

/// One element's contribution to pass 3 (quality counters) on lane `j`.
#[inline(always)]
fn lane_counters(l: &mut MomentLanes, j: usize, v: f64) {
    let finite = v.is_finite();
    let nan = v.is_nan();
    l.zer[j] += if finite && v == 0.0 { 1.0 } else { 0.0 };
    l.neg[j] += if finite && v < 0.0 { 1.0 } else { 0.0 };
    l.nan[j] += if nan { 1.0 } else { 0.0 };
    l.inf[j] += if !finite && !nan { 1.0 } else { 0.0 };
}

/// Fallback (autovectorized) lane passes over the full-block region.
fn moment_blocks_fallback(blocks: &[f64], shift: f64, l: &mut MomentLanes) {
    // eda-lint: allow(EDA-L6) processes one CHECK_INTERVAL chunk; moments_slice polls between chunks
    for sub in blocks.chunks(SUB_BLOCK) {
        for ch in sub.chunks_exact(LANES) {
            for (j, &v) in ch.iter().enumerate() {
                lane_sums(l, j, v, shift);
            }
        }
        for ch in sub.chunks_exact(LANES) {
            for (j, &v) in ch.iter().enumerate() {
                lane_extrema(l, j, v);
            }
        }
        for ch in sub.chunks_exact(LANES) {
            for (j, &v) in ch.iter().enumerate() {
                lane_counters(l, j, v);
            }
        }
    }
}

/// Dispatch the lane passes: AVX2 intrinsics when detected, else the
/// autovectorized fallback (bit-identical either way).
fn moment_blocks(blocks: &[f64], shift: f64, l: &mut MomentLanes) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: `avx2_available` just confirmed the CPU supports the
        // target features this function is compiled with.
        unsafe { x86::moment_blocks_avx2(blocks, shift, l) };
        return;
    }
    moment_blocks_fallback(blocks, shift, l);
}

/// Reduce one lane array with the fixed association the AVX2 layout
/// implies: the two 4-lane registers fold element-wise first, then the
/// 4 partials fold pairwise.
#[inline]
fn reduce_sum(l: &[f64; LANES]) -> f64 {
    ((l[0] + l[4]) + (l[1] + l[5])) + ((l[2] + l[6]) + (l[3] + l[7]))
}

#[inline]
fn reduce_min(l: &[f64; LANES]) -> f64 {
    let mut m = l[0];
    // eda-lint: allow(EDA-L6) fixed 8-lane reduction
    for &v in &l[1..] {
        m = if v < m { v } else { m };
    }
    m
}

#[inline]
fn reduce_max(l: &[f64; LANES]) -> f64 {
    let mut m = l[0];
    // eda-lint: allow(EDA-L6) fixed 8-lane reduction
    for &v in &l[1..] {
        m = if v > m { v } else { m };
    }
    m
}

/// Convert the reduced shifted power sums into a [`Moments`] partial.
fn finish_moments(l: &MomentLanes, shift: f64) -> Moments {
    let zeros = reduce_sum(&l.zer) as u64;
    let negatives = reduce_sum(&l.neg) as u64;
    let infinites = reduce_sum(&l.inf) as u64;
    let nans = reduce_sum(&l.nan) as u64;
    let count = reduce_sum(&l.cnt) as u64;
    if count == 0 {
        return Moments {
            zeros,
            negatives,
            infinites,
            nans,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Moments::default()
        };
    }
    let s1 = reduce_sum(&l.s1);
    let s2 = reduce_sum(&l.s2);
    let s3 = reduce_sum(&l.s3);
    let s4 = reduce_sum(&l.s4);
    let n = count as f64;
    // Mean of the shifted values; central moments from shifted power sums.
    let db = s1 / n;
    let db2 = db * db;
    // m2/m4 are sums of even powers — tiny negative results are pure
    // cancellation noise and would poison sqrt/kurtosis downstream.
    let m2 = (s2 - s1 * db).max(0.0);
    let m3 = s3 - 3.0 * db * s2 + 2.0 * db2 * s1;
    let m4 = (s4 - 4.0 * db * s3 + 6.0 * db2 * s2 - 3.0 * db2 * db * s1).max(0.0);
    Moments {
        count,
        mean: shift + db,
        m2,
        m3,
        m4,
        min: reduce_min(&l.mn),
        max: reduce_max(&l.mx),
        sum: reduce_sum(&l.sv),
        zeros,
        negatives,
        infinites,
        nans,
    }
}

/// Moments of one chunk via the lane-parallel shifted-power-sum kernel.
///
/// The result is a mergeable [`Moments`] partial: callers fold chunks
/// together with [`Moments::merge`] (Pébay), which is exactly what the
/// morsel engine does with per-morsel states.
pub fn moments_chunk(values: &[f64]) -> Moments {
    if values.is_empty() {
        return Moments::new();
    }
    // Shift by the first value (when usable) so the power sums are
    // centered-ish; any finite shift keeps the algebra exact.
    let shift = if values[0].is_finite() { values[0] } else { 0.0 };
    let mut l = MomentLanes::new();
    let full = values.len() - values.len() % LANES;
    moment_blocks(&values[..full], shift, &mut l);
    // Shared scalar tail: identical code on both dispatch paths.
    // eda-lint: allow(EDA-L6) tail shorter than LANES elements
    for (j, &v) in values[full..].iter().enumerate() {
        lane_sums(&mut l, j, v, shift);
        lane_extrema(&mut l, j, v);
        lane_counters(&mut l, j, v);
    }
    finish_moments(&l, shift)
}

/// Vector-shape slice accumulation for [`Moments`]: per-chunk lane
/// kernels merged with Pébay, polling the cooperative-interruption probe
/// and reporting morsel telemetry at the same cadence as the scalar
/// entry point.
pub fn moments_slice(m: &mut Moments, values: &[f64]) {
    for chunk in values.chunks(crate::interrupt::CHECK_INTERVAL) {
        if crate::interrupt::interrupted() {
            return;
        }
        let part = moments_chunk(chunk);
        m.merge(&part);
        crate::telemetry::record_morsel(chunk.len());
    }
}

// ---------------------------------------------------------------------------
// Min/max pre-pass
// ---------------------------------------------------------------------------

/// Fallback (autovectorized) min/max lane pass.
fn minmax_blocks_fallback(blocks: &[f64], mn: &mut [f64; LANES], mx: &mut [f64; LANES]) {
    for ch in blocks.chunks_exact(LANES) {
        for (j, &v) in ch.iter().enumerate() {
            let finite = v.is_finite();
            let vmn = if finite { v } else { f64::INFINITY };
            let vmx = if finite { v } else { f64::NEG_INFINITY };
            mn[j] = if vmn < mn[j] { vmn } else { mn[j] };
            mx[j] = if vmx > mx[j] { vmx } else { mx[j] };
        }
    }
}

fn minmax_blocks(blocks: &[f64], mn: &mut [f64; LANES], mx: &mut [f64; LANES]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: AVX2 support was just confirmed by `avx2_available`.
        unsafe { x86::minmax_blocks_avx2(blocks, mn, mx) };
        return;
    }
    minmax_blocks_fallback(blocks, mn, mx);
}

/// Finite min/max of a slice in one lane-parallel pass — the range
/// pre-pass for histogram grids and box plots. Returns
/// `(+∞, -∞)` when no finite values are present (same sentinel the
/// scalar scans use).
pub fn minmax(values: &[f64]) -> (f64, f64) {
    let mut mn = [f64::INFINITY; LANES];
    let mut mx = [f64::NEG_INFINITY; LANES];
    let full = values.len() - values.len() % LANES;
    minmax_blocks(&values[..full], &mut mn, &mut mx);
    for (j, &v) in values[full..].iter().enumerate() {
        let finite = v.is_finite();
        let vmn = if finite { v } else { f64::INFINITY };
        let vmx = if finite { v } else { f64::NEG_INFINITY };
        mn[j] = if vmn < mn[j] { vmn } else { mn[j] };
        mx[j] = if vmx > mx[j] { vmx } else { mx[j] };
    }
    (reduce_min(&mn), reduce_max(&mx))
}

// ---------------------------------------------------------------------------
// Histogram fill
// ---------------------------------------------------------------------------

/// Block length of the two-pass histogram fill: pass 1 turns a block of
/// values into clamped bin indices (pure arithmetic — vectorizes), pass 2
/// scatters increments into stripe-local count arrays (breaks the
/// store-to-load dependency between equal bins in consecutive elements).
const HIST_BLOCK: usize = 1024;

/// Count-array stripes for the scatter pass.
const HIST_STRIPES: usize = 4;

/// Vector-shape histogram fill.
///
/// Differences from the scalar [`Histogram::push`] loop, both gated
/// behind the `simd` feature:
///
/// * the bin width and its reciprocal are hoisted out of the loop, and
///   the bin index is `(v - min) * inv_width` instead of
///   `(v - min) / width`. For power-of-two widths the two are identical;
///   for other widths a value mathematically *on* a bin boundary can
///   round into the neighboring bin. Counts still partition the data and
///   merge exactly — only boundary attribution can shift by one bin.
/// * out-of-range and non-finite values are classified branchlessly into
///   sentinel bins and folded into `underflow`/`overflow` at the end.
///
/// Polls the interruption probe / reports telemetry per
/// [`crate::interrupt::CHECK_INTERVAL`] chunk like every slice kernel.
pub fn histogram_fill(h: &mut Histogram, values: &[f64]) {
    if h.is_degenerate() {
        // Degenerate grids are compare-only; reuse the scalar path.
        for chunk in values.chunks(crate::interrupt::CHECK_INTERVAL) {
            if crate::interrupt::interrupted() {
                return;
            }
            for &v in chunk {
                h.push(v);
            }
            crate::telemetry::record_morsel(chunk.len());
        }
        return;
    }
    let nbins = h.nbins();
    let min = h.min;
    let max = h.max;
    let width = (max - min) / nbins as f64;
    let inv_width = 1.0 / width;
    // Sentinels: nbins = overflow, nbins+1 = underflow, nbins+2 = dropped
    // (non-finite). One stripe-set of u64 counts covers all of them.
    let stride = nbins + 3;
    let mut stripes = vec![0u64; stride * HIST_STRIPES];
    for chunk in values.chunks(crate::interrupt::CHECK_INTERVAL) {
        if crate::interrupt::interrupted() {
            return;
        }
        hist_chunk(chunk, min, max, inv_width, nbins, &mut stripes);
        crate::telemetry::record_morsel(chunk.len());
    }
    // eda-lint: allow(EDA-L6) folds HIST_STRIPES x nbins counters, independent of row count
    for s in 0..HIST_STRIPES {
        let base = s * stride;
        for b in 0..nbins {
            h.counts[b] += stripes[base + b];
        }
        h.overflow += stripes[base + nbins];
        h.underflow += stripes[base + nbins + 1];
    }
}

/// Count one chunk into the stripe arrays: AVX2 when detected, else the
/// two-pass autovectorized fallback. Stripe contents can differ between
/// the two (stripe assignment is orchestration), but the classified
/// index of every element is identical (see [`x86::hist_chunk_avx2`]),
/// and the striped counts fold into the same histogram either way.
fn hist_chunk(chunk: &[f64], min: f64, max: f64, inv_width: f64, nbins: usize, stripes: &mut [u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: `avx2_available` just confirmed the CPU supports the
        // target features this function is compiled with.
        unsafe { x86::hist_chunk_avx2(chunk, min, max, inv_width, nbins, stripes) };
        return;
    }
    hist_chunk_fallback(chunk, min, max, inv_width, nbins, stripes);
}

/// Fallback chunk counting: classify a block of indices (pass 1,
/// autovectorized), then scatter them into the four stripes (pass 2).
///
/// The stripes are split into four fixed slices so the scatter needs no
/// stripe-base multiply, and `min(cap)` (the identity — every
/// classified index is `<= cap`) makes the increments provably
/// in-bounds.
fn hist_chunk_fallback(
    chunk: &[f64],
    min: f64,
    max: f64,
    inv_width: f64,
    nbins: usize,
    stripes: &mut [u64],
) {
    let stride = nbins + 3;
    let cap = stride - 1;
    let (s0, rest) = stripes.split_at_mut(stride);
    let (s1, rest) = rest.split_at_mut(stride);
    let (s2, s3) = rest.split_at_mut(stride);
    let mut idx = [0u32; HIST_BLOCK];
    // eda-lint: allow(EDA-L6) processes one CHECK_INTERVAL chunk; histogram_fill polls between chunks
    for block in chunk.chunks(HIST_BLOCK) {
        classify_fallback(block, min, max, inv_width, nbins, &mut idx[..block.len()]);
        let mut quads = idx[..block.len()].chunks_exact(HIST_STRIPES);
        for q in &mut quads {
            s0[(q[0] as usize).min(cap)] += 1;
            s1[(q[1] as usize).min(cap)] += 1;
            s2[(q[2] as usize).min(cap)] += 1;
            s3[(q[3] as usize).min(cap)] += 1;
        }
        for (k, &b) in quads.remainder().iter().enumerate() {
            let s: &mut [u64] = match k {
                0 => s0,
                1 => s1,
                2 => s2,
                _ => s3,
            };
            s[(b as usize).min(cap)] += 1;
        }
    }
}

/// Branchless fallback classify: clamp the bin number in the f64 domain
/// (compare-and-select, not `f64::clamp`), truncate once to `u32`
/// (packed `cvttpd2dq` — the original version's early `as usize` has no
/// packed form before AVX-512 and kept the whole pass scalar), then
/// resolve the sentinels with integer selects.
fn classify_fallback(block: &[f64], min: f64, max: f64, inv_width: f64, nbins: usize, idx: &mut [u32]) {
    let cap = (nbins - 1) as f64;
    let of = nbins as u32;
    // eda-lint: allow(EDA-L6) classifies one HIST_BLOCK block
    for (dst, &v) in idx.iter_mut().zip(block) {
        let t = (v - min) * inv_width;
        let t = if t > cap { cap } else { t };
        let t = if t < 0.0 { 0.0 } else { t };
        let q = t as u32;
        let q = if v > max { of } else { q };
        let q = if v < min { of + 1 } else { q };
        let q = if v.is_finite() { q } else { of + 2 };
        *dst = q;
    }
}

// ---------------------------------------------------------------------------
// Pearson accumulation
// ---------------------------------------------------------------------------

/// Pearson partial of one chunk pair via lane-parallel shifted sums.
///
/// Pairs with NaN on either side contribute nothing, matching
/// [`PearsonPartial::push`].
pub fn pearson_chunk(x: &[f64], y: &[f64]) -> PearsonPartial {
    let len = x.len().min(y.len());
    let (x, y) = (&x[..len], &y[..len]);
    if len == 0 {
        return PearsonPartial::new();
    }
    let (sx, sy) = if !x[0].is_nan() && !y[0].is_nan() { (x[0], y[0]) } else { (0.0, 0.0) };
    let mut cnt = [0.0f64; LANES];
    let mut sdx = [0.0f64; LANES];
    let mut sdy = [0.0f64; LANES];
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    let full = len - len % LANES;
    // eda-lint: allow(EDA-L6) processes one CHECK_INTERVAL chunk; pearson_slices polls between chunks
    for (cx, cy) in x[..full].chunks_exact(LANES).zip(y[..full].chunks_exact(LANES)) {
        for (j, (&a, &b)) in cx.iter().zip(cy).enumerate() {
            let valid = !a.is_nan() && !b.is_nan();
            let dx = if valid { a - sx } else { 0.0 };
            let dy = if valid { b - sy } else { 0.0 };
            cnt[j] += if valid { 1.0 } else { 0.0 };
            sdx[j] += dx;
            sdy[j] += dy;
            sxx[j] += dx * dx;
            syy[j] += dy * dy;
            sxy[j] += dx * dy;
        }
    }
    // eda-lint: allow(EDA-L6) tail shorter than LANES elements
    for j in full..len {
        let (a, b) = (x[j], y[j]);
        let valid = !a.is_nan() && !b.is_nan();
        let dx = if valid { a - sx } else { 0.0 };
        let dy = if valid { b - sy } else { 0.0 };
        let lane = j - full;
        cnt[lane] += if valid { 1.0 } else { 0.0 };
        sdx[lane] += dx;
        sdy[lane] += dy;
        sxx[lane] += dx * dx;
        syy[lane] += dy * dy;
        sxy[lane] += dx * dy;
    }
    let n = reduce_sum(&cnt) as u64;
    if n == 0 {
        return PearsonPartial::new();
    }
    let nf = n as f64;
    let tdx = reduce_sum(&sdx);
    let tdy = reduce_sum(&sdy);
    let mean_x = sx + tdx / nf;
    let mean_y = sy + tdy / nf;
    let m2x = (reduce_sum(&sxx) - tdx * tdx / nf).max(0.0);
    let m2y = (reduce_sum(&syy) - tdy * tdy / nf).max(0.0);
    let cxy = reduce_sum(&sxy) - tdx * tdy / nf;
    PearsonPartial::from_raw(n, mean_x, mean_y, m2x, m2y, cxy)
}

/// Vector-shape paired-slice accumulation for [`PearsonPartial`], with
/// the standard interruption/telemetry cadence.
pub fn pearson_slices(p: &mut PearsonPartial, x: &[f64], y: &[f64]) {
    let len = x.len().min(y.len());
    let step = crate::interrupt::CHECK_INTERVAL;
    let mut start = 0;
    while start < len {
        if crate::interrupt::interrupted() {
            return;
        }
        let end = (start + step).min(len);
        let part = pearson_chunk(&x[start..end], &y[start..end]);
        p.merge(&part);
        crate::telemetry::record_morsel(end - start);
        start = end;
    }
}

// ---------------------------------------------------------------------------
// Nullity / boolean-indicator counting
// ---------------------------------------------------------------------------

/// Joint counts of two boolean indicator columns over their common
/// prefix: `(count_a, count_b, count_both)`.
///
/// This is the nullity-correlation inner loop: on 0/1 indicators the
/// whole Pearson accumulation collapses to three popcounts, which the
/// autovectorizer reduces with packed byte sums.
pub fn count_joint(a: &[bool], b: &[bool]) -> (u64, u64, u64) {
    let len = a.len().min(b.len());
    let (a, b) = (&a[..len], &b[..len]);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: `avx2_available` just confirmed the CPU supports the
        // target features this function is compiled with.
        return unsafe { x86::count_joint_avx2(a, b) };
    }
    count_joint_fallback(a, b)
}

/// Autovectorized fallback of [`count_joint`]: u32 lane accumulators,
/// drained every block. Counts are exact integers, so the AVX2 path is
/// trivially identical.
fn count_joint_fallback(a: &[bool], b: &[bool]) -> (u64, u64, u64) {
    let (mut na, mut nb, mut nab) = (0u64, 0u64, 0u64);
    // u32 lane accumulators, drained every block — safe for any chunk
    // length up to u32::MAX per lane, and narrow enough to vectorize.
    for (ca, cb) in a.chunks(SUB_BLOCK).zip(b.chunks(SUB_BLOCK)) {
        let mut la = [0u32; LANES];
        let mut lb = [0u32; LANES];
        let mut lab = [0u32; LANES];
        let full = ca.len() - ca.len() % LANES;
        for (ba, bb) in ca[..full].chunks_exact(LANES).zip(cb[..full].chunks_exact(LANES)) {
            for (j, (&va, &vb)) in ba.iter().zip(bb).enumerate() {
                la[j] += u32::from(va);
                lb[j] += u32::from(vb);
                lab[j] += u32::from(va && vb);
            }
        }
        for j in full..ca.len() {
            la[j - full] += u32::from(ca[j]);
            lb[j - full] += u32::from(cb[j]);
            lab[j - full] += u32::from(ca[j] && cb[j]);
        }
        na += la.iter().map(|&c| u64::from(c)).sum::<u64>();
        nb += lb.iter().map(|&c| u64::from(c)).sum::<u64>();
        nab += lab.iter().map(|&c| u64::from(c)).sum::<u64>();
    }
    (na, nb, nab)
}

/// Pearson correlation of two boolean indicator columns from exact joint
/// counts (the φ coefficient), routed through the same
/// [`PearsonPartial::finish`] degeneracy rules as the scalar path.
pub fn bool_pearson(a: &[bool], b: &[bool]) -> Option<f64> {
    let len = a.len().min(b.len()) as u64;
    if len == 0 {
        return None;
    }
    let (na, nb, nab) = count_joint(a, b);
    let n = len as f64;
    let (fa, fb, fab) = (na as f64, nb as f64, nab as f64);
    let m2x = fa * (n - fa) / n;
    let m2y = fb * (n - fb) / n;
    let cxy = fab - fa * fb / n;
    PearsonPartial::from_raw(len, fa / n, fb / n, m2x, m2y, cxy).finish()
}

// ---------------------------------------------------------------------------
// AVX2 intrinsic backends
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    //! AVX2 backends for the lane passes. Each function performs the
    //! exact IEEE operation sequence of its fallback twin on the same
    //! 8-lane layout (two `__m256d` registers per accumulator array), so
    //! results are bit-identical — no FMA, ordered non-signaling
    //! compares, and compare-and-blend min/max.

    use super::{MomentLanes, LANES};
    use std::arch::x86_64::*;

    /// Load one lane array as two 4-wide registers.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(l: &[f64; LANES]) -> (__m256d, __m256d) {
        // SAFETY: `l` is 8 contiguous f64s; unaligned loads are allowed.
        unsafe { (_mm256_loadu_pd(l.as_ptr()), _mm256_loadu_pd(l.as_ptr().add(4))) }
    }

    /// Store two 4-wide registers back into a lane array.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(l: &mut [f64; LANES], v: (__m256d, __m256d)) {
        // SAFETY: `l` is 8 contiguous f64s; unaligned stores are allowed.
        unsafe {
            _mm256_storeu_pd(l.as_mut_ptr(), v.0);
            _mm256_storeu_pd(l.as_mut_ptr().add(4), v.1);
        }
    }

    /// Fold a sub-block's eight integer lane counts into the f64 lane
    /// accumulators. Counts are small integers (≤ the sub-block length)
    /// and lane totals stay far below 2^53, so the conversion and the
    /// addition are both exact.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold_counts(dst: &mut [f64; LANES], a: __m256i, b: __m256i) {
        let mut tmp = [0u64; LANES];
        // SAFETY: `tmp` holds exactly two 256-bit lanes' worth of u64s.
        unsafe {
            _mm256_storeu_si256(tmp.as_mut_ptr().cast(), a);
            _mm256_storeu_si256(tmp.as_mut_ptr().add(4).cast(), b);
        }
        for (d, &c) in dst.iter_mut().zip(&tmp) {
            *d += c as f64;
        }
    }

    /// AVX2 twin of `moment_blocks_fallback`: the three lane passes over
    /// the full-block region, sub-blocked for L1 residency.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn moment_blocks_avx2(blocks: &[f64], shift: f64, l: &mut MomentLanes) {
        // SAFETY: all intrinsics below are AVX/AVX2, guaranteed by the
        // caller; every pointer dereference is within `blocks` or a lane
        // array.
        unsafe {
            let shift_v = _mm256_set1_pd(shift);
            let inf = _mm256_set1_pd(f64::INFINITY);
            let ninf = _mm256_set1_pd(f64::NEG_INFINITY);
            let sign = _mm256_set1_pd(-0.0);
            let one = _mm256_set1_pd(1.0);
            for sub in blocks.chunks(super::SUB_BLOCK) {
                // Pass 1: shifted power sums.
                let (mut s1a, mut s1b) = load(&l.s1);
                let (mut s2a, mut s2b) = load(&l.s2);
                let (mut s3a, mut s3b) = load(&l.s3);
                let (mut s4a, mut s4b) = load(&l.s4);
                for ch in sub.chunks_exact(LANES) {
                    let va = _mm256_loadu_pd(ch.as_ptr());
                    let vb = _mm256_loadu_pd(ch.as_ptr().add(4));
                    // finite ⇔ |v| < ∞ (ordered compare: false for NaN).
                    let fa = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, va), inf);
                    let fb = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, vb), inf);
                    let da = _mm256_and_pd(_mm256_sub_pd(va, shift_v), fa);
                    let db = _mm256_and_pd(_mm256_sub_pd(vb, shift_v), fb);
                    let d2a = _mm256_mul_pd(da, da);
                    let d2b = _mm256_mul_pd(db, db);
                    s1a = _mm256_add_pd(s1a, da);
                    s1b = _mm256_add_pd(s1b, db);
                    s2a = _mm256_add_pd(s2a, d2a);
                    s2b = _mm256_add_pd(s2b, d2b);
                    s3a = _mm256_add_pd(s3a, _mm256_mul_pd(d2a, da));
                    s3b = _mm256_add_pd(s3b, _mm256_mul_pd(d2b, db));
                    s4a = _mm256_add_pd(s4a, _mm256_mul_pd(d2a, d2a));
                    s4b = _mm256_add_pd(s4b, _mm256_mul_pd(d2b, d2b));
                }
                store(&mut l.s1, (s1a, s1b));
                store(&mut l.s2, (s2a, s2b));
                store(&mut l.s3, (s3a, s3b));
                store(&mut l.s4, (s4a, s4b));

                // Pass 2: count, raw sum, extrema.
                let (mut ca, mut cb) = load(&l.cnt);
                let (mut va_sum, mut vb_sum) = load(&l.sv);
                let (mut mna, mut mnb) = load(&l.mn);
                let (mut mxa, mut mxb) = load(&l.mx);
                for ch in sub.chunks_exact(LANES) {
                    let va = _mm256_loadu_pd(ch.as_ptr());
                    let vb = _mm256_loadu_pd(ch.as_ptr().add(4));
                    let fa = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, va), inf);
                    let fb = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, vb), inf);
                    ca = _mm256_add_pd(ca, _mm256_and_pd(one, fa));
                    cb = _mm256_add_pd(cb, _mm256_and_pd(one, fb));
                    va_sum = _mm256_add_pd(va_sum, _mm256_and_pd(va, fa));
                    vb_sum = _mm256_add_pd(vb_sum, _mm256_and_pd(vb, fb));
                    // if finite { v } else { ±∞ }: blend picks `v` where
                    // the mask is set.
                    let vmna = _mm256_blendv_pd(inf, va, fa);
                    let vmnb = _mm256_blendv_pd(inf, vb, fb);
                    let vmxa = _mm256_blendv_pd(ninf, va, fa);
                    let vmxb = _mm256_blendv_pd(ninf, vb, fb);
                    // `vminpd(a, b)` is `if a < b { a } else { b }` — the
                    // fallback's compare-and-select exactly, equal values
                    // and signed zeros included (both keep `b`), and no
                    // lane is ever NaN here (blended to ±∞ above).
                    mna = _mm256_min_pd(vmna, mna);
                    mnb = _mm256_min_pd(vmnb, mnb);
                    mxa = _mm256_max_pd(vmxa, mxa);
                    mxb = _mm256_max_pd(vmxb, mxb);
                }
                store(&mut l.cnt, (ca, cb));
                store(&mut l.sv, (va_sum, vb_sum));
                store(&mut l.mn, (mna, mnb));
                store(&mut l.mx, (mxa, mxb));

                // Pass 3: quality counters, in the integer domain. The
                // predicates are pure bit tests on IEEE-754 layout —
                // NaN ⇔ |bits| > exp-all-ones, ∞ ⇔ |bits| == it,
                // finite ⇔ |bits| < it, zero ⇔ |bits| == 0, and
                // `finite && v < 0` ⇔ sign set, finite, not −0.0 — so
                // they match the fallback's float compares exactly while
                // running off the FP ports the other two passes saturate.
                // (|bits| has the top bit clear, so signed 64-bit
                // compares agree with unsigned ones.) Each `vpsubq` of a
                // mask adds exact +1s; per-sub-block counts (≤ SUB_BLOCK)
                // fold into the f64 lanes exactly, giving bit-identical
                // lane values to the one-by-one `+= 1.0` of the fallback.
                let abs_i = _mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF);
                let exp_inf = _mm256_set1_epi64x(0x7FF0_0000_0000_0000);
                let zero_i = _mm256_setzero_si256();
                let mut za = zero_i;
                let mut zb = zero_i;
                let mut na = zero_i;
                let mut nb = zero_i;
                let mut ia = zero_i;
                let mut ib = zero_i;
                let mut qa = zero_i;
                let mut qb = zero_i;
                for ch in sub.chunks_exact(LANES) {
                    let ba = _mm256_castpd_si256(_mm256_loadu_pd(ch.as_ptr()));
                    let bb = _mm256_castpd_si256(_mm256_loadu_pd(ch.as_ptr().add(4)));
                    let aa = _mm256_and_si256(ba, abs_i);
                    let ab = _mm256_and_si256(bb, abs_i);
                    let nan_a = _mm256_cmpgt_epi64(aa, exp_inf);
                    let nan_b = _mm256_cmpgt_epi64(ab, exp_inf);
                    let inf_a = _mm256_cmpeq_epi64(aa, exp_inf);
                    let inf_b = _mm256_cmpeq_epi64(ab, exp_inf);
                    let zer_a = _mm256_cmpeq_epi64(aa, zero_i);
                    let zer_b = _mm256_cmpeq_epi64(ab, zero_i);
                    let fin_a = _mm256_cmpgt_epi64(exp_inf, aa);
                    let fin_b = _mm256_cmpgt_epi64(exp_inf, ab);
                    let sgn_a = _mm256_cmpgt_epi64(zero_i, ba);
                    let sgn_b = _mm256_cmpgt_epi64(zero_i, bb);
                    let neg_a = _mm256_andnot_si256(zer_a, _mm256_and_si256(sgn_a, fin_a));
                    let neg_b = _mm256_andnot_si256(zer_b, _mm256_and_si256(sgn_b, fin_b));
                    za = _mm256_sub_epi64(za, zer_a);
                    zb = _mm256_sub_epi64(zb, zer_b);
                    na = _mm256_sub_epi64(na, neg_a);
                    nb = _mm256_sub_epi64(nb, neg_b);
                    ia = _mm256_sub_epi64(ia, inf_a);
                    ib = _mm256_sub_epi64(ib, inf_b);
                    qa = _mm256_sub_epi64(qa, nan_a);
                    qb = _mm256_sub_epi64(qb, nan_b);
                }
                fold_counts(&mut l.zer, za, zb);
                fold_counts(&mut l.neg, na, nb);
                fold_counts(&mut l.inf, ia, ib);
                fold_counts(&mut l.nan, qa, qb);
            }
        }
    }

    /// AVX2 twin of `minmax_blocks_fallback`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn minmax_blocks_avx2(blocks: &[f64], mn: &mut [f64; LANES], mx: &mut [f64; LANES]) {
        // SAFETY: AVX2 guaranteed by the caller; all accesses stay
        // inside `blocks` / the lane arrays.
        unsafe {
            let inf = _mm256_set1_pd(f64::INFINITY);
            let ninf = _mm256_set1_pd(f64::NEG_INFINITY);
            let sign = _mm256_set1_pd(-0.0);
            let (mut mna, mut mnb) = load(mn);
            let (mut mxa, mut mxb) = load(mx);
            for ch in blocks.chunks_exact(LANES) {
                let va = _mm256_loadu_pd(ch.as_ptr());
                let vb = _mm256_loadu_pd(ch.as_ptr().add(4));
                let fa = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, va), inf);
                let fb = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_andnot_pd(sign, vb), inf);
                let vmna = _mm256_blendv_pd(inf, va, fa);
                let vmnb = _mm256_blendv_pd(inf, vb, fb);
                let vmxa = _mm256_blendv_pd(ninf, va, fa);
                let vmxb = _mm256_blendv_pd(ninf, vb, fb);
                mna = _mm256_blendv_pd(mna, vmna, _mm256_cmp_pd::<_CMP_LT_OQ>(vmna, mna));
                mnb = _mm256_blendv_pd(mnb, vmnb, _mm256_cmp_pd::<_CMP_LT_OQ>(vmnb, mnb));
                mxa = _mm256_blendv_pd(mxa, vmxa, _mm256_cmp_pd::<_CMP_GT_OQ>(vmxa, mxa));
                mxb = _mm256_blendv_pd(mxb, vmxb, _mm256_cmp_pd::<_CMP_GT_OQ>(vmxb, mxb));
            }
            store(mn, (mna, mnb));
            store(mx, (mxa, mxb));
        }
    }

    /// Classify eight lanes into `out`. Lanes with `min <= v <= max`
    /// (an ordered compare, so NaN fails it) need no sentinel: their
    /// index is the truncated bin number with an *integer* clamp —
    /// `vcvttpd2dq` + `vpminsd` — which equals the fallback's
    /// float-domain clamp-then-truncate because both truncate the same
    /// product and cap it at the same `nbins - 1`. Groups with any
    /// out-of-range/non-finite lane (rare: a histogram grid usually
    /// spans its column) reuse `classify_fallback` for those values, so
    /// every classified index is identical to the fallback's by
    /// construction.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2. `ch` and `out` must
    /// hold at least 8 elements.
    // The hoisted splat registers travel alongside their scalar sources
    // so the rare-path fallback can reuse the scalars; a params struct
    // would only re-spill what the caller already keeps in registers.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn classify8(
        ch: &[f64],
        out: &mut [u32],
        vmin: __m256d,
        vmax: __m256d,
        vinv: __m256d,
        vcap: __m256i,
        min: f64,
        max: f64,
        inv_width: f64,
        nbins: usize,
    ) {
        // SAFETY: AVX2 guaranteed by the caller; loads stay inside the
        // 8-element group and the index store inside `out`.
        unsafe {
            let va = _mm256_loadu_pd(ch.as_ptr());
            let vb = _mm256_loadu_pd(ch.as_ptr().add(4));
            let in_a = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(va, vmin),
                _mm256_cmp_pd::<_CMP_LE_OQ>(va, vmax),
            );
            let in_b = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(vb, vmin),
                _mm256_cmp_pd::<_CMP_LE_OQ>(vb, vmax),
            );
            if _mm256_movemask_pd(_mm256_and_pd(in_a, in_b)) == 0xF {
                let ta = _mm256_mul_pd(_mm256_sub_pd(va, vmin), vinv);
                let tb = _mm256_mul_pd(_mm256_sub_pd(vb, vmin), vinv);
                // t >= 0 (v >= min), so only the upper clamp is live;
                // the two 4-lane truncations clamp as one 8-lane min.
                let q = _mm256_min_epi32(
                    _mm256_set_m128i(_mm256_cvttpd_epi32(tb), _mm256_cvttpd_epi32(ta)),
                    vcap,
                );
                _mm256_storeu_si256(out.as_mut_ptr().cast(), q);
            } else {
                super::classify_fallback(&ch[..8], min, max, inv_width, nbins, &mut out[..8]);
            }
        }
    }

    /// Scatter sixteen classified indices into the four stripes — one
    /// stripe per quad lane, so equal bins in consecutive elements hit
    /// different counts. `min(cap)` is the identity (every index is
    /// `<= cap`) and makes the increments provably in-bounds.
    #[inline(always)]
    fn scatter16(idx: &[u32], s0: &mut [u64], s1: &mut [u64], s2: &mut [u64], s3: &mut [u64], cap: usize) {
        for q in idx.chunks_exact(4) {
            s0[(q[0] as usize).min(cap)] += 1;
            s1[(q[1] as usize).min(cap)] += 1;
            s2[(q[2] as usize).min(cap)] += 1;
            s3[(q[3] as usize).min(cap)] += 1;
        }
    }

    /// AVX2 twin of `hist_chunk_fallback`, software-pipelined: group
    /// `g`'s sixteen lanes are classified (FP-port work) while group
    /// `g - 1`'s indices are scattered (load/store-port work), so the
    /// two halves overlap instead of running as separate passes. The
    /// one-group gap matters: scattering indices the classify just
    /// stored reads a 4-byte slice of a 32-byte store still in the
    /// store buffer, and that store-to-load forwarding latency chains
    /// every iteration (measured ~12% slower than no fusion at all).
    /// Ping-ponging between the two halves of a 32-entry stage buffer
    /// gives every store a full classify round to drain.
    ///
    /// Classified indices are identical to `hist_chunk_fallback`'s by
    /// construction (see [`classify8`]) — and since stripe counts fold
    /// by addition, the resulting histogram is too.
    ///
    /// `stripes` must hold `HIST_STRIPES` stripes of `nbins + 3`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn hist_chunk_avx2(
        chunk: &[f64],
        min: f64,
        max: f64,
        inv_width: f64,
        nbins: usize,
        stripes: &mut [u64],
    ) {
        let stride = nbins + 3;
        let cap = stride - 1;
        let (s0, rest) = stripes.split_at_mut(stride);
        let (s1, rest) = rest.split_at_mut(stride);
        let (s2, s3) = rest.split_at_mut(stride);
        let mut stage = [0u32; 32];
        let mut pairs = chunk.chunks_exact(16);
        let mut g = 0usize;
        // SAFETY: AVX2 guaranteed by the caller (classify8's contract).
        unsafe {
            let vmin = _mm256_set1_pd(min);
            let vmax = _mm256_set1_pd(max);
            let vinv = _mm256_set1_pd(inv_width);
            let vcap = _mm256_set1_epi32(nbins as i32 - 1);
            for p in &mut pairs {
                let off = (g & 1) * 16;
                classify8(&p[..8], &mut stage[off..], vmin, vmax, vinv, vcap, min, max, inv_width, nbins);
                classify8(&p[8..], &mut stage[off + 8..], vmin, vmax, vinv, vcap, min, max, inv_width, nbins);
                if g > 0 {
                    let prev = ((g & 1) ^ 1) * 16;
                    scatter16(&stage[prev..prev + 16], s0, s1, s2, s3, cap);
                }
                g += 1;
            }
        }
        if g > 0 {
            let last = ((g - 1) & 1) * 16;
            scatter16(&stage[last..last + 16], s0, s1, s2, s3, cap);
        }
        let rem = pairs.remainder();
        super::classify_fallback(rem, min, max, inv_width, nbins, &mut stage[..rem.len()]);
        for (k, &b) in stage[..rem.len()].iter().enumerate() {
            let s: &mut [u64] = match k & 3 {
                0 => s0,
                1 => s1,
                2 => s2,
                _ => s3,
            };
            s[(b as usize).min(cap)] += 1;
        }
    }

    /// AVX2 twin of `count_joint_fallback`: `bool` is guaranteed one
    /// byte holding 0 or 1, so the three counts are three packed byte
    /// sums (`vpsadbw` against zero) over `a`, `b`, and `a & b`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2. Slices must be equal
    /// length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_joint_avx2(a: &[bool], b: &[bool]) -> (u64, u64, u64) {
        let len = a.len().min(b.len());
        // SAFETY: `bool` has size 1 and is always 0x00 or 0x01.
        let ab = unsafe { std::slice::from_raw_parts(a.as_ptr().cast::<u8>(), len) };
        let bb = unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u8>(), len) };
        let full = len - len % 32;
        let (mut na, mut nb, mut nab);
        // SAFETY: AVX2 guaranteed by the caller; loads stay inside the
        // 32-byte chunks.
        unsafe {
            let zero = _mm256_setzero_si256();
            let mut sa = zero;
            let mut sb = zero;
            let mut sab = zero;
            for (ca, cb) in ab[..full].chunks_exact(32).zip(bb[..full].chunks_exact(32)) {
                let va = _mm256_loadu_si256(ca.as_ptr().cast());
                let vb = _mm256_loadu_si256(cb.as_ptr().cast());
                let vab = _mm256_and_si256(va, vb);
                sa = _mm256_add_epi64(sa, _mm256_sad_epu8(va, zero));
                sb = _mm256_add_epi64(sb, _mm256_sad_epu8(vb, zero));
                sab = _mm256_add_epi64(sab, _mm256_sad_epu8(vab, zero));
            }
            na = hsum_epi64(sa);
            nb = hsum_epi64(sb);
            nab = hsum_epi64(sab);
        }
        for i in full..len {
            na += u64::from(ab[i]);
            nb += u64::from(bb[i]);
            nab += u64::from(ab[i] & bb[i]);
        }
        (na, nb, nab)
    }

    /// Sum the four u64 lanes of a `__m256i`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is 32 contiguous bytes; unaligned store allowed.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        lanes[0].wrapping_add(lanes[1]).wrapping_add(lanes[2]).wrapping_add(lanes[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 10.0 - 40.0).collect()
    }

    #[test]
    fn moments_chunk_matches_scalar() {
        let vals = data(1037);
        let scalar = {
            let mut m = Moments::new();
            for &v in &vals {
                m.push(v);
            }
            m
        };
        let vector = moments_chunk(&vals);
        assert_eq!(vector.count, scalar.count);
        assert_eq!(vector.zeros, scalar.zeros);
        assert_eq!(vector.negatives, scalar.negatives);
        assert_eq!(vector.min, scalar.min);
        assert_eq!(vector.max, scalar.max);
        assert!(close(vector.mean, scalar.mean, 1e-12));
        assert!(close(vector.m2, scalar.m2, 1e-9));
        assert!(close(vector.m3, scalar.m3, 1e-7));
        assert!(close(vector.m4, scalar.m4, 1e-7));
    }

    #[test]
    fn moments_chunk_quality_counters() {
        let vals = vec![0.0, -1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0, f64::NAN];
        let m = moments_chunk(&vals);
        assert_eq!(m.count, 3);
        assert_eq!(m.zeros, 1);
        assert_eq!(m.negatives, 1);
        assert_eq!(m.nans, 2);
        assert_eq!(m.infinites, 2);
        assert_eq!(m.min, -1.5);
        assert_eq!(m.max, 2.0);
    }

    #[test]
    fn moments_chunk_all_nan_leading() {
        // First element non-finite exercises the 0.0 shift path.
        let m = moments_chunk(&[f64::NAN, 1.0, 2.0, 3.0]);
        assert_eq!(m.count, 3);
        assert!(close(m.mean, 2.0, 1e-12));
    }

    #[test]
    fn minmax_matches_scalar_scan() {
        let mut vals = data(517);
        vals[13] = f64::NAN;
        vals[400] = f64::INFINITY;
        let (mn, mx) = minmax(&vals);
        let mut smn = f64::INFINITY;
        let mut smx = f64::NEG_INFINITY;
        for &v in &vals {
            if v.is_finite() {
                smn = smn.min(v);
                smx = smx.max(v);
            }
        }
        assert_eq!((mn, mx), (smn, smx));
        assert_eq!(minmax(&[]), (f64::INFINITY, f64::NEG_INFINITY));
        assert_eq!(minmax(&[f64::NAN]), (f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn histogram_fill_power_of_two_width_matches_scalar() {
        // Width 128/16 = 8 = 2^3: reciprocal multiply is exact, so the
        // vector fill must match the scalar push loop bin-for-bin.
        let vals: Vec<f64> = (0..3000).map(|i| ((i * 37) % 160) as f64 - 16.0).collect();
        let mut scalar = Histogram::new(0.0, 128.0, 16);
        for &v in &vals {
            scalar.push(v);
        }
        let mut vector = Histogram::new(0.0, 128.0, 16);
        histogram_fill(&mut vector, &vals);
        assert_eq!(vector, scalar);
    }

    #[test]
    fn histogram_fill_conserves_counts() {
        let mut vals = data(2100);
        vals[7] = f64::NAN;
        vals[1009] = f64::INFINITY;
        let mut h = Histogram::new(-40.0, 59.0, 13);
        histogram_fill(&mut h, &vals);
        assert_eq!(h.total() + h.underflow + h.overflow, 2100 - 2);
    }

    #[test]
    fn histogram_fill_degenerate_grid() {
        let mut h = Histogram::new(5.0, 5.0, 4);
        histogram_fill(&mut h, &[5.0, 5.0, 4.0, 6.0, f64::NAN]);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn pearson_chunk_matches_scalar() {
        let x = data(701);
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v * 0.5 + (i % 7) as f64).collect();
        let mut scalar = PearsonPartial::new();
        for (a, b) in x.iter().zip(&y) {
            scalar.push(*a, *b);
        }
        let vector = pearson_chunk(&x, &y);
        assert_eq!(vector.n, scalar.n);
        let (sf, vf) = (scalar.finish().unwrap(), vector.finish().unwrap());
        assert!(close(sf, vf, 1e-10), "{sf} vs {vf}");
    }

    #[test]
    fn pearson_chunk_skips_nan_pairs() {
        let x = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, f64::NAN, 8.0, 10.0];
        let p = pearson_chunk(&x, &y);
        assert_eq!(p.n, 3);
        assert!(close(p.finish().unwrap(), 1.0, 1e-12));
    }

    #[test]
    fn count_joint_matches_naive() {
        let a: Vec<bool> = (0..1500).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..1500).map(|i| i % 5 == 0).collect();
        let (na, nb, nab) = count_joint(&a, &b);
        assert_eq!(na, a.iter().filter(|&&x| x).count() as u64);
        assert_eq!(nb, b.iter().filter(|&&x| x).count() as u64);
        assert_eq!(nab, a.iter().zip(&b).filter(|(&x, &y)| x && y).count() as u64);
    }

    #[test]
    fn bool_pearson_matches_float_pearson() {
        let a: Vec<bool> = (0..400).map(|i| (i * 7) % 11 < 4).collect();
        let b: Vec<bool> = (0..400).map(|i| (i * 13) % 17 < 9).collect();
        let fa: Vec<f64> = a.iter().map(|&x| f64::from(u8::from(x))).collect();
        let fb: Vec<f64> = b.iter().map(|&x| f64::from(u8::from(x))).collect();
        let expect = crate::pearson(&fa, &fb).unwrap();
        let got = bool_pearson(&a, &b).unwrap();
        assert!(close(expect, got, 1e-12));
        // Constant indicator: undefined correlation both ways.
        assert_eq!(bool_pearson(&[true; 10], &a[..10]), None);
    }

    #[test]
    fn force_scalar_round_trip() {
        assert!(!force_scalar());
        set_force_scalar(true);
        assert!(!simd_enabled());
        set_force_scalar(false);
        assert_eq!(simd_enabled(), cfg!(feature = "simd"));
    }

    #[cfg(feature = "simd")]
    #[test]
    fn avx2_bit_identical_to_fallback() {
        // The dispatch test: run the block passes both ways on data with
        // every value class and require exact equality of all lanes.
        let mut vals = data(4096);
        vals[3] = f64::NAN;
        vals[100] = f64::INFINITY;
        vals[101] = f64::NEG_INFINITY;
        vals[500] = 0.0;
        vals[501] = -0.0;
        let shift = vals[0];
        let mut lf = MomentLanes::new();
        moment_blocks_fallback(&vals, shift, &mut lf);
        let mut ld = MomentLanes::new();
        moment_blocks(&vals, shift, &mut ld);
        let mf = finish_moments(&lf, shift);
        let md = finish_moments(&ld, shift);
        assert_eq!(mf, md);

        let mut mn_f = [f64::INFINITY; LANES];
        let mut mx_f = [f64::NEG_INFINITY; LANES];
        minmax_blocks_fallback(&vals, &mut mn_f, &mut mx_f);
        let mut mn_d = [f64::INFINITY; LANES];
        let mut mx_d = [f64::NEG_INFINITY; LANES];
        minmax_blocks(&vals, &mut mn_d, &mut mx_d);
        assert_eq!(mn_f, mn_d);
        assert_eq!(mx_f, mx_d);
    }

    #[cfg(feature = "simd")]
    #[test]
    fn hist_and_joint_avx2_bit_identical_to_fallback() {
        // Histogram: a grid narrower than the data range so every path
        // fires (in-range fast path, underflow, overflow, non-finite),
        // on an odd length so both tail shapes run. The stripes fold to
        // the same per-bin counts regardless of stripe assignment.
        let mut vals = data(4097);
        vals[3] = f64::NAN;
        vals[100] = f64::INFINITY;
        vals[101] = f64::NEG_INFINITY;
        vals[500] = 0.0;
        vals[501] = -0.0;
        let nbins = 13;
        let (min, max) = (-30.0, 40.0);
        let inv_width = nbins as f64 / (max - min);
        let stride = nbins + 3;
        let fold = |stripes: &[u64]| -> Vec<u64> {
            (0..stride).map(|b| (0..HIST_STRIPES).map(|s| stripes[s * stride + b]).sum()).collect()
        };
        let mut sd = vec![0u64; stride * HIST_STRIPES];
        hist_chunk(&vals, min, max, inv_width, nbins, &mut sd);
        let mut sf = vec![0u64; stride * HIST_STRIPES];
        hist_chunk_fallback(&vals, min, max, inv_width, nbins, &mut sf);
        assert_eq!(fold(&sd), fold(&sf));
        assert_eq!(fold(&sd).iter().sum::<u64>(), vals.len() as u64);

        // Joint nullity counts are exact integers: dispatch == fallback.
        let a: Vec<bool> = (0..997).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..997).map(|i| i * 7 % 5 != 0).collect();
        assert_eq!(count_joint(&a, &b), count_joint_fallback(&a, &b));
    }
}
