//! Missing-value analysis kernels.
//!
//! `plot_missing(df)` (paper Figure 2, row 8) shows four views of nullity:
//! a per-column bar chart, a *missing spectrum* (which row ranges are
//! missing-heavy), a nullity correlation heatmap, and a dendrogram grouping
//! columns by co-missingness. These kernels work on per-column null
//! indicator vectors and are independent of the dataframe crate.

use crate::corr::pearson;

/// Per-column missing-rate summary for the bar chart.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingSummary {
    /// Column label.
    pub label: String,
    /// Null count.
    pub nulls: usize,
    /// Total rows.
    pub total: usize,
}

impl MissingSummary {
    /// Fraction of rows missing.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.nulls as f64 / self.total as f64
        }
    }
}

/// The missing spectrum: row-bin × column missing counts.
///
/// Rows are grouped into `bins` contiguous ranges; each cell counts the
/// nulls of one column within one range, which visualizes *where* in the
/// file the missing values cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingSpectrum {
    /// Column labels.
    pub labels: Vec<String>,
    /// Half-open row ranges, one per bin.
    pub row_ranges: Vec<(usize, usize)>,
    /// `bins × columns` null counts, row-major by bin.
    pub counts: Vec<Vec<usize>>,
}

/// Compute the missing spectrum from null-indicator vectors
/// (`true` = missing).
pub fn missing_spectrum(columns: &[(String, Vec<bool>)], bins: usize) -> MissingSpectrum {
    let labels: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
    let nrows = columns.first().map_or(0, |(_, v)| v.len());
    let bins = bins.max(1).min(nrows.max(1));
    let chunk = nrows.div_ceil(bins).max(1);
    let mut row_ranges = Vec::new();
    let mut counts = Vec::new();
    let mut start = 0;
    while start < nrows {
        let end = (start + chunk).min(nrows);
        row_ranges.push((start, end));
        counts.push(
            columns
                .iter()
                .map(|(_, nulls)| nulls[start..end].iter().filter(|&&b| b).count())
                .collect(),
        );
        start = end;
    }
    if nrows == 0 {
        row_ranges.push((0, 0));
        counts.push(vec![0; columns.len()]);
    }
    MissingSpectrum { labels, row_ranges, counts }
}

/// Nullity correlation matrix: Pearson correlation between the null
/// indicators of column pairs (the Missingno heatmap).
///
/// Columns with no nulls (or all nulls) have undefined correlation and
/// yield `None` cells.
pub fn nullity_correlation(columns: &[(String, Vec<bool>)]) -> Vec<Vec<Option<f64>>> {
    let m = columns.len();
    let mut out = vec![vec![None; m]; m];
    if crate::vector::simd_enabled() {
        // Vector shape: on 0/1 indicators Pearson collapses to three
        // popcounts per pair — no float materialization at all.
        for i in 0..m {
            out[i][i] = Some(1.0);
            for j in (i + 1)..m {
                let r = crate::vector::bool_pearson(&columns[i].1, &columns[j].1);
                out[i][j] = r;
                out[j][i] = r;
            }
        }
        return out;
    }
    let indicators: Vec<Vec<f64>> = columns
        .iter()
        .map(|(_, nulls)| nulls.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
        .collect();
    for i in 0..m {
        out[i][i] = Some(1.0);
        for j in (i + 1)..m {
            let r = pearson(&indicators[i], &indicators[j]);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

/// One merge step of the dendrogram: clusters `a` and `b` joined at
/// `distance`, forming cluster `a.min(b)`'s successor.
#[derive(Debug, Clone, PartialEq)]
pub struct DendrogramMerge {
    /// Index of the first merged cluster (column index or earlier merge id).
    pub left: usize,
    /// Index of the second merged cluster.
    pub right: usize,
    /// Join distance.
    pub distance: f64,
    /// Number of leaves under the new cluster.
    pub size: usize,
}

/// Agglomerative clustering (average linkage) of columns by nullity
/// pattern distance.
///
/// Distance between columns is the fraction of rows where their null
/// indicators disagree (normalized Hamming distance). Merge ids follow the
/// SciPy convention: leaves are `0..m`, the `k`-th merge creates id `m+k`.
pub fn nullity_dendrogram(columns: &[(String, Vec<bool>)]) -> Vec<DendrogramMerge> {
    let m = columns.len();
    if m < 2 {
        return Vec::new();
    }
    let nrows = columns[0].1.len().max(1);

    // Pairwise distances between active clusters; clusters hold leaf sets.
    let mut clusters: Vec<Option<Vec<usize>>> = (0..m).map(|i| Some(vec![i])).collect();
    let mut ids: Vec<usize> = (0..m).collect();
    let base: Vec<Vec<f64>> = {
        let mut d = vec![vec![0.0; m]; m];
        for i in 0..m {
            for j in (i + 1)..m {
                let disagree = columns[i]
                    .1
                    .iter()
                    .zip(&columns[j].1)
                    .filter(|(a, b)| a != b)
                    .count();
                let dist = disagree as f64 / nrows as f64;
                d[i][j] = dist;
                d[j][i] = dist;
            }
        }
        d
    };

    let avg_dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut sum = 0.0;
        for &i in a {
            for &j in b {
                sum += base[i][j];
            }
        }
        sum / (a.len() * b.len()) as f64
    };

    let mut merges = Vec::with_capacity(m - 1);
    let mut next_id = m;
    for _ in 0..(m - 1) {
        // Find the closest active pair (deterministic tie-break by index).
        let mut best: Option<(usize, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // paired index access below
        for i in 0..clusters.len() {
            let Some(a) = &clusters[i] else { continue };
            for j in (i + 1)..clusters.len() {
                let Some(b) = &clusters[j] else { continue };
                let d = avg_dist(a, b);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        // `m - 1` merge rounds over `m` initial clusters always leave an
        // active pair; if that invariant ever breaks, stop merging early
        // (a truncated dendrogram) rather than panic mid-report.
        let Some((i, j, d)) = best else { break };
        let (Some(a), Some(b)) = (clusters[i].take(), clusters[j].take()) else { break };
        let size = a.len() + b.len();
        merges.push(DendrogramMerge { left: ids[i], right: ids[j], distance: d, size });
        let mut merged = a;
        merged.extend(b);
        clusters.push(Some(merged));
        ids.push(next_id);
        next_id += 1;
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nulls(pattern: &str) -> Vec<bool> {
        pattern.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn summary_rate() {
        let s = MissingSummary { label: "a".into(), nulls: 3, total: 12 };
        assert!((s.rate() - 0.25).abs() < 1e-12);
        let z = MissingSummary { label: "b".into(), nulls: 0, total: 0 };
        assert_eq!(z.rate(), 0.0);
    }

    #[test]
    fn spectrum_counts_by_bin() {
        let cols = vec![
            ("a".into(), nulls("11000000")),
            ("b".into(), nulls("00000011")),
        ];
        let sp = missing_spectrum(&cols, 2);
        assert_eq!(sp.row_ranges, vec![(0, 4), (4, 8)]);
        assert_eq!(sp.counts[0], vec![2, 0]);
        assert_eq!(sp.counts[1], vec![0, 2]);
    }

    #[test]
    fn spectrum_more_bins_than_rows() {
        let cols = vec![("a".into(), nulls("10"))];
        let sp = missing_spectrum(&cols, 10);
        assert_eq!(sp.row_ranges.len(), 2);
        let total: usize = sp.counts.iter().map(|r| r[0]).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn spectrum_empty_frame() {
        let cols = vec![("a".into(), Vec::new())];
        let sp = missing_spectrum(&cols, 4);
        assert_eq!(sp.row_ranges, vec![(0, 0)]);
        assert_eq!(sp.counts, vec![vec![0]]);
    }

    #[test]
    fn nullity_corr_detects_co_missingness() {
        let cols = vec![
            ("a".into(), nulls("11001100")),
            ("b".into(), nulls("11001100")), // identical pattern: r = 1
            ("c".into(), nulls("00110011")), // inverted: r = -1
            ("d".into(), nulls("00000000")), // no nulls: undefined
        ];
        let m = nullity_correlation(&cols);
        assert!((m[0][1].unwrap() - 1.0).abs() < 1e-12);
        assert!((m[0][2].unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(m[0][3], None);
        assert_eq!(m[3][3], Some(1.0));
    }

    #[test]
    fn dendrogram_merges_similar_columns_first() {
        let cols = vec![
            ("a".into(), nulls("11110000")),
            ("b".into(), nulls("11100000")), // distance 1/8 to a
            ("c".into(), nulls("00001111")), // far from both
        ];
        let merges = nullity_dendrogram(&cols);
        assert_eq!(merges.len(), 2);
        // First merge is a+b (leaves 0 and 1).
        assert_eq!((merges[0].left, merges[0].right), (0, 1));
        assert!((merges[0].distance - 0.125).abs() < 1e-12);
        assert_eq!(merges[0].size, 2);
        // Second merge joins leaf 2 with cluster id 3 (= m + 0).
        assert_eq!(merges[1].right, 3);
        assert_eq!(merges[1].left, 2);
        assert_eq!(merges[1].size, 3);
    }

    #[test]
    fn dendrogram_degenerate() {
        assert!(nullity_dendrogram(&[]).is_empty());
        assert!(nullity_dendrogram(&[("a".into(), nulls("10"))]).is_empty());
    }

    #[test]
    fn dendrogram_identical_columns_distance_zero() {
        let cols = vec![
            ("a".into(), nulls("1010")),
            ("b".into(), nulls("1010")),
        ];
        let merges = nullity_dendrogram(&cols);
        assert_eq!(merges[0].distance, 0.0);
    }
}
