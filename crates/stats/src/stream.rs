//! Mergeable per-column sketches for streaming (out-of-core) folds.
//!
//! A [`FrameSketch`] summarises a table — or one chunk of a larger
//! stream — with mergeable per-column accumulators: [`Moments`] for
//! numeric columns and a [`FreqTable`] for categoricals/booleans, plus
//! null counts everywhere. Every piece merges associatively, so folding
//! chunk sketches in any grouping yields the sketch of the whole
//! stream; the chunked reader in `eda-io` exploits this to compute
//! overview statistics over files that never fit in memory.
//!
//! This crate stays dependency-free, so sketches are fed from value
//! iterators, not frames — `eda-io` adapts columns to these entry
//! points.

use std::collections::BTreeMap;

use crate::freq::FreqTable;
use crate::moments::Moments;

/// Mergeable summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSketch {
    /// Numeric column (`f64` or `i64` source): streaming moments.
    Numeric {
        /// Moments over the valid, finite values.
        moments: Moments,
        /// Number of null slots.
        nulls: u64,
    },
    /// Categorical or boolean column: value frequencies.
    Categorical {
        /// Category counts (`FreqTable::nulls` tracks the null slots).
        freq: FreqTable,
    },
}

impl ColumnSketch {
    /// Sketch numeric values; `None` items are nulls.
    pub fn from_numeric<I: IntoIterator<Item = Option<f64>>>(values: I) -> ColumnSketch {
        let mut moments = Moments::new();
        let mut nulls = 0u64;
        for v in values {
            match v {
                Some(v) => moments.push(v),
                None => nulls += 1,
            }
        }
        ColumnSketch::Numeric { moments, nulls }
    }

    /// Sketch categorical values; `None` items are nulls.
    pub fn from_categorical<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> ColumnSketch {
        let mut freq = FreqTable::new();
        for v in values {
            freq.push(v);
        }
        ColumnSketch::Categorical { freq }
    }

    /// Merge `other` into `self`. Numeric merges numeric, categorical
    /// merges categorical. A mixed pair means two chunks disagreed on a
    /// column's type (one saw ints where another saw text); the
    /// categorical side wins, mirroring the CSV widening lattice where
    /// `Str` is the top element.
    pub fn merge(&mut self, other: &ColumnSketch) {
        match (self, other) {
            (
                ColumnSketch::Numeric { moments, nulls },
                ColumnSketch::Numeric { moments: om, nulls: on },
            ) => {
                moments.merge(om);
                *nulls += on;
            }
            (ColumnSketch::Categorical { freq }, ColumnSketch::Categorical { freq: of }) => {
                freq.merge(of)
            }
            (this, other) => {
                if matches!(other, ColumnSketch::Categorical { .. }) {
                    *this = other.clone();
                }
            }
        }
    }

    /// Rows summarised, nulls included.
    pub fn rows(&self) -> u64 {
        match self {
            ColumnSketch::Numeric { moments, nulls } => {
                moments.count + moments.nans + moments.infinites + nulls
            }
            ColumnSketch::Categorical { freq } => freq.total() + freq.nulls,
        }
    }

    /// Null slots summarised.
    pub fn nulls(&self) -> u64 {
        match self {
            ColumnSketch::Numeric { nulls, .. } => *nulls,
            ColumnSketch::Categorical { freq } => freq.nulls,
        }
    }
}

/// Mergeable summary of a whole table (or one chunk of a stream).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameSketch {
    /// Rows folded in so far.
    pub nrows: u64,
    /// Per-column sketches keyed by column name (ordered for stable
    /// reporting).
    pub columns: BTreeMap<String, ColumnSketch>,
}

impl FrameSketch {
    /// An empty sketch (identity for [`FrameSketch::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another chunk's sketch into this one. Columns are matched
    /// by name; columns only one side knows about are kept as-is.
    pub fn merge(&mut self, other: &FrameSketch) {
        self.nrows += other.nrows;
        for (name, theirs) in &other.columns {
            match self.columns.get_mut(name) {
                Some(mine) => mine.merge(theirs),
                None => {
                    self.columns.insert(name.clone(), theirs.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_numeric_merge_equals_single_pass() {
        let values: Vec<Option<f64>> =
            (0..100).map(|i| if i % 9 == 0 { None } else { Some(i as f64 * 0.5) }).collect();
        let whole = ColumnSketch::from_numeric(values.iter().copied());
        let mut folded = ColumnSketch::from_numeric(std::iter::empty());
        for part in values.chunks(7) {
            folded.merge(&ColumnSketch::from_numeric(part.iter().copied()));
        }
        let (
            ColumnSketch::Numeric { moments: a, nulls: na },
            ColumnSketch::Numeric { moments: b, nulls: nb },
        ) = (&folded, &whole)
        else {
            panic!("numeric sketches expected");
        };
        assert_eq!(na, nb);
        assert_eq!(a.count, b.count);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.m2 - b.m2).abs() < 1e-9 * b.m2.abs().max(1.0));
    }

    #[test]
    fn chunked_categorical_merge_equals_single_pass() {
        let values: Vec<Option<&str>> =
            (0..60).map(|i| [Some("a"), Some("b"), None][i % 3]).collect();
        let whole = ColumnSketch::from_categorical(values.iter().copied());
        let mut folded = ColumnSketch::from_categorical(std::iter::empty());
        for part in values.chunks(11) {
            folded.merge(&ColumnSketch::from_categorical(part.iter().copied()));
        }
        assert_eq!(folded, whole);
        assert_eq!(folded.nulls(), 20);
        assert_eq!(folded.rows(), 60);
    }

    #[test]
    fn frame_merge_is_columnwise_and_name_keyed() {
        let mut a = FrameSketch::new();
        a.nrows = 2;
        a.columns.insert("x".into(), ColumnSketch::from_numeric([Some(1.0), Some(2.0)]));
        let mut b = FrameSketch::new();
        b.nrows = 1;
        b.columns.insert("x".into(), ColumnSketch::from_numeric([Some(3.0)]));
        b.columns.insert("y".into(), ColumnSketch::from_categorical([Some("k")]));
        a.merge(&b);
        assert_eq!(a.nrows, 3);
        assert_eq!(a.columns["x"].rows(), 3);
        assert_eq!(a.columns["y"].rows(), 1);
    }

    #[test]
    fn type_disagreement_widens_to_categorical() {
        let mut s = ColumnSketch::from_numeric([Some(1.0)]);
        s.merge(&ColumnSketch::from_categorical([Some("x")]));
        assert!(matches!(s, ColumnSketch::Categorical { .. }));
    }
}
