//! Streaming, mergeable moment statistics.
//!
//! [`Moments`] accumulates the first four central moments plus the range
//! and value-quality counters in one pass, using the numerically stable
//! parallel update formulas of Pébay (2008). Two partials built over
//! disjoint partitions merge into exactly the state a single pass over the
//! union would produce (up to floating-point rounding) — the property the
//! partition-parallel pipeline relies on.

/// One-pass accumulator for count, mean, central moments m2..m4, extrema,
/// and data-quality counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Moments {
    /// Number of finite values accumulated.
    pub count: u64,
    /// Mean of finite values.
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
    /// Sum of cubed deviations.
    pub m3: f64,
    /// Sum of fourth-power deviations.
    pub m4: f64,
    /// Minimum finite value.
    pub min: f64,
    /// Maximum finite value.
    pub max: f64,
    /// Sum of finite values.
    pub sum: f64,
    /// Number of exact zeros.
    pub zeros: u64,
    /// Number of negative values.
    pub negatives: u64,
    /// Number of infinite values (excluded from the moments).
    pub infinites: u64,
    /// Number of NaN values (excluded from the moments).
    pub nans: u64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments { min: f64::INFINITY, max: f64::NEG_INFINITY, ..Default::default() }
    }

    /// Accumulate every value of a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut m = Moments::new();
        m.push_slice(values);
        m
    }

    /// Accumulate every value of a slice. The kernel layer hands columnar
    /// windows here directly — no per-value dynamic dispatch, no staging
    /// copy of the window. Polls the cooperative-interruption probe
    /// every [`crate::interrupt::CHECK_INTERVAL`] values and bails early
    /// when it fires (the scheduler discards the partial accumulator).
    ///
    /// With the `simd` feature (and no [`crate::vector::set_force_scalar`]
    /// override) this takes the lane-parallel vector shape; default
    /// builds take the scalar Welford loop bit-identically to previous
    /// releases.
    #[inline]
    pub fn push_slice(&mut self, values: &[f64]) {
        if crate::vector::simd_enabled() {
            crate::vector::moments_slice(self, values);
        } else {
            self.push_slice_scalar(values);
        }
    }

    /// The scalar [`Moments::push_slice`] shape, always available so
    /// benchmarks and property tests can compare paths in any build.
    #[inline]
    pub fn push_slice_scalar(&mut self, values: &[f64]) {
        for chunk in values.chunks(crate::interrupt::CHECK_INTERVAL) {
            if crate::interrupt::interrupted() {
                return;
            }
            for &v in chunk {
                self.push(v);
            }
            crate::telemetry::record_morsel(chunk.len());
        }
    }

    /// The vector [`Moments::push_slice`] shape (see [`crate::vector`]),
    /// always available regardless of the `simd` feature.
    #[inline]
    pub fn push_slice_vector(&mut self, values: &[f64]) {
        crate::vector::moments_slice(self, values);
    }

    /// Accumulate one value.
    #[inline]
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            self.nans += 1;
            return;
        }
        if value.is_infinite() {
            self.infinites += 1;
            return;
        }
        if value == 0.0 {
            self.zeros += 1;
        }
        if value < 0.0 {
            self.negatives += 1;
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;

        // Welford/Pébay incremental update.
        let n1 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = value - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merge another partial into this one (Pébay's pairwise formulas).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            self.zeros += other.zeros;
            self.negatives += other.negatives;
            self.infinites += other.infinites;
            self.nans += other.nans;
            return;
        }
        if self.count == 0 {
            let (zeros, negatives, infinites, nans) =
                (self.zeros, self.negatives, self.infinites, self.nans);
            *self = other.clone();
            self.zeros += zeros;
            self.negatives += negatives;
            self.infinites += infinites;
            self.nans += nans;
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let mean = self.mean + delta * nb / n;

        self.count += other.count;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.zeros += other.zeros;
        self.negatives += other.negatives;
        self.infinites += other.infinites;
        self.nans += other.nans;
    }

    /// Population variance (`m2 / n`), `None` when empty.
    pub fn variance_pop(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (`m2 / (n-1)`), `None` when fewer than 2 values.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Coefficient of variation (`std / mean`).
    pub fn cv(&self) -> Option<f64> {
        match (self.std(), self.mean) {
            (Some(s), m) if m != 0.0 => Some(s / m),
            _ => None,
        }
    }

    /// Skewness `g1 = sqrt(n) m3 / m2^{3/2}`, `None` when degenerate.
    pub fn skewness(&self) -> Option<f64> {
        if self.count < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.count as f64;
        Some(n.sqrt() * self.m3 / self.m2.powf(1.5))
    }

    /// Excess kurtosis `g2 = n m4 / m2^2 - 3`, `None` when degenerate.
    pub fn kurtosis(&self) -> Option<f64> {
        if self.count < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.count as f64;
        Some(n * self.m4 / (self.m2 * self.m2) - 3.0)
    }

    /// Range `max - min`, `None` when empty.
    pub fn range(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max - self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_moments() {
        let m = Moments::new();
        assert_eq!(m.count, 0);
        assert_eq!(m.variance(), None);
        assert_eq!(m.skewness(), None);
        assert_eq!(m.range(), None);
    }

    #[test]
    fn basic_stats() {
        let m = Moments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count, 8);
        assert!(close(m.mean, 5.0, 1e-12));
        assert!(close(m.variance_pop().unwrap(), 4.0, 1e-12));
        assert!(close(m.std().unwrap(), (32.0f64 / 7.0).sqrt(), 1e-12));
        assert_eq!(m.min, 2.0);
        assert_eq!(m.max, 9.0);
        assert_eq!(m.sum, 40.0);
        assert_eq!(m.range(), Some(7.0));
    }

    #[test]
    fn quality_counters() {
        let m = Moments::from_slice(&[0.0, -1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(m.count, 3); // 0, -1, 2
        assert_eq!(m.zeros, 1);
        assert_eq!(m.negatives, 1);
        assert_eq!(m.nans, 1);
        assert_eq!(m.infinites, 1);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let m = Moments::from_slice(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert!(close(m.skewness().unwrap(), 0.0, 1e-12));
    }

    #[test]
    fn skewness_sign() {
        // Long right tail => positive skew.
        let right = Moments::from_slice(&[1.0, 1.0, 1.0, 2.0, 10.0]);
        assert!(right.skewness().unwrap() > 0.0);
        let left = Moments::from_slice(&[-10.0, -2.0, -1.0, -1.0, -1.0]);
        assert!(left.skewness().unwrap() < 0.0);
    }

    #[test]
    fn kurtosis_of_uniform_is_negative() {
        // Discrete uniform has excess kurtosis < 0.
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = Moments::from_slice(&vals);
        assert!(m.kurtosis().unwrap() < 0.0);
    }

    #[test]
    fn constant_column_degenerate() {
        let m = Moments::from_slice(&[3.0; 10]);
        assert_eq!(m.variance().unwrap(), 0.0);
        assert_eq!(m.skewness(), None);
        assert_eq!(m.kurtosis(), None);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let whole = Moments::from_slice(&data);
        let mut merged = Moments::from_slice(&data[..313]);
        merged.merge(&Moments::from_slice(&data[313..700]));
        merged.merge(&Moments::from_slice(&data[700..]));
        assert_eq!(merged.count, whole.count);
        assert!(close(merged.mean, whole.mean, 1e-10));
        assert!(close(merged.m2, whole.m2, 1e-10));
        assert!(close(merged.m3, whole.m3, 1e-8));
        assert!(close(merged.m4, whole.m4, 1e-8));
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let mut left = a.clone();
        left.merge(&Moments::new());
        assert_eq!(left, a);
        let mut right = Moments::new();
        right.merge(&a);
        assert_eq!(right, a);
    }

    #[test]
    fn interrupted_push_slice_bails_at_chunk_boundary() {
        use crate::interrupt::{self, tests::TEST_INTERRUPT};
        interrupt::register(interrupt::tests::test_probe);
        let data = vec![1.0; interrupt::CHECK_INTERVAL * 3];

        // Probe clear: the full slice accumulates.
        let mut full = Moments::new();
        full.push_slice(&data);
        assert_eq!(full.count, data.len() as u64);

        // Probe set: the kernel bails before the first chunk.
        TEST_INTERRUPT.with(|f| f.set(true));
        let mut bailed = Moments::new();
        bailed.push_slice(&data);
        TEST_INTERRUPT.with(|f| f.set(false));
        assert_eq!(bailed.count, 0);
    }

    #[test]
    fn cv_requires_nonzero_mean() {
        let m = Moments::from_slice(&[-1.0, 1.0]);
        assert_eq!(m.cv(), None);
        let m2 = Moments::from_slice(&[1.0, 3.0]);
        assert!(m2.cv().unwrap() > 0.0);
    }
}
