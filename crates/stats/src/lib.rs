//! # eda-stats
//!
//! Statistical kernels for the `dataprep-eda` workspace (a Rust reproduction
//! of *DataPrep.EDA*, SIGMOD 2021).
//!
//! Every aggregation kernel comes in a **mergeable** form: a partial state
//! built per data partition plus a `merge` combining two partials. That is
//! what lets `eda-taskgraph` evaluate statistics partition-parallel and
//! tree-reduce the partials — the Rust analogue of running a Dask graph over
//! a chunked dataframe (paper §5.2). Convenience whole-slice entry points
//! wrap the mergeable forms.
//!
//! The kernels cover everything Figure 2 of the paper needs:
//!
//! * [`moments`] — count/mean/variance/skewness/kurtosis (+min/max/zeros/negatives/infinites)
//! * [`quantile`] — exact quantiles, IQR, box-plot statistics with outliers
//! * [`histogram`] — fixed-bin counts with mergeable partials
//! * [`kde`] — Gaussian kernel density estimates
//! * [`qq`] — normal quantile-quantile points (Acklam inverse normal CDF)
//! * [`freq`] — frequency tables, top-k, distinct counts
//! * [`rank`] — mid-rank computation with ties
//! * [`corr`] — Pearson, Spearman, Kendall's tau (Knight O(n log n)), matrices
//! * [`regression`] — simple OLS with R²
//! * [`text`] — word tokenization and string-length statistics
//! * [`missing`] — nullity correlation, missing spectrum, dendrogram clustering
//! * [`hypothesis`] — chi-square uniformity, Jarque-Bera normality,
//!   two-sample Kolmogorov-Smirnov distance
//! * [`timeseries`] — resampling, rolling means, autocorrelation (backing
//!   the paper's §7 time-series future-work task)

#![warn(missing_docs)]
// Test code asserts; the crate-wide unwrap/expect deny (see
// Cargo.toml [lints]) applies to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod corr;
pub mod freq;
pub mod histogram;
pub mod hypothesis;
pub mod interrupt;
pub mod kde;
pub mod missing;
pub mod moments;
pub mod qq;
pub mod quantile;
pub mod rank;
pub mod regression;
pub mod stream;
pub mod telemetry;
pub mod text;
pub mod timeseries;
pub mod vector;

pub use corr::{kendall_tau, pearson, spearman, CorrMatrix, CorrMethod};
pub use freq::FreqTable;
pub use histogram::Histogram;
pub use kde::kde_grid;
pub use moments::Moments;
pub use qq::{normal_qq_points, normal_quantile};
pub use quantile::{quantile_sorted, quantiles_nth, BoxPlot};
pub use regression::LinearFit;
pub use stream::{ColumnSketch, FrameSketch};
