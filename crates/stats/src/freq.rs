//! Frequency tables for categorical columns.
//!
//! A [`FreqTable`] is a mergeable value → count map. It backs bar charts,
//! pie charts, distinct counts, mode detection, and the grouped statistics
//! of the bivariate categorical panels.

use std::collections::HashMap;

/// Mergeable frequency table over owned string categories.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FreqTable {
    counts: HashMap<String, u64>,
    /// Number of null entries observed alongside the categories.
    pub nulls: u64,
}

impl FreqTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of optional categories.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> Self {
        let mut t = FreqTable::new();
        for v in values {
            t.push(v);
        }
        t
    }

    /// Accumulate one value (`None` counts as null).
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            Some(v) => *self.counts.entry(v.to_string()).or_insert(0) += 1,
            None => self.nulls += 1,
        }
    }

    /// Accumulate an owned value.
    pub fn push_owned(&mut self, value: Option<String>) {
        match value {
            Some(v) => *self.counts.entry(v).or_insert(0) += 1,
            None => self.nulls += 1,
        }
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &FreqTable) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.nulls += other.nulls;
    }

    /// Number of distinct categories.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total non-null observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count for one category (0 when absent).
    pub fn count(&self, category: &str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// The `k` most frequent `(category, count)` pairs, ties broken by
    /// category name so results are deterministic.
    pub fn top_k(&self, k: usize) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> = self
            .counts
            .iter()
            .map(|(c, &n)| (c.clone(), n))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// All `(category, count)` pairs sorted by descending count
    /// (deterministic tie-break by name).
    pub fn sorted(&self) -> Vec<(String, u64)> {
        self.top_k(usize::MAX)
    }

    /// The most frequent category and its count.
    pub fn mode(&self) -> Option<(String, u64)> {
        self.top_k(1).into_iter().next()
    }

    /// Iterate raw entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Shannon entropy (nats) of the category distribution.
    pub fn entropy(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.ln()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FreqTable {
        FreqTable::from_iter(vec![
            Some("a"),
            Some("b"),
            Some("a"),
            None,
            Some("c"),
            Some("a"),
            Some("b"),
        ])
    }

    #[test]
    fn counts_and_nulls() {
        let t = sample();
        assert_eq!(t.count("a"), 3);
        assert_eq!(t.count("b"), 2);
        assert_eq!(t.count("missing"), 0);
        assert_eq!(t.nulls, 1);
        assert_eq!(t.total(), 6);
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn top_k_is_ordered_and_deterministic() {
        let t = sample();
        assert_eq!(
            t.top_k(2),
            vec![("a".to_string(), 3), ("b".to_string(), 2)]
        );
        // Tie between b(2)… add c up to 2 and check name tie-break.
        let mut t2 = sample();
        t2.push(Some("c"));
        assert_eq!(
            t2.top_k(3),
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 2)
            ]
        );
    }

    #[test]
    fn mode() {
        assert_eq!(sample().mode(), Some(("a".to_string(), 3)));
        assert_eq!(FreqTable::new().mode(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = FreqTable::from_iter(vec![Some("a"), Some("d"), None]);
        a.merge(&b);
        assert_eq!(a.count("a"), 4);
        assert_eq!(a.count("d"), 1);
        assert_eq!(a.nulls, 2);
        assert_eq!(a.distinct(), 4);
    }

    #[test]
    fn merge_matches_single_pass() {
        let values: Vec<Option<String>> = (0..100)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some(format!("cat{}", i % 5))
                }
            })
            .collect();
        let whole = {
            let mut t = FreqTable::new();
            for v in &values {
                t.push(v.as_deref());
            }
            t
        };
        let mut merged = FreqTable::new();
        for chunk in values.chunks(13) {
            let mut part = FreqTable::new();
            for v in chunk {
                part.push(v.as_deref());
            }
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn entropy_behaviour() {
        // Uniform over 4 categories: ln(4).
        let t = FreqTable::from_iter(vec![Some("a"), Some("b"), Some("c"), Some("d")]);
        assert!((t.entropy() - 4.0f64.ln()).abs() < 1e-12);
        // Constant column: zero entropy.
        let c = FreqTable::from_iter(vec![Some("x"), Some("x")]);
        assert_eq!(c.entropy(), 0.0);
        assert_eq!(FreqTable::new().entropy(), 0.0);
    }
}
