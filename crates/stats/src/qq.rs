//! Normal quantile-quantile support.
//!
//! The univariate-numeric panel includes a normal Q-Q plot (paper Figure 2).
//! [`normal_quantile`] implements Acklam's rational approximation of the
//! standard normal inverse CDF (relative error < 1.15e-9), and
//! [`normal_qq_points`] pairs theoretical quantiles with sample quantiles.

use crate::quantile::sorted_values;

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Returns `-inf` / `+inf` at `p = 0` / `p = 1`, NaN outside `[0, 1]`.
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// CDF of the standard normal distribution (via `erf`-style approximation:
/// Abramowitz & Stegun 7.1.26, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let erf = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Q-Q points against the normal distribution fitted to the sample's mean
/// and standard deviation.
///
/// At most `max_points` evenly spaced probability levels are evaluated, so
/// huge columns still render a small plot. Returns `(theoretical, sample)`
/// pairs; empty when the data is degenerate.
pub fn normal_qq_points(values: &[f64], max_points: usize) -> Vec<(f64, f64)> {
    let sorted = sorted_values(values);
    let n = sorted.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let std = var.sqrt();
    if std <= 0.0 {
        return Vec::new();
    }
    let k = n.min(max_points.max(2));
    (0..k)
        .map(|i| {
            // Hazen plotting positions over the reduced point set.
            let p = (i as f64 + 0.5) / k as f64;
            let theoretical = mean + std * normal_quantile(p);
            // `sorted` is non-empty (n >= 2 above); a NaN point is
            // dropped by the renderer if the invariant ever breaks.
            let sample = crate::quantile::quantile_sorted(&sorted, p).unwrap_or(f64::NAN);
            (theoretical, sample)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn quantile_boundaries() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }

    #[test]
    fn quantile_is_odd_around_half() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn cdf_inverts_quantile() {
        for &p in &[0.05, 0.2, 0.5, 0.8, 0.95] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn qq_points_of_normalish_data_follow_diagonal() {
        // A symmetric triangular-ish sample: Q-Q should stay near the line.
        let mut vals = Vec::new();
        for i in 0..100 {
            let u = (i as f64 + 0.5) / 100.0;
            vals.push(normal_quantile(u) * 2.0 + 10.0);
        }
        let pts = normal_qq_points(&vals, 50);
        assert_eq!(pts.len(), 50);
        for (t, s) in pts {
            assert!((t - s).abs() < 0.3, "({t}, {s})");
        }
    }

    #[test]
    fn qq_points_degenerate_cases() {
        assert!(normal_qq_points(&[], 10).is_empty());
        assert!(normal_qq_points(&[1.0], 10).is_empty());
        assert!(normal_qq_points(&[2.0; 10], 10).is_empty());
    }

    #[test]
    fn qq_respects_max_points() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(normal_qq_points(&vals, 64).len(), 64);
        assert_eq!(normal_qq_points(&[1.0, 2.0, 3.0], 64).len(), 3);
    }
}
