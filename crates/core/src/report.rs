//! `create_report(df)`: the full profile report.
//!
//! The report covers what a Pandas-profiling report covers — overview,
//! per-variable sections, correlations, missing values — but is computed
//! the DataPrep.EDA way: **every section's statistics are planned into one
//! lazy graph**, shared subcomputations collapse (a column's histogram is
//! computed once even though the overview and its variable section both
//! show it), and the optimized graph executes once. That single-graph
//! construction is what the paper credits for the 4–20× speedups of
//! Table 2.

use std::sync::Arc;

use eda_dataframe::DataFrame;
use eda_taskgraph::graph::Payload;
use eda_taskgraph::outcome::TaskOutcome;
use eda_taskgraph::ExecStats;

use crate::api::SectionStatus;
use crate::compute::correlation::{self, numeric_columns};
use crate::compute::ctx::{un, ComputeContext};
use crate::compute::kernels::{self, ColMeta};
use crate::compute::overview::{assemble_overview, plan_overview};
use crate::compute::univariate::{
    assemble_categorical, assemble_numeric, plan_categorical, plan_numeric, CategoricalPlan,
    NumericPlan,
};
use crate::config::Config;
use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates};

use eda_stats::corr::CorrMatrix;
use eda_stats::missing::{missing_spectrum, MissingSummary};

/// One variable section of the report.
#[derive(Debug)]
pub struct VariableSection {
    /// Column name.
    pub name: String,
    /// Detected semantic type.
    pub semantic: SemanticType,
    /// The column's charts and stats (empty when the section failed).
    pub intermediates: Intermediates,
    /// The column's insights.
    pub insights: Vec<Insight>,
    /// Whether this column's statistics computed fully; `Failed` sections
    /// render as a diagnostics panel instead of charts.
    pub status: SectionStatus,
}

/// The full profile report.
///
/// Fault tolerant: a kernel panicking (or blowing its deadline) on one
/// pathological column degrades only the sections that needed that
/// kernel — everything else computes, and failed sections carry
/// diagnostics instead of charts.
#[derive(Debug)]
pub struct Report {
    /// Dataset-level overview (stats + per-column mini charts).
    pub overview: Intermediates,
    /// Health of the overview section.
    pub overview_status: SectionStatus,
    /// One section per column.
    pub variables: Vec<VariableSection>,
    /// Correlation matrices (empty when < 2 numeric columns).
    pub correlations: Vec<CorrMatrix>,
    /// Health of the correlations section.
    pub correlations_status: SectionStatus,
    /// Missing-value section.
    pub missing: Intermediates,
    /// Health of the missing-values section.
    pub missing_status: SectionStatus,
    /// All insights across sections.
    pub insights: Vec<Insight>,
    /// Execution statistics of the single shared graph (`tasks_failed`,
    /// `tasks_skipped`, and `tasks_timed_out` are non-zero on degraded
    /// runs).
    pub stats: ExecStats,
}

/// Split a section's outcomes: all payloads, or the status describing
/// the first failure (the scheduler already attributed skips to their
/// root cause). A root failure (panic / timeout) is preferred over a
/// skip so the diagnostics name the actual reason, not just "failed".
fn section_payloads(outcomes: &[TaskOutcome]) -> Result<Vec<Payload>, SectionStatus> {
    let errors = || outcomes.iter().filter_map(|o| o.error());
    let err = errors()
        .find(|e| !matches!(e.failure, eda_taskgraph::TaskFailure::Skipped { .. }))
        .or_else(|| errors().next());
    match err {
        Some(err) => Err(SectionStatus::from_task_error(err)),
        None => Ok(outcomes
            .iter()
            .map(|o| Arc::clone(o.payload().expect("no failures in section")))
            .collect()),
    }
}

impl Report {
    /// Build the report over one shared graph.
    pub fn create(df: &DataFrame, config: &Config) -> EdaResult<Report> {
        let mut ctx = ComputeContext::new(df, config);

        // ---- plan EVERYTHING into one graph --------------------------------
        let overview_plan = plan_overview(&mut ctx);

        enum VarPlan {
            Numeric(String, NumericPlan),
            Categorical(String, CategoricalPlan),
        }
        let names: Vec<String> = df.names().to_vec();
        let var_plans: Vec<VarPlan> = names
            .iter()
            .map(|name| {
                let col = df.column(name).expect("frame names");
                match detect(col, config.types.low_cardinality) {
                    SemanticType::Numerical => {
                        VarPlan::Numeric(name.clone(), plan_numeric(&mut ctx, name))
                    }
                    SemanticType::Categorical => {
                        VarPlan::Categorical(name.clone(), plan_categorical(&mut ctx, name))
                    }
                }
            })
            .collect();

        let corr_names = numeric_columns(&ctx);
        // One matrix node per method: the O(n log n) per-column prep and
        // the per-pair coefficients run inside the graph (parallel and
        // cacheable); only insight filtering stays eager.
        let corr_nodes: Vec<_> = if corr_names.len() >= 2 {
            correlation::plan_matrix_nodes(&mut ctx, &corr_names)
        } else {
            Vec::new()
        };

        let missing_metas: Vec<_> = names
            .iter()
            .map(|n| kernels::col_meta(&mut ctx, n, None))
            .collect();
        let missing_indicators: Vec<_> = names
            .iter()
            .map(|n| kernels::null_indicator(&mut ctx, n))
            .collect();

        // ---- execute once ---------------------------------------------------
        let mut outputs = overview_plan.outputs();
        let var_ranges: Vec<(usize, usize)> = var_plans
            .iter()
            .map(|p| {
                let start = outputs.len();
                match p {
                    VarPlan::Numeric(_, plan) => outputs.extend(plan.outputs()),
                    VarPlan::Categorical(_, plan) => outputs.extend(plan.outputs()),
                }
                (start, outputs.len())
            })
            .collect();
        let corr_start = outputs.len();
        outputs.extend(&corr_nodes);
        let missing_start = outputs.len();
        outputs.extend(&missing_metas);
        outputs.extend(&missing_indicators);

        let outcomes = ctx.execute_outcomes(&outputs);
        let stats = ctx.last_stats.clone().expect("executed");

        // ---- assemble (Pandas phase), degrading per section ----------------
        // A failed kernel only takes down the sections that needed it;
        // each section checks its own slice of outcomes.
        let overview_len = overview_plan.outputs().len();
        let (overview, mut insights, overview_status) =
            match section_payloads(&outcomes[..overview_len]) {
                Ok(outs) => {
                    let (o, i) = assemble_overview(&ctx, &overview_plan, &outs);
                    (o, i, SectionStatus::Ok)
                }
                Err(status) => (Intermediates::new(), Vec::new(), status),
            };

        let mut variables = Vec::with_capacity(var_plans.len());
        for (plan, (start, end)) in var_plans.iter().zip(&var_ranges) {
            let (name, semantic) = match plan {
                VarPlan::Numeric(name, _) => (name, SemanticType::Numerical),
                VarPlan::Categorical(name, _) => (name, SemanticType::Categorical),
            };
            match section_payloads(&outcomes[*start..*end]) {
                Ok(outs) => {
                    let (ims, ins) = match plan {
                        VarPlan::Numeric(name, _) => assemble_numeric(name, config, &outs),
                        VarPlan::Categorical(name, _) => {
                            assemble_categorical(name, config, &outs)
                        }
                    };
                    insights.extend(ins.iter().cloned());
                    variables.push(VariableSection {
                        name: name.clone(),
                        semantic,
                        intermediates: ims,
                        insights: ins,
                        status: SectionStatus::Ok,
                    });
                }
                Err(status) => variables.push(VariableSection {
                    name: name.clone(),
                    semantic,
                    intermediates: Intermediates::new(),
                    insights: Vec::new(),
                    status,
                }),
            }
        }

        let (correlations, correlations_status) = if corr_names.len() >= 2 {
            match section_payloads(&outcomes[corr_start..corr_start + corr_nodes.len()]) {
                Ok(outs) => {
                    let matrices: Vec<CorrMatrix> =
                        outs.iter().map(|p| un::<CorrMatrix>(p).clone()).collect();
                    for m in &matrices {
                        for (a, b, r) in m.strong_pairs(config.insight.correlation) {
                            if let Some(i) = crate::insights::correlation_insight(
                                &a,
                                &b,
                                m.method.name(),
                                r,
                                &config.insight,
                            ) {
                                insights.push(i);
                            }
                        }
                    }
                    (matrices, SectionStatus::Ok)
                }
                Err(status) => (Vec::new(), status),
            }
        } else {
            (Vec::new(), SectionStatus::Ok)
        };

        let (missing, missing_status) = match section_payloads(&outcomes[missing_start..]) {
            Ok(outs) => {
                let mut missing = Intermediates::new();
                let summaries: Vec<MissingSummary> = names
                    .iter()
                    .zip(&outs[..names.len()])
                    .map(|(n, p)| {
                        let meta = un::<ColMeta>(p);
                        MissingSummary { label: n.clone(), nulls: meta.nulls, total: meta.len }
                    })
                    .collect();
                missing.push("missing_bar_chart", Inter::MissingBars(summaries));
                let indicator_cols: Vec<(String, Vec<bool>)> = names
                    .iter()
                    .zip(&outs[names.len()..])
                    .map(|(n, p)| (n.clone(), un::<Vec<bool>>(p).clone()))
                    .collect();
                missing.push(
                    "missing_spectrum",
                    Inter::Spectrum(missing_spectrum(&indicator_cols, config.spectrum.bins)),
                );
                missing.push(
                    "nullity_correlation",
                    Inter::NullityCorr {
                        labels: names.clone(),
                        cells: eda_stats::missing::nullity_correlation(&indicator_cols),
                    },
                );
                missing.push(
                    "dendrogram",
                    Inter::Dendrogram {
                        labels: names.clone(),
                        merges: eda_stats::missing::nullity_dendrogram(&indicator_cols),
                    },
                );
                (missing, SectionStatus::Ok)
            }
            Err(status) => (Intermediates::new(), status),
        };

        // Keep the correlation module's labels helper honest.
        debug_assert!(correlation::matrix_labels(&Intermediates::new()).is_empty());

        // On profiled runs, replace each failed section's coarse run-level
        // elapsed with the root-cause task's own span duration.
        let refine = |status: SectionStatus| -> SectionStatus {
            match (&stats.trace, status) {
                (Some(trace), SectionStatus::Failed { error, root_task, elapsed }) => {
                    let elapsed = trace.elapsed_of(&root_task).unwrap_or(elapsed);
                    SectionStatus::Failed { error, root_task, elapsed }
                }
                (_, s) => s,
            }
        };
        let overview_status = refine(overview_status);
        let correlations_status = refine(correlations_status);
        let missing_status = refine(missing_status);
        for v in &mut variables {
            v.status = refine(v.status.clone());
        }

        Ok(Report {
            overview,
            overview_status,
            variables,
            correlations,
            correlations_status,
            missing,
            missing_status,
            insights,
            stats,
        })
    }

    /// Names and statuses of every degraded section (empty on a fully
    /// healthy report). Variable sections are named `"variable:<column>"`.
    pub fn failed_sections(&self) -> Vec<(String, &SectionStatus)> {
        let mut out = Vec::new();
        if !self.overview_status.is_ok() {
            out.push(("overview".to_string(), &self.overview_status));
        }
        for v in &self.variables {
            if !v.status.is_ok() {
                out.push((format!("variable:{}", v.name), &v.status));
            }
        }
        if !self.correlations_status.is_ok() {
            out.push(("correlations".to_string(), &self.correlations_status));
        }
        if !self.missing_status.is_ok() {
            out.push(("missing".to_string(), &self.missing_status));
        }
        out
    }

    /// Total number of charts/tables across all sections.
    pub fn chart_count(&self) -> usize {
        self.overview.len()
            + self
                .variables
                .iter()
                .map(|v| v.intermediates.len())
                .sum::<usize>()
            + self.correlations.len()
            + self.missing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame() -> DataFrame {
        let n = 300;
        DataFrame::new(vec![
            (
                "price".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| {
                            if i % 30 == 0 {
                                None
                            } else {
                                Some(100_000.0 + ((i * 97) % 5000) as f64)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "size".into(),
                Column::from_f64((0..n).map(|i| 30.0 + ((i * 13) % 200) as f64).collect()),
            ),
            (
                "city".into(),
                Column::from_string((0..n).map(|i| format!("city{}", i % 6)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn report_covers_all_sections() {
        let df = frame();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        assert_eq!(report.variables.len(), 3);
        assert_eq!(report.correlations.len(), 3);
        assert!(report.overview.get("stats").is_some());
        assert!(report.missing.get("dendrogram").is_some());
        assert!(report.chart_count() > 15);
    }

    #[test]
    fn report_variable_sections_match_types() {
        let df = frame();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        let price = &report.variables[0];
        assert_eq!(price.semantic, SemanticType::Numerical);
        assert!(price.intermediates.get("qq_plot").is_some());
        let city = &report.variables[2];
        assert_eq!(city.semantic, SemanticType::Categorical);
        assert!(city.intermediates.get("word_cloud").is_some());
    }

    #[test]
    fn single_graph_shares_across_sections() {
        // The overview histogram and the variable-section histogram of the
        // same column are one node: CSE hits must be substantial. The
        // cross-call cache is disabled so the comparison isolates CSE —
        // otherwise the second run over the same frame would be served
        // from the first run's cached intermediates.
        let df = frame();
        let cfg = Config::from_pairs(vec![("engine.cache_budget_bytes", "0")]).unwrap();
        let report = Report::create(&df, &cfg).unwrap();
        assert!(
            report.stats.cse_hits > 0,
            "report graph should share computations"
        );
        // With sharing disabled the same report runs more tasks.
        let no_share = Config::from_pairs(vec![
            ("engine.share_computations", "false"),
            ("engine.cache_budget_bytes", "0"),
        ])
        .unwrap();
        let unshared = Report::create(&df, &no_share).unwrap();
        assert!(
            unshared.stats.tasks_run > report.stats.tasks_run,
            "{} vs {}",
            unshared.stats.tasks_run,
            report.stats.tasks_run
        );
    }

    #[test]
    fn poisoned_column_degrades_only_its_sections() {
        let df = frame();
        let cfg = Config::default();
        // Kill every kernel touching the `city` column; price/size stay up.
        let _guard = eda_taskgraph::inject::arm(eda_taskgraph::FaultInjector::panic_on(
            "freq:city",
        ));
        let report = Report::create(&df, &cfg).unwrap();
        assert!(report.stats.tasks_failed >= 1, "{:?}", report.stats);
        let city = report.variables.iter().find(|v| v.name == "city").unwrap();
        assert!(!city.status.is_ok());
        if let SectionStatus::Failed { root_task, .. } = &city.status {
            assert!(root_task.contains("freq:city"), "{root_task}");
        }
        // Other variable sections are intact, with real content.
        let price = report.variables.iter().find(|v| v.name == "price").unwrap();
        assert!(price.status.is_ok());
        assert!(price.intermediates.get("qq_plot").is_some());
        // Correlations and missing never consume `freq:city`.
        assert!(report.correlations_status.is_ok());
        assert_eq!(report.correlations.len(), 3);
        assert!(report.missing_status.is_ok());
        let failed = report.failed_sections();
        assert!(failed.iter().any(|(n, _)| n == "variable:city"), "{failed:?}");
    }

    #[test]
    fn fully_healthy_report_has_no_failed_sections() {
        let report = Report::create(&frame(), &Config::default()).unwrap();
        assert!(report.failed_sections().is_empty());
        assert!(report.stats.fully_succeeded());
    }

    #[test]
    fn report_detects_correlation_insights() {
        // size and price correlated by construction? Use a frame where
        // they are.
        let n = 200;
        let df = DataFrame::new(vec![
            ("a".into(), Column::from_f64((0..n).map(|i| i as f64).collect())),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| 3.0 * i as f64 + 7.0).collect()),
            ),
        ])
        .unwrap();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        assert!(report
            .insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::HighCorrelation));
    }
}
