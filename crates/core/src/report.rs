//! `create_report(df)`: the full profile report.
//!
//! The report covers what a Pandas-profiling report covers — overview,
//! per-variable sections, correlations, missing values — but is computed
//! the DataPrep.EDA way: **every section's statistics are planned into one
//! lazy graph**, shared subcomputations collapse (a column's histogram is
//! computed once even though the overview and its variable section both
//! show it), and the optimized graph executes once. That single-graph
//! construction is what the paper credits for the 4–20× speedups of
//! Table 2.

use eda_dataframe::DataFrame;
use eda_taskgraph::ExecStats;

use crate::compute::correlation::{self, matrices_from_preps, numeric_columns, ColumnPrep};
use crate::compute::ctx::{un, ComputeContext};
use crate::compute::kernels::{self, ColMeta};
use crate::compute::overview::{assemble_overview, plan_overview};
use crate::compute::univariate::{
    assemble_categorical, assemble_numeric, plan_categorical, plan_numeric, CategoricalPlan,
    NumericPlan,
};
use crate::config::Config;
use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates};

use eda_stats::corr::CorrMatrix;
use eda_stats::missing::{missing_spectrum, MissingSummary};

/// One variable section of the report.
#[derive(Debug)]
pub struct VariableSection {
    /// Column name.
    pub name: String,
    /// Detected semantic type.
    pub semantic: SemanticType,
    /// The column's charts and stats.
    pub intermediates: Intermediates,
    /// The column's insights.
    pub insights: Vec<Insight>,
}

/// The full profile report.
#[derive(Debug)]
pub struct Report {
    /// Dataset-level overview (stats + per-column mini charts).
    pub overview: Intermediates,
    /// One section per column.
    pub variables: Vec<VariableSection>,
    /// Correlation matrices (empty when < 2 numeric columns).
    pub correlations: Vec<CorrMatrix>,
    /// Missing-value section.
    pub missing: Intermediates,
    /// All insights across sections.
    pub insights: Vec<Insight>,
    /// Execution statistics of the single shared graph.
    pub stats: ExecStats,
}

impl Report {
    /// Build the report over one shared graph.
    pub fn create(df: &DataFrame, config: &Config) -> EdaResult<Report> {
        let mut ctx = ComputeContext::new(df, config);

        // ---- plan EVERYTHING into one graph --------------------------------
        let overview_plan = plan_overview(&mut ctx);

        enum VarPlan {
            Numeric(String, NumericPlan),
            Categorical(String, CategoricalPlan),
        }
        let names: Vec<String> = df.names().to_vec();
        let var_plans: Vec<VarPlan> = names
            .iter()
            .map(|name| {
                let col = df.column(name).expect("frame names");
                match detect(col, config.types.low_cardinality) {
                    SemanticType::Numerical => {
                        VarPlan::Numeric(name.clone(), plan_numeric(&mut ctx, name))
                    }
                    SemanticType::Categorical => {
                        VarPlan::Categorical(name.clone(), plan_categorical(&mut ctx, name))
                    }
                }
            })
            .collect();

        let corr_names = numeric_columns(&ctx);
        let corr_gathers: Vec<_> = corr_names
            .iter()
            .map(|n| kernels::numeric_gather(&mut ctx, n))
            .collect();

        let missing_metas: Vec<_> = names
            .iter()
            .map(|n| kernels::col_meta(&mut ctx, n, None))
            .collect();
        let missing_indicators: Vec<_> = names
            .iter()
            .map(|n| kernels::null_indicator(&mut ctx, n))
            .collect();

        // ---- execute once ---------------------------------------------------
        let mut outputs = overview_plan.outputs();
        let var_ranges: Vec<(usize, usize)> = var_plans
            .iter()
            .map(|p| {
                let start = outputs.len();
                match p {
                    VarPlan::Numeric(_, plan) => outputs.extend(plan.outputs()),
                    VarPlan::Categorical(_, plan) => outputs.extend(plan.outputs()),
                }
                (start, outputs.len())
            })
            .collect();
        let corr_start = outputs.len();
        outputs.extend(&corr_gathers);
        let missing_start = outputs.len();
        outputs.extend(&missing_metas);
        outputs.extend(&missing_indicators);

        let outs = ctx.execute(&outputs);
        let stats = ctx.last_stats.clone().expect("executed");

        // ---- assemble (Pandas phase) ---------------------------------------
        let overview_len = overview_plan.outputs().len();
        let (overview, mut insights) =
            assemble_overview(&ctx, &overview_plan, &outs[..overview_len]);

        let mut variables = Vec::with_capacity(var_plans.len());
        for (plan, (start, end)) in var_plans.iter().zip(&var_ranges) {
            let slice = &outs[*start..*end];
            match plan {
                VarPlan::Numeric(name, _) => {
                    let (ims, ins) = assemble_numeric(name, config, slice);
                    insights.extend(ins.iter().cloned());
                    variables.push(VariableSection {
                        name: name.clone(),
                        semantic: SemanticType::Numerical,
                        intermediates: ims,
                        insights: ins,
                    });
                }
                VarPlan::Categorical(name, _) => {
                    let (ims, ins) = assemble_categorical(name, config, slice);
                    insights.extend(ins.iter().cloned());
                    variables.push(VariableSection {
                        name: name.clone(),
                        semantic: SemanticType::Categorical,
                        intermediates: ims,
                        insights: ins,
                    });
                }
            }
        }

        let correlations = if corr_names.len() >= 2 {
            // Shared per-column preparation (ranks + Kendall sort state),
            // then all three matrices from the preps — the same shared
            // path as plot_correlation(df).
            let preps: Vec<ColumnPrep> = outs
                [corr_start..corr_start + corr_gathers.len()]
                .iter()
                .map(|p| ColumnPrep::prepare(un::<Vec<f64>>(p).clone()))
                .collect();
            let matrices: Vec<CorrMatrix> = matrices_from_preps(&corr_names, &preps);
            for m in &matrices {
                for (a, b, r) in m.strong_pairs(config.insight.correlation) {
                    if let Some(i) = crate::insights::correlation_insight(
                        &a,
                        &b,
                        m.method.name(),
                        r,
                        &config.insight,
                    ) {
                        insights.push(i);
                    }
                }
            }
            matrices
        } else {
            Vec::new()
        };

        let mut missing = Intermediates::new();
        let metas_out = &outs[missing_start..missing_start + names.len()];
        let summaries: Vec<MissingSummary> = names
            .iter()
            .zip(metas_out)
            .map(|(n, p)| {
                let meta = un::<ColMeta>(p);
                MissingSummary { label: n.clone(), nulls: meta.nulls, total: meta.len }
            })
            .collect();
        missing.push("missing_bar_chart", Inter::MissingBars(summaries));
        let indicator_cols: Vec<(String, Vec<bool>)> = names
            .iter()
            .zip(&outs[missing_start + names.len()..])
            .map(|(n, p)| (n.clone(), un::<Vec<bool>>(p).clone()))
            .collect();
        missing.push(
            "missing_spectrum",
            Inter::Spectrum(missing_spectrum(&indicator_cols, config.spectrum.bins)),
        );
        missing.push(
            "nullity_correlation",
            Inter::NullityCorr {
                labels: names.clone(),
                cells: eda_stats::missing::nullity_correlation(&indicator_cols),
            },
        );
        missing.push(
            "dendrogram",
            Inter::Dendrogram {
                labels: names,
                merges: eda_stats::missing::nullity_dendrogram(&indicator_cols),
            },
        );

        // Keep the correlation module's labels helper honest.
        debug_assert!(correlation::matrix_labels(&Intermediates::new()).is_empty());

        Ok(Report { overview, variables, correlations, missing, insights, stats })
    }

    /// Total number of charts/tables across all sections.
    pub fn chart_count(&self) -> usize {
        self.overview.len()
            + self
                .variables
                .iter()
                .map(|v| v.intermediates.len())
                .sum::<usize>()
            + self.correlations.len()
            + self.missing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame() -> DataFrame {
        let n = 300;
        DataFrame::new(vec![
            (
                "price".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| {
                            if i % 30 == 0 {
                                None
                            } else {
                                Some(100_000.0 + ((i * 97) % 5000) as f64)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "size".into(),
                Column::from_f64((0..n).map(|i| 30.0 + ((i * 13) % 200) as f64).collect()),
            ),
            (
                "city".into(),
                Column::from_string((0..n).map(|i| format!("city{}", i % 6)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn report_covers_all_sections() {
        let df = frame();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        assert_eq!(report.variables.len(), 3);
        assert_eq!(report.correlations.len(), 3);
        assert!(report.overview.get("stats").is_some());
        assert!(report.missing.get("dendrogram").is_some());
        assert!(report.chart_count() > 15);
    }

    #[test]
    fn report_variable_sections_match_types() {
        let df = frame();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        let price = &report.variables[0];
        assert_eq!(price.semantic, SemanticType::Numerical);
        assert!(price.intermediates.get("qq_plot").is_some());
        let city = &report.variables[2];
        assert_eq!(city.semantic, SemanticType::Categorical);
        assert!(city.intermediates.get("word_cloud").is_some());
    }

    #[test]
    fn single_graph_shares_across_sections() {
        // The overview histogram and the variable-section histogram of the
        // same column are one node: CSE hits must be substantial.
        let df = frame();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        assert!(
            report.stats.cse_hits > 0,
            "report graph should share computations"
        );
        // With sharing disabled the same report runs more tasks.
        let no_share =
            Config::from_pairs(vec![("engine.share_computations", "false")]).unwrap();
        let unshared = Report::create(&df, &no_share).unwrap();
        assert!(
            unshared.stats.tasks_run > report.stats.tasks_run,
            "{} vs {}",
            unshared.stats.tasks_run,
            report.stats.tasks_run
        );
    }

    #[test]
    fn report_detects_correlation_insights() {
        // size and price correlated by construction? Use a frame where
        // they are.
        let n = 200;
        let df = DataFrame::new(vec![
            ("a".into(), Column::from_f64((0..n).map(|i| i as f64).collect())),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| 3.0 * i as f64 + 7.0).collect()),
            ),
        ])
        .unwrap();
        let cfg = Config::default();
        let report = Report::create(&df, &cfg).unwrap();
        assert!(report
            .insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::HighCorrelation));
    }
}
