//! Time-series analysis: `plot_timeseries(df, time, value)`.
//!
//! The paper's §7 names time-series analysis ("a common EDA task in
//! finance, e.g. stock price analysis") as the first future-work task for
//! the task-centric design. This module implements it with the same
//! architecture as the built-in tasks: the (time, value) pairs gather in
//! the parallel graph; the eager finish resamples the series, overlays a
//! rolling mean, computes the autocorrelation function, fits a trend
//! line, and emits insights.

use eda_stats::moments::Moments;
use eda_stats::regression::LinearFit;
use eda_stats::timeseries::{acf, resample_mean, rolling_mean};

use crate::dtype::detect;
use crate::error::{EdaError, EdaResult};
use crate::insights::{autocorr_insight, trend_insight, Insight};
use crate::intermediate::{Inter, Intermediates, StatRow};

use super::ctx::{un, ComputeContext};
use super::kernels;
use super::univariate::fmt_num;

/// Run `plot_timeseries(df, time, value)`.
///
/// `time` must be numeric (epoch seconds, ordinal dates, any monotone
/// encoding); `value` must be numeric.
pub fn compute_timeseries(
    ctx: &mut ComputeContext<'_>,
    time: &str,
    value: &str,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    for c in [time, value] {
        let col = ctx.df.column(c)?;
        if !col.dtype().is_numeric() {
            return Err(EdaError::NotNumeric(c.to_string()));
        }
        // Low-cardinality ints are still fine as time axes; only reject
        // genuinely categorical storage (strings/bools), checked above.
        let _ = detect(col, ctx.config.types.low_cardinality);
    }

    // Dask phase: gather complete pairs + value moments in one graph.
    let pairs_node = kernels::pair_values(ctx, time, value);
    let m_node = kernels::moments(ctx, value, None);
    let outs = ctx.execute_checked(&[pairs_node, m_node])?;
    let pairs = un::<Vec<(f64, f64)>>(&outs[0]);
    let moments = un::<Moments>(&outs[1]);
    if pairs.len() < 3 {
        return Err(EdaError::EmptyInput("need at least 3 complete (time, value) pairs"));
    }

    // Pandas phase: order by time, resample, smooth, correlate.
    let mut ordered = pairs.clone();
    ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs in pairs"));

    let (ts, vs) = resample_mean(&ordered, ctx.config.ts.points);
    let smooth = rolling_mean(&vs, ctx.config.ts.window);
    let correlations = acf(&vs, ctx.config.ts.max_lag);

    let mut ims = Intermediates::new();
    ims.push("line", Inter::Line { xs: ts.clone(), ys: vs.clone() });
    ims.push("rolling_mean", Inter::Line { xs: ts.clone(), ys: smooth });
    // ACF as a bar chart over lag labels.
    ims.push(
        "acf",
        Inter::Bar {
            categories: (1..=correlations.len()).map(|l| format!("lag {l}")).collect(),
            counts: correlations
                .iter()
                .map(|r| (r.abs() * 1000.0).round() as u64)
                .collect(),
            other: 0,
            total_distinct: correlations.len(),
        },
    );

    // Trend: OLS of value on time, slope normalized to σ over the range.
    let times: Vec<f64> = ordered.iter().map(|(t, _)| *t).collect();
    let values: Vec<f64> = ordered.iter().map(|(_, v)| *v).collect();
    let fit = LinearFit::fit(&times, &values);
    let mut insights = Vec::new();
    let mut stats = vec![
        StatRow::new("points", pairs.len().to_string()),
        StatRow::new(
            "time range",
            format!("{} – {}", fmt_num(times[0]), fmt_num(times[times.len() - 1])),
        ),
        StatRow::new("mean", fmt_num(moments.mean)),
        StatRow::new("std", moments.std().map_or("-".into(), fmt_num)),
    ];
    if let (Some(fit), Some(std)) = (&fit, moments.std()) {
        let range = times[times.len() - 1] - times[0];
        let normalized = if std > 0.0 { fit.slope * range / std } else { 0.0 };
        stats.push(StatRow::new("trend slope", fmt_num(fit.slope)));
        stats.push(StatRow::new("trend (σ over range)", fmt_num(normalized)));
        stats.push(StatRow::new("trend R²", fmt_num(fit.r2)));
        if let Some(i) = trend_insight(value, normalized, &ctx.config.insight) {
            insights.push(i);
        }
    }
    if let Some((lag, &r)) = correlations
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
    {
        stats.push(StatRow::new("strongest ACF", format!("lag {} (r = {r:.2})", lag + 1)));
        if let Some(i) = autocorr_insight(value, lag + 1, r, &ctx.config.insight) {
            insights.push(i);
        }
    }
    ims.push("stats", Inter::StatsTable(stats));
    Ok((ims, insights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::{Column, DataFrame};

    /// A rising series with a period-10 seasonal component.
    fn frame() -> DataFrame {
        let n = 500;
        DataFrame::new(vec![
            (
                "t".into(),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
            (
                "price".into(),
                Column::from_f64(
                    (0..n)
                        .map(|i| {
                            let trend = 0.05 * i as f64;
                            let season =
                                3.0 * (std::f64::consts::TAU * i as f64 / 10.0).sin();
                            100.0 + trend + season
                        })
                        .collect(),
                ),
            ),
            (
                "label".into(),
                Column::from_string((0..n).map(|i| format!("d{i}")).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn produces_line_rolling_acf_stats() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_timeseries(&mut ctx, "t", "price").unwrap();
        for chart in ["line", "rolling_mean", "acf", "stats"] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
        let Some(Inter::Line { xs, ys }) = ims.get("line") else { panic!() };
        assert_eq!(xs.len(), cfg.ts.points);
        assert_eq!(xs.len(), ys.len());
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "time axis sorted");
    }

    #[test]
    fn detects_trend_and_autocorrelation() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (_, insights) = compute_timeseries(&mut ctx, "t", "price").unwrap();
        assert!(insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::Trend));
    }

    #[test]
    fn rolling_mean_smooths_seasonality() {
        let df = frame();
        // Window spanning one season kills the oscillation.
        let cfg = Config::from_pairs(vec![("ts.points", "500"), ("ts.window", "11")]).unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_timeseries(&mut ctx, "t", "price").unwrap();
        let Some(Inter::Line { ys: raw, .. }) = ims.get("line") else { panic!() };
        let Some(Inter::Line { ys: smooth, .. }) = ims.get("rolling_mean") else {
            panic!()
        };
        let wiggle = |ys: &[f64]| {
            ys.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / ys.len() as f64
        };
        assert!(wiggle(smooth) < wiggle(raw) * 0.5);
    }

    #[test]
    fn rejects_non_numeric_columns() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        assert!(matches!(
            compute_timeseries(&mut ctx, "label", "price"),
            Err(EdaError::NotNumeric(_))
        ));
        let mut ctx = ComputeContext::new(&df, &cfg);
        assert!(matches!(
            compute_timeseries(&mut ctx, "t", "label"),
            Err(EdaError::NotNumeric(_))
        ));
    }

    #[test]
    fn too_few_points_errors() {
        let df = DataFrame::new(vec![
            ("t".into(), Column::from_f64(vec![1.0, 2.0])),
            ("v".into(), Column::from_f64(vec![1.0, 2.0])),
        ])
        .unwrap();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        assert!(matches!(
            compute_timeseries(&mut ctx, "t", "v"),
            Err(EdaError::EmptyInput(_))
        ));
    }

    #[test]
    fn unsorted_time_is_handled() {
        // Same data, shuffled rows: the series must come out identical.
        let df = frame();
        let n = df.nrows();
        let perm: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
        let t: Vec<f64> = perm.iter().map(|&i| i as f64).collect();
        let v: Vec<f64> = perm
            .iter()
            .map(|&i| {
                df.get(i, "price").unwrap().as_f64().unwrap()
            })
            .collect();
        let shuffled = DataFrame::new(vec![
            ("t".into(), Column::from_f64(t)),
            ("price".into(), Column::from_f64(v)),
        ])
        .unwrap();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (a, _) = compute_timeseries(&mut ctx, "t", "price").unwrap();
        let mut ctx2 = ComputeContext::new(&shuffled, &cfg);
        let (b, _) = compute_timeseries(&mut ctx2, "t", "price").unwrap();
        assert_eq!(a.get("line"), b.get("line"));
    }
}
