//! Missing-value analysis: `plot_missing` (paper Figure 2, rows 8–10).
//!
//! * `plot_missing(df)` → per-column missing bar chart, missing spectrum,
//!   nullity correlation heatmap, dendrogram.
//! * `plot_missing(df, x)` → for every other column, its distribution
//!   before vs after dropping the rows where `x` is null. The paper's
//!   Figure 5 calls this the most expensive fine-grained task ("it
//!   computes two frequency distributions for each column") — our
//!   benchmark asserts the same.
//! * `plot_missing(df, x, y)` → histogram, PDF, CDF, box plot of `y`
//!   before vs after dropping `x`'s missing rows.

use eda_stats::freq::FreqTable;
use eda_stats::histogram::Histogram;
use eda_stats::hypothesis::ks_distance;
use eda_stats::missing::{missing_spectrum, nullity_correlation, nullity_dendrogram, MissingSummary};
use eda_stats::quantile::BoxPlot;
use eda_taskgraph::NodeId;

use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::{similarity_insight, Insight};
use crate::intermediate::{Inter, Intermediates};

use super::ctx::{un, ComputeContext};
use super::kernels::{self, ColMeta};

/// Run `plot_missing(df)`.
pub fn compute_missing_overview(
    ctx: &mut ComputeContext<'_>,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    let names: Vec<String> = ctx.df.names().to_vec();
    let metas: Vec<NodeId> = names
        .iter()
        .map(|n| kernels::col_meta(ctx, n, None))
        .collect();
    let indicators: Vec<NodeId> = names
        .iter()
        .map(|n| kernels::null_indicator(ctx, n))
        .collect();
    let mut outputs = metas.clone();
    outputs.extend(&indicators);
    let outs = ctx.execute_checked(&outputs)?;

    // Pandas phase: assemble the four visualizations from the reduced
    // indicator vectors.
    let mut ims = Intermediates::new();
    let summaries: Vec<MissingSummary> = names
        .iter()
        .zip(&outs[..names.len()])
        .map(|(n, p)| {
            let meta = un::<ColMeta>(p);
            MissingSummary { label: n.clone(), nulls: meta.nulls, total: meta.len }
        })
        .collect();
    ims.push("missing_bar_chart", Inter::MissingBars(summaries));

    let indicator_cols: Vec<(String, Vec<bool>)> = names
        .iter()
        .zip(&outs[names.len()..])
        .map(|(n, p)| (n.clone(), un::<Vec<bool>>(p).clone()))
        .collect();
    ims.push(
        "missing_spectrum",
        Inter::Spectrum(missing_spectrum(&indicator_cols, ctx.config.spectrum.bins)),
    );
    ims.push(
        "nullity_correlation",
        Inter::NullityCorr {
            labels: names.clone(),
            cells: nullity_correlation(&indicator_cols),
        },
    );
    ims.push(
        "dendrogram",
        Inter::Dendrogram {
            labels: names,
            merges: nullity_dendrogram(&indicator_cols),
        },
    );
    Ok((ims, Vec::new()))
}

/// Run `plot_missing(df, x)`: before/after distributions for every other
/// column.
pub fn compute_missing_impact(
    ctx: &mut ComputeContext<'_>,
    x: &str,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    ctx.df.column(x)?; // existence check
    let others: Vec<String> = ctx
        .df
        .names()
        .iter()
        .filter(|n| n.as_str() != x)
        .cloned()
        .collect();

    // Plan both variants of every column into ONE graph — the "two
    // frequency distributions per column" the paper calls out.
    enum Plan {
        Numeric { name: String },
        Categorical { name: String },
    }
    let mut plans = Vec::with_capacity(others.len());
    let mut outputs = Vec::with_capacity(others.len() * 2);
    for name in &others {
        let col = ctx.df.column(name).expect("iterating names");
        match detect(col, ctx.config.types.low_cardinality) {
            SemanticType::Numerical => {
                // Shared bin range: the BEFORE moments anchor both.
                let m_before = kernels::moments(ctx, name, None);
                let before =
                    kernels::histogram_with_range(ctx, name, ctx.config.hist.bins, None, m_before);
                let after = kernels::histogram_with_range(
                    ctx,
                    name,
                    ctx.config.hist.bins,
                    Some(x),
                    m_before,
                );
                outputs.push(before);
                outputs.push(after);
                plans.push(Plan::Numeric { name: name.clone() });
            }
            SemanticType::Categorical => {
                let before = kernels::freq(ctx, name, None);
                let after = kernels::freq(ctx, name, Some(x));
                outputs.push(before);
                outputs.push(after);
                plans.push(Plan::Categorical { name: name.clone() });
            }
        }
    }
    let outs = ctx.execute_checked(&outputs)?;

    let mut ims = Intermediates::new();
    let mut insights = Vec::new();
    let mut cursor = 0;
    for plan in &plans {
        match plan {
            Plan::Numeric { name } => {
                let before = un::<Histogram>(&outs[cursor]);
                let after = un::<Histogram>(&outs[cursor + 1]);
                cursor += 2;
                // Similarity insight via KS over the binned distributions.
                if let Some(ks) = histogram_ks(before, after) {
                    if let Some(i) = similarity_insight(name, ks, &ctx.config.insight) {
                        insights.push(i);
                    }
                }
                ims.push(
                    format!("compare_histogram:{name}"),
                    Inter::CompareHistogram {
                        edges: before.edges(),
                        before: before.counts.clone(),
                        after: after.counts.clone(),
                    },
                );
            }
            Plan::Categorical { name } => {
                let before = un::<FreqTable>(&outs[cursor]);
                let after = un::<FreqTable>(&outs[cursor + 1]);
                cursor += 2;
                let top = before.top_k(ctx.config.bar.ngroups);
                let categories: Vec<String> = top.iter().map(|(c, _)| c.clone()).collect();
                let before_counts: Vec<u64> = top.iter().map(|(_, c)| *c).collect();
                let after_counts: Vec<u64> =
                    categories.iter().map(|c| after.count(c)).collect();
                ims.push(
                    format!("compare_bars:{name}"),
                    Inter::CompareBars {
                        categories,
                        before: before_counts,
                        after: after_counts,
                    },
                );
            }
        }
    }
    Ok((ims, insights))
}

/// Run `plot_missing(df, x, y)`.
pub fn compute_missing_pair(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    ctx.df.column(x)?;
    let ycol = ctx.df.column(y)?;
    match detect(ycol, ctx.config.types.low_cardinality) {
        SemanticType::Categorical => {
            // Categorical y: before/after bars only.
            let before = kernels::freq(ctx, y, None);
            let after = kernels::freq(ctx, y, Some(x));
            let outs = ctx.execute_checked(&[before, after])?;
            let before = un::<FreqTable>(&outs[0]);
            let after = un::<FreqTable>(&outs[1]);
            let top = before.top_k(ctx.config.bar.ngroups);
            let categories: Vec<String> = top.iter().map(|(c, _)| c.clone()).collect();
            let mut ims = Intermediates::new();
            ims.push(
                "compare_bars",
                Inter::CompareBars {
                    before: top.iter().map(|(_, c)| *c).collect(),
                    after: categories.iter().map(|c| after.count(c)).collect(),
                    categories,
                },
            );
            Ok((ims, Vec::new()))
        }
        SemanticType::Numerical => {
            let m_before = kernels::moments(ctx, y, None);
            let h_before =
                kernels::histogram_with_range(ctx, y, ctx.config.hist.bins, None, m_before);
            let h_after = kernels::histogram_with_range(
                ctx,
                y,
                ctx.config.hist.bins,
                Some(x),
                m_before,
            );
            let s_before = kernels::sorted_values(ctx, y, None);
            let s_after = kernels::sorted_values(ctx, y, Some(x));
            let outs = ctx.execute_checked(&[h_before, h_after, s_before, s_after])?;
            let hb = un::<Histogram>(&outs[0]);
            let ha = un::<Histogram>(&outs[1]);
            let sb = un::<Vec<f64>>(&outs[2]);
            let sa = un::<Vec<f64>>(&outs[3]);

            let mut ims = Intermediates::new();
            ims.push(
                "compare_histogram",
                Inter::CompareHistogram {
                    edges: hb.edges(),
                    before: hb.counts.clone(),
                    after: ha.counts.clone(),
                },
            );
            // PDF and CDF curves over the shared bin centers.
            let centers: Vec<f64> = hb.edges().windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
            for (label, hist) in [("before", hb), ("after", ha)] {
                let dens = hist.density();
                ims.push(
                    format!("pdf:{label}"),
                    Inter::Line { xs: centers.clone(), ys: dens.clone() },
                );
                let mut cum = 0.0;
                let cdf: Vec<f64> = dens
                    .iter()
                    .map(|d| {
                        cum += d;
                        cum
                    })
                    .collect();
                ims.push(
                    format!("cdf:{label}"),
                    Inter::Line { xs: centers.clone(), ys: cdf },
                );
            }
            let mut boxes = Vec::new();
            if let Some(bp) = BoxPlot::from_sorted(sb, ctx.config.box_plot.max_outliers) {
                boxes.push(("before".to_string(), bp));
            }
            if let Some(bp) = BoxPlot::from_sorted(sa, ctx.config.box_plot.max_outliers) {
                boxes.push(("after".to_string(), bp));
            }
            ims.push("box_plot", Inter::Boxes(boxes));

            let mut insights = Vec::new();
            if let Some(ks) = ks_distance(sb, sa) {
                if let Some(i) = similarity_insight(y, ks, &ctx.config.insight) {
                    insights.push(i);
                }
            }
            Ok((ims, insights))
        }
    }
}

/// KS distance between two histograms over the same grid (approximate KS
/// from binned CDFs — fine for the insight threshold).
fn histogram_ks(a: &Histogram, b: &Histogram) -> Option<f64> {
    if a.total() == 0 || b.total() == 0 {
        return None;
    }
    let (ta, tb) = (a.total() as f64, b.total() as f64);
    let (mut ca, mut cb) = (0.0, 0.0);
    let mut d: f64 = 0.0;
    for (x, y) in a.counts.iter().zip(&b.counts) {
        ca += *x as f64 / ta;
        cb += *y as f64 / tb;
        d = d.max((ca - cb).abs());
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::{Column, DataFrame};

    /// Frame where `a`'s nulls coincide with LOW values of `b`, so
    /// dropping them visibly shifts `b`'s distribution.
    fn frame() -> DataFrame {
        let n = 300;
        DataFrame::new(vec![
            (
                "a".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| if i < 60 { None } else { Some(i as f64) })
                        .collect(),
                ),
            ),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
            (
                "cat".into(),
                Column::from_opt_string(
                    (0..n)
                        .map(|i| {
                            if i % 11 == 0 {
                                None
                            } else {
                                Some(format!("g{}", i % 3))
                            }
                        })
                        .collect(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn overview_has_four_visualizations() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_missing_overview(&mut ctx).unwrap();
        for chart in [
            "missing_bar_chart",
            "missing_spectrum",
            "nullity_correlation",
            "dendrogram",
        ] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
        let Some(Inter::MissingBars(bars)) = ims.get("missing_bar_chart") else {
            panic!()
        };
        assert_eq!(bars.len(), 3);
        assert_eq!(bars[0].nulls, 60);
        let Some(Inter::Dendrogram { merges, .. }) = ims.get("dendrogram") else {
            panic!()
        };
        assert_eq!(merges.len(), 2);
    }

    #[test]
    fn impact_compares_before_and_after() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_missing_impact(&mut ctx, "a").unwrap();
        let Some(Inter::CompareHistogram { before, after, edges }) =
            ims.get("compare_histogram:b")
        else {
            panic!()
        };
        assert_eq!(edges.len(), before.len() + 1);
        let nb: u64 = before.iter().sum();
        let na: u64 = after.iter().sum();
        assert_eq!(nb, 300);
        assert_eq!(na, 240);
        // Low bins lose counts: the first bin must shrink.
        assert!(after[0] < before[0]);
        // Categorical column compared with bars.
        assert!(ims.get("compare_bars:cat").is_some());
    }

    #[test]
    fn pair_numeric_panel() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_missing_pair(&mut ctx, "a", "b").unwrap();
        for chart in [
            "compare_histogram",
            "pdf:before",
            "pdf:after",
            "cdf:before",
            "cdf:after",
            "box_plot",
        ] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
        let Some(Inter::Boxes(boxes)) = ims.get("box_plot") else { panic!() };
        assert_eq!(boxes.len(), 2);
        // Dropping low values raises the median.
        assert!(boxes[1].1.median > boxes[0].1.median);
        // CDF ends at ~1.
        let Some(Inter::Line { ys, .. }) = ims.get("cdf:before") else { panic!() };
        assert!((ys.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_categorical_panel() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_missing_pair(&mut ctx, "a", "cat").unwrap();
        let Some(Inter::CompareBars { before, after, .. }) = ims.get("compare_bars") else {
            panic!()
        };
        assert!(before.iter().sum::<u64>() > after.iter().sum::<u64>());
    }

    #[test]
    fn similarity_insight_when_mcar() {
        // Nulls spread evenly: dropping them preserves the distribution.
        let n = 400;
        let df = DataFrame::new(vec![
            (
                "a".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| if i % 10 == 0 { None } else { Some(i as f64) })
                        .collect(),
                ),
            ),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| (i % 50) as f64).collect()),
            ),
        ])
        .unwrap();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (_, insights) = compute_missing_pair(&mut ctx, "a", "b").unwrap();
        assert!(insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::SimilarDistribution));
    }

    #[test]
    fn histogram_ks_bounds() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.extend([1.0, 2.0, 3.0]);
        let mut b = Histogram::new(0.0, 10.0, 5);
        b.extend([9.0, 9.5]);
        let d = histogram_ks(&a, &b).unwrap();
        assert!(d > 0.9);
        assert!(histogram_ks(&a, &a).unwrap() < 1e-12);
        let empty = Histogram::new(0.0, 10.0, 5);
        assert!(histogram_ks(&a, &empty).is_none());
    }
}
