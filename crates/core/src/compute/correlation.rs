//! Correlation analysis: `plot_correlation` (paper Figure 2, rows 5–7).
//!
//! * `plot_correlation(df)` → Pearson, Spearman, Kendall-tau matrices over
//!   the numeric columns.
//! * `plot_correlation(df, x)` → the three correlation vectors of `x`
//!   against every other numeric column.
//! * `plot_correlation(df, x, y)` → scatter plot with a regression line.
//!
//! This module is the paper's worked example of the two-phase boundary
//! (§5.2). The heavy work — column gathers, per-column preparation
//! (ranks + Kendall sort state), and one matrix-fill task per method —
//! runs inside the graph, where it parallelizes across columns and is
//! served by the cross-call result cache on repeat calls; only the cheap
//! insight filtering stays eager. The `engine.eager_finish = false`
//! ablation pushes even the per-pair coefficient computations into the
//! graph as individual tasks, demonstrating why `n >> m` makes that
//! granularity pure scheduler overhead.

use eda_stats::corr::{
    kendall_prep, kendall_tau, kendall_tau_prepped, pearson, spearman_from_ranks, CorrMatrix,
    CorrMethod, KendallPrep,
};
use eda_stats::rank::ranks;
use eda_stats::regression::LinearFit;
use eda_taskgraph::key::TaskKey;
use eda_taskgraph::NodeId;

use crate::dtype::{detect, SemanticType};
use crate::error::{EdaError, EdaResult};
use crate::insights::{correlation_insight, Insight};
use crate::intermediate::{Inter, Intermediates};

use super::ctx::{pl, un, ComputeContext};
use super::kernels;

/// Numeric columns of the frame, in order.
pub fn numeric_columns(ctx: &ComputeContext<'_>) -> Vec<String> {
    ctx.df
        .iter()
        .filter(|(_, c)| detect(c, ctx.config.types.low_cardinality) == SemanticType::Numerical)
        .map(|(n, _)| n.to_string())
        .collect()
}

/// Run `plot_correlation(df)`.
pub fn compute_correlation_overview(
    ctx: &mut ComputeContext<'_>,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    let names = numeric_columns(ctx);
    if names.len() < 2 {
        return Err(EdaError::EmptyInput("need at least two numeric columns"));
    }
    let matrices = if ctx.config.engine.eager_finish {
        matrices_two_phase(ctx, &names)?
    } else {
        matrices_all_graph(ctx, &names)?
    };

    let mut ims = Intermediates::new();
    let mut insights = Vec::new();
    for m in matrices {
        for (a, b, r) in m.strong_pairs(ctx.config.insight.correlation) {
            if let Some(i) = correlation_insight(&a, &b, m.method.name(), r, &ctx.config.insight)
            {
                insights.push(i);
            }
        }
        ims.push(
            format!("correlation_matrix:{}", m.method.name()),
            Inter::Correlation(m),
        );
    }
    Ok((ims, insights))
}

/// Per-column state shared across every pair the column participates in —
/// the correlation-matrix instance of the paper's computation sharing.
/// Ranks back Spearman (pandas rank-once semantics); the Kendall prep
/// (sort permutation + tie counts) exists only for NaN-free columns, with
/// a per-pair fallback otherwise.
#[derive(Debug, Clone)]
pub struct ColumnPrep {
    /// Raw values, NaN at nulls.
    pub values: Vec<f64>,
    /// Mid-ranks over the non-NaN values (NaN kept at null positions).
    pub ranks: Vec<f64>,
    /// Shared Kendall state (NaN-free columns only).
    pub kendall: Option<KendallPrep>,
}

impl ColumnPrep {
    /// Build the shared state for one gathered column.
    pub fn prepare(values: Vec<f64>) -> ColumnPrep {
        let ranks = ranks(&values);
        let kendall = kendall_prep(&values);
        ColumnPrep { values, ranks, kendall }
    }
}

/// One matrix cell from two prepared columns.
fn cell(method: CorrMethod, a: &ColumnPrep, b: &ColumnPrep) -> Option<f64> {
    match method {
        CorrMethod::Pearson => pearson(&a.values, &b.values),
        CorrMethod::Spearman => spearman_from_ranks(&a.ranks, &b.ranks),
        CorrMethod::KendallTau => match (&a.kendall, &b.kendall) {
            (Some(ka), Some(kb)) => {
                kendall_tau_prepped(&a.values, &b.values, ka, kb.tie_pairs)
            }
            _ => kendall_tau(&a.values, &b.values),
        },
    }
}

/// Plan one shared `corr_prep` node for a column: the gathered values
/// fed through [`ColumnPrep::prepare`]. Shared (CSE) between the matrix
/// path and the per-pair ablation path.
pub fn plan_corr_prep(ctx: &mut ComputeContext<'_>, name: &str) -> NodeId {
    let gather = kernels::numeric_gather(ctx, name);
    let params = ctx.params(TaskKey::params(&format!("corrprep:{name}")));
    ctx.graph.op("corr_prep", params, vec![gather], |inputs| {
        pl(ColumnPrep::prepare(un::<Vec<f64>>(&inputs[0]).clone()))
    })
}

/// Plan the three correlation matrices as graph tasks: per-column prep
/// nodes feed one node per method that fills its whole `m×m` matrix.
/// The heavy O(n log n) per-column preparation and the per-pair
/// coefficients run *inside* the graph — parallel across columns, and
/// served by the cross-call result cache on repeat calls — while the
/// cheap insight filtering stays eager. Returns one node per
/// [`CorrMethod::ALL`] entry, each with a [`CorrMatrix`] payload.
pub fn plan_matrix_nodes(ctx: &mut ComputeContext<'_>, names: &[String]) -> Vec<NodeId> {
    let preps: Vec<NodeId> = names.iter().map(|n| plan_corr_prep(ctx, n)).collect();
    CorrMethod::ALL
        .iter()
        .map(|&method| {
            let labels = names.to_vec();
            let params =
                ctx.params(TaskKey::params(&format!("corrmatrix:{}", method.name())));
            ctx.graph.op("corr_matrix", params, preps.clone(), move |inputs| {
                let preps: Vec<&ColumnPrep> =
                    inputs.iter().map(un::<ColumnPrep>).collect();
                let m = preps.len();
                let mut cells = vec![None; m * m];
                for i in 0..m {
                    cells[i * m + i] = Some(1.0);
                    for j in (i + 1)..m {
                        let r = cell(method, preps[i], preps[j]);
                        cells[i * m + j] = r;
                        cells[j * m + i] = r;
                    }
                }
                pl(CorrMatrix { labels: labels.clone(), method, cells })
            })
        })
        .collect()
}

/// Two-phase path: gathers, preps, and matrix fills all run in the graph;
/// only the insight filtering happens eagerly afterwards.
fn matrices_two_phase(
    ctx: &mut ComputeContext<'_>,
    names: &[String],
) -> EdaResult<Vec<CorrMatrix>> {
    let nodes = plan_matrix_nodes(ctx, names);
    let outs = ctx.execute_checked(&nodes)?;
    Ok(outs.iter().map(|p| un::<CorrMatrix>(p).clone()).collect())
}

/// All-graph path (ablation): per-column prep nodes (shared) feed one
/// task per (method, pair); assembly still happens at the end.
fn matrices_all_graph(
    ctx: &mut ComputeContext<'_>,
    names: &[String],
) -> EdaResult<Vec<CorrMatrix>> {
    let prep_nodes: Vec<NodeId> = names.iter().map(|n| plan_corr_prep(ctx, n)).collect();
    let m = names.len();
    let mut pair_nodes: Vec<(usize, usize, CorrMethod, NodeId)> = Vec::new();
    for (mi, &method) in CorrMethod::ALL.iter().enumerate() {
        for i in 0..m {
            for j in (i + 1)..m {
                let params = ctx.params(TaskKey::params(&format!(
                    "corrcell:{mi}:{}:{}",
                    names[i], names[j]
                )));
                let node = ctx.graph.op(
                    "corr_cell",
                    params,
                    vec![prep_nodes[i], prep_nodes[j]],
                    move |inputs| {
                        let a = un::<ColumnPrep>(&inputs[0]);
                        let b = un::<ColumnPrep>(&inputs[1]);
                        pl(cell(method, a, b))
                    },
                );
                pair_nodes.push((i, j, method, node));
            }
        }
    }
    let outputs: Vec<NodeId> = pair_nodes.iter().map(|(_, _, _, n)| *n).collect();
    let outs = ctx.execute_checked(&outputs)?;
    Ok(CorrMethod::ALL
        .iter()
        .map(|&method| {
            let mut cells = vec![None; m * m];
            for i in 0..m {
                cells[i * m + i] = Some(1.0);
            }
            for ((i, j, pm, _), payload) in pair_nodes.iter().zip(&outs) {
                if *pm == method {
                    let r = *un::<Option<f64>>(payload);
                    cells[i * m + j] = r;
                    cells[j * m + i] = r;
                }
            }
            CorrMatrix { labels: names.to_vec(), method, cells }
        })
        .collect())
}

/// Run `plot_correlation(df, x)`.
pub fn compute_correlation_vector(
    ctx: &mut ComputeContext<'_>,
    x: &str,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    let col = ctx.df.column(x)?;
    if detect(col, ctx.config.types.low_cardinality) != SemanticType::Numerical {
        return Err(EdaError::NotNumeric(x.to_string()));
    }
    let names = numeric_columns(ctx);
    let others: Vec<String> = names.iter().filter(|n| *n != x).cloned().collect();
    if others.is_empty() {
        return Err(EdaError::EmptyInput("no other numeric columns"));
    }

    let gx = kernels::numeric_gather(ctx, x);
    let gathers: Vec<NodeId> = others
        .iter()
        .map(|n| kernels::numeric_gather(ctx, n))
        .collect();
    let mut outputs = vec![gx];
    outputs.extend(&gathers);
    let outs = ctx.execute_checked(&outputs)?;

    let xv = un::<Vec<f64>>(&outs[0]);
    let mut ims = Intermediates::new();
    let mut insights = Vec::new();
    let mut vectors = Vec::new();
    for &method in &CorrMethod::ALL {
        let mut entries = Vec::with_capacity(others.len());
        for (name, p) in others.iter().zip(&outs[1..]) {
            let yv = un::<Vec<f64>>(p);
            let r = method.compute(xv, yv);
            if let Some(r) = r {
                if let Some(i) =
                    correlation_insight(x, name, method.name(), r, &ctx.config.insight)
                {
                    insights.push(i);
                }
            }
            entries.push((name.clone(), r));
        }
        vectors.push((method.name().to_string(), entries));
    }
    ims.push("correlation_vectors", Inter::CorrVectors(vectors));
    Ok((ims, insights))
}

/// Run `plot_correlation(df, x, y)`.
pub fn compute_correlation_pair(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    for c in [x, y] {
        if detect(ctx.df.column(c)?, ctx.config.types.low_cardinality)
            != SemanticType::Numerical
        {
            return Err(EdaError::NotNumeric(c.to_string()));
        }
    }
    let pairs_node = kernels::pair_values(ctx, x, y);
    let pp = kernels::pearson_partial(ctx, x, y);
    let outs = ctx.execute_checked(&[pairs_node, pp])?;
    let pairs = un::<Vec<(f64, f64)>>(&outs[0]);
    let partial = un::<eda_stats::corr::PearsonPartial>(&outs[1]);

    let cap = ctx.config.scatter.sample;
    let points: Vec<(f64, f64)> = if pairs.len() > cap {
        let stride = (pairs.len() / cap).max(1);
        pairs.iter().copied().step_by(stride).take(cap).collect()
    } else {
        pairs.clone()
    };

    let mut ims = Intermediates::new();
    let mut insights = Vec::new();
    match LinearFit::from_partial(partial) {
        Some(fit) => {
            if let Some(r) = partial.finish() {
                if let Some(i) = correlation_insight(x, y, "Pearson", r, &ctx.config.insight) {
                    insights.push(i);
                }
            }
            ims.push(
                "regression_scatter",
                Inter::RegressionScatter {
                    points,
                    slope: fit.slope,
                    intercept: fit.intercept,
                    r2: fit.r2,
                },
            );
        }
        None => {
            ims.push("scatter_plot", Inter::Scatter { points, sampled: pairs.len() > cap });
        }
    }
    Ok((ims, insights))
}

/// Shared helper for tests and the report: correlation matrix labels.
pub fn matrix_labels(ims: &Intermediates) -> Vec<String> {
    match ims.get("correlation_matrix:Pearson") {
        Some(Inter::Correlation(m)) => m.labels.clone(),
        _ => Vec::new(),
    }
}

/// Eager reference implementation used by tests to validate both pipeline
/// paths: direct matrices over materialized columns.
#[doc(hidden)]
pub fn reference_matrices(
    df: &eda_dataframe::DataFrame,
    names: &[String],
) -> Vec<CorrMatrix> {
    let columns: Vec<(String, Vec<f64>)> = names
        .iter()
        .map(|n| {
            (
                n.clone(),
                df.column(n).expect("exists").to_f64_nan().expect("numeric"),
            )
        })
        .collect();
    CorrMethod::ALL
        .iter()
        .map(|&m| CorrMatrix::compute(&columns, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::{Column, DataFrame};

    fn frame() -> DataFrame {
        let n = 120;
        DataFrame::new(vec![
            (
                "a".into(),
                Column::from_f64((0..n).map(|i| i as f64).collect()),
            ),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| (i * 2) as f64 + 1.0).collect()),
            ),
            (
                "c".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| {
                            if i % 7 == 0 {
                                None
                            } else {
                                Some(((i * 31) % 17) as f64)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "city".into(),
                Column::from_string((0..n).map(|i| format!("c{}", i % 3)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn overview_has_three_matrices() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, insights) = compute_correlation_overview(&mut ctx).unwrap();
        for m in ["Pearson", "Spearman", "KendallTau"] {
            let Some(Inter::Correlation(cm)) = ims.get(&format!("correlation_matrix:{m}"))
            else {
                panic!("missing {m}")
            };
            // Categorical columns excluded.
            assert_eq!(cm.labels, vec!["a", "b", "c"]);
        }
        // a~b are perfectly correlated → insight fires.
        assert!(insights
            .iter()
            .any(|i| i.columns == vec!["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn two_phase_and_all_graph_agree() {
        let df = frame();
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let eager_cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &eager_cfg);
        let two_phase = matrices_two_phase(&mut ctx, &names).unwrap();

        let lazy_cfg = Config::from_pairs(vec![("engine.eager_finish", "false")]).unwrap();
        let mut ctx2 = ComputeContext::new(&df, &lazy_cfg);
        let all_graph = matrices_all_graph(&mut ctx2, &names).unwrap();

        let reference = reference_matrices(&df, &names);
        for ((a, b), r) in two_phase.iter().zip(&all_graph).zip(&reference) {
            assert_eq!(a.labels, b.labels);
            for i in 0..a.size() {
                for j in 0..a.size() {
                    let (x, y, z) = (a.get(i, j), b.get(i, j), r.get(i, j));
                    // The two DataPrep paths must agree exactly.
                    match (x, y) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12, "{x} vs {y}"),
                        _ => assert_eq!(x, y),
                    }
                    // Pearson and Kendall also match the per-pair
                    // reference exactly (the Kendall prep path is exact;
                    // NaN columns fall back to per-pair). Spearman uses
                    // pandas rank-once semantics, which only coincides
                    // with the SciPy per-pair reference when neither
                    // column has nulls — column "c" has nulls, so those
                    // cells may differ slightly; require closeness.
                    match (x, z) {
                        (Some(x), Some(z)) if a.method != CorrMethod::Spearman => {
                            assert!((x - z).abs() < 1e-12, "{:?}: {x} vs ref {z}", a.method)
                        }
                        (Some(x), Some(z)) => {
                            assert!((x - z).abs() < 0.15, "spearman: {x} vs ref {z}")
                        }
                        _ => assert_eq!(x, z),
                    }
                }
            }
        }
    }

    #[test]
    fn rank_once_spearman_exact_without_nulls() {
        // On NaN-free columns the pandas and SciPy semantics coincide.
        let df = frame();
        let names = vec!["a".to_string(), "b".to_string()];
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let ours = matrices_two_phase(&mut ctx, &names).unwrap();
        let reference = reference_matrices(&df, &names);
        for (a, r) in ours.iter().zip(&reference) {
            for i in 0..a.size() {
                for j in 0..a.size() {
                    match (a.get(i, j), r.get(i, j)) {
                        (Some(x), Some(z)) => assert!((x - z).abs() < 1e-12),
                        (x, z) => assert_eq!(x, z),
                    }
                }
            }
        }
    }

    #[test]
    fn pairwise_complete_semantics_with_nulls() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_correlation_overview(&mut ctx).unwrap();
        let Some(Inter::Correlation(m)) = ims.get("correlation_matrix:Pearson") else {
            panic!()
        };
        // a~b unaffected by c's nulls.
        assert!((m.get_by_name("a", "b").unwrap().unwrap() - 1.0).abs() < 1e-12);
        // a~c defined despite nulls (pairwise complete).
        assert!(m.get_by_name("a", "c").unwrap().is_some());
    }

    #[test]
    fn vector_excludes_self_and_categoricals() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_correlation_vector(&mut ctx, "a").unwrap();
        let Some(Inter::CorrVectors(vs)) = ims.get("correlation_vectors") else {
            panic!()
        };
        assert_eq!(vs.len(), 3); // three methods
        let (_, entries) = &vs[0];
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn vector_on_categorical_errors() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        assert!(matches!(
            compute_correlation_vector(&mut ctx, "city"),
            Err(EdaError::NotNumeric(_))
        ));
    }

    #[test]
    fn pair_fits_regression() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, insights) = compute_correlation_pair(&mut ctx, "a", "b").unwrap();
        let Some(Inter::RegressionScatter { slope, intercept, r2, points }) =
            ims.get("regression_scatter")
        else {
            panic!()
        };
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
        assert!(!points.is_empty());
        assert!(!insights.is_empty());
    }

    #[test]
    fn overview_needs_two_numeric_columns() {
        let df = DataFrame::new(vec![
            ("a".into(), Column::from_f64(vec![1.0, 2.0])),
            ("s".into(), Column::from_strs(&["x", "y"])),
        ])
        .unwrap();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        assert!(matches!(
            compute_correlation_overview(&mut ctx),
            Err(EdaError::EmptyInput(_))
        ));
    }
}
