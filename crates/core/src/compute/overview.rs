//! Overview analysis: `plot(df)` (paper Figure 2, row 1).
//!
//! Dataset statistics plus one small distribution chart per column — a
//! histogram for numerical columns, a bar chart for categorical ones.

use eda_stats::freq::FreqTable;
use eda_stats::histogram::Histogram;
use eda_taskgraph::NodeId;

use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates, StatRow};

use super::ctx::{un, ComputeContext};
use super::kernels::{self, ColMeta};
use super::univariate::bar_from_freq;

/// Per-column plan entry of the overview.
pub enum OverviewColumnPlan {
    /// Numeric column: meta + histogram.
    Numeric {
        /// Column name.
        name: String,
        /// Meta node.
        meta: NodeId,
        /// Histogram node.
        hist: NodeId,
    },
    /// Categorical column: meta + frequency table.
    Categorical {
        /// Column name.
        name: String,
        /// Meta node.
        meta: NodeId,
        /// Frequency node.
        freq: NodeId,
    },
}

/// The overview plan across all columns.
pub struct OverviewPlan {
    /// One entry per column, in frame order.
    pub columns: Vec<OverviewColumnPlan>,
}

impl OverviewPlan {
    /// The output nodes to request, flattened.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.columns
            .iter()
            .flat_map(|c| match c {
                OverviewColumnPlan::Numeric { meta, hist, .. } => vec![*meta, *hist],
                OverviewColumnPlan::Categorical { meta, freq, .. } => vec![*meta, *freq],
            })
            .collect()
    }
}

/// Add the overview plan for every column.
pub fn plan_overview(ctx: &mut ComputeContext<'_>) -> OverviewPlan {
    let names: Vec<String> = ctx.df.names().to_vec();
    let columns = names
        .into_iter()
        .map(|name| {
            let col = ctx.df.column(&name).expect("iterating frame names");
            match detect(col, ctx.config.types.low_cardinality) {
                SemanticType::Numerical => OverviewColumnPlan::Numeric {
                    meta: kernels::col_meta(ctx, &name, None),
                    hist: kernels::histogram(ctx, &name, ctx.config.hist.bins, None),
                    name,
                },
                SemanticType::Categorical => OverviewColumnPlan::Categorical {
                    meta: kernels::col_meta(ctx, &name, None),
                    freq: kernels::freq(ctx, &name, None),
                    name,
                },
            }
        })
        .collect();
    OverviewPlan { columns }
}

/// Run `plot(df)`: plan, execute, assemble.
pub fn compute_overview(
    ctx: &mut ComputeContext<'_>,
) -> EdaResult<(Intermediates, Vec<Insight>)> {
    let plan = plan_overview(ctx);
    let outs = ctx.execute_checked(&plan.outputs())?;
    Ok(assemble_overview(ctx, &plan, &outs))
}

/// Assemble the overview from executed payloads.
pub fn assemble_overview(
    ctx: &ComputeContext<'_>,
    plan: &OverviewPlan,
    outs: &[eda_taskgraph::graph::Payload],
) -> (Intermediates, Vec<Insight>) {
    let mut ims = Intermediates::new();
    let insights = Vec::new();

    let mut total_missing = 0usize;
    let mut n_numeric = 0usize;
    let mut n_categorical = 0usize;
    let mut cursor = 0usize;
    let mut column_charts: Vec<(String, Inter)> = Vec::new();

    for c in &plan.columns {
        match c {
            OverviewColumnPlan::Numeric { name, .. } => {
                let meta = un::<ColMeta>(&outs[cursor]);
                let hist = un::<Histogram>(&outs[cursor + 1]);
                cursor += 2;
                total_missing += meta.nulls;
                n_numeric += 1;
                column_charts.push((
                    format!("histogram:{name}"),
                    Inter::Histogram { edges: hist.edges(), counts: hist.counts.clone() },
                ));
            }
            OverviewColumnPlan::Categorical { name, .. } => {
                let meta = un::<ColMeta>(&outs[cursor]);
                let freq = un::<FreqTable>(&outs[cursor + 1]);
                cursor += 2;
                total_missing += meta.nulls;
                n_categorical += 1;
                column_charts.push((
                    format!("bar_chart:{name}"),
                    bar_from_freq(freq, ctx.config.bar.ngroups),
                ));
            }
        }
    }

    let nrows = ctx.df.nrows();
    let ncols = ctx.df.ncols();
    let cells = nrows * ncols;
    ims.push(
        "stats",
        Inter::StatsTable(vec![
            StatRow::new("rows", nrows.to_string()),
            StatRow::new("columns", ncols.to_string()),
            StatRow::new("numerical columns", n_numeric.to_string()),
            StatRow::new("categorical columns", n_categorical.to_string()),
            StatRow::new("missing cells", total_missing.to_string()),
            StatRow::new(
                "missing cells (%)",
                format!("{:.1}%", 100.0 * total_missing as f64 / cells.max(1) as f64),
            ),
            StatRow::new(
                "memory size",
                format!("{:.1} KB", ctx.df.memory_size() as f64 / 1024.0),
            ),
        ]),
    );
    for (name, chart) in column_charts {
        ims.push(name, chart);
    }
    (ims, insights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::{Column, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            ("size".into(), Column::from_f64((0..50).map(|i| i as f64).collect())),
            (
                "year_built".into(),
                Column::from_i64((0..50).map(|i| 1960 + (i * 7) % 60).collect()),
            ),
            (
                "city".into(),
                Column::from_opt_string(
                    (0..50)
                        .map(|i| if i % 10 == 0 { None } else { Some(format!("c{}", i % 3)) })
                        .collect(),
                ),
            ),
            (
                "house_type".into(),
                Column::from_strs(&["detached"; 50]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn one_chart_per_column() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_overview(&mut ctx).unwrap();
        assert!(ims.get("histogram:size").is_some());
        assert!(ims.get("histogram:year_built").is_some());
        assert!(ims.get("bar_chart:city").is_some());
        assert!(ims.get("bar_chart:house_type").is_some());
    }

    #[test]
    fn dataset_stats_table() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _) = compute_overview(&mut ctx).unwrap();
        let Some(Inter::StatsTable(rows)) = ims.get("stats") else { panic!() };
        let get = |label: &str| {
            rows.iter().find(|r| r.label == label).unwrap().value.clone()
        };
        assert_eq!(get("rows"), "50");
        assert_eq!(get("columns"), "4");
        assert_eq!(get("numerical columns"), "2");
        assert_eq!(get("categorical columns"), "2");
        assert_eq!(get("missing cells"), "5");
    }

    #[test]
    fn overview_histograms_share_with_univariate() {
        // The report builds overview + univariate into one graph; the
        // histogram nodes must be shared (CSE) because bins match.
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let plan = plan_overview(&mut ctx);
        let before = ctx.graph.len();
        let uni = super::super::univariate::plan_numeric(&mut ctx, "size");
        // The univariate plan re-adds meta/moments/hist for "size": all of
        // those must dedupe onto the overview's nodes...
        let OverviewColumnPlan::Numeric { hist, .. } = &plan.columns[0] else {
            panic!()
        };
        assert_eq!(*hist, uni.hist);
        // ...so only genuinely new work (sorted, freq) adds nodes.
        let added = ctx.graph.len() - before;
        let fresh_kernels = 2; // sorted_values + freq
        let per_kernel_max = ctx.pf.npartitions() * 2; // map + reduce layers
        assert!(
            added <= fresh_kernels * per_kernel_max,
            "univariate after overview added {added} nodes"
        );
    }
}
