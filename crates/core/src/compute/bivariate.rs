//! Bivariate analysis: `plot(df, x, y)` (paper Figure 2, row 3).
//!
//! * N×N → scatter plot, hexbin plot, binned box plot.
//! * N×C / C×N → categorical box plot, multi-line chart.
//! * C×C → nested bar chart, stacked bar chart, heat map.
//!
//! The categorical variants are textbook two-phase pipelines: stage one
//! reduces the category frequencies, an eager top-k picks the groups
//! (tiny data — the "Pandas phase"), and stage two builds the grouped
//! kernels restricted to those groups.

use std::collections::HashMap;

use eda_stats::freq::FreqTable;
use eda_stats::histogram::Histogram;
use eda_stats::moments::Moments;
use eda_stats::quantile::BoxPlot;

use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates};

use super::ctx::{un, ComputeContext};
use super::kernels::{self, hex_center, hex_scales};
use super::univariate::fmt_num;

/// Run `plot(df, x, y)`, dispatching on the semantic type pair.
pub fn compute_bivariate(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
) -> EdaResult<(Intermediates, Vec<Insight>, (SemanticType, SemanticType))> {
    let tx = detect(ctx.df.column(x)?, ctx.config.types.low_cardinality);
    let ty = detect(ctx.df.column(y)?, ctx.config.types.low_cardinality);
    let ims = match (tx, ty) {
        (SemanticType::Numerical, SemanticType::Numerical) => numeric_numeric(ctx, x, y)?,
        (SemanticType::Numerical, SemanticType::Categorical) => numeric_categorical(ctx, y, x)?,
        (SemanticType::Categorical, SemanticType::Numerical) => numeric_categorical(ctx, x, y)?,
        (SemanticType::Categorical, SemanticType::Categorical) => {
            categorical_categorical(ctx, x, y)?
        }
    };
    Ok((ims, Vec::new(), (tx, ty)))
}

/// N×N: scatter, hexbin, binned box plot.
fn numeric_numeric(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
) -> EdaResult<Intermediates> {
    let pairs = kernels::pair_values(ctx, x, y);
    let hex = kernels::hexbin(ctx, x, y, ctx.config.hexbin.gridsize);
    let binned = kernels::binned_numeric(ctx, x, y, ctx.config.box_plot.bins);
    let mx = kernels::moments(ctx, x, None);
    let my = kernels::moments(ctx, y, None);
    let outs = ctx.execute_checked(&[pairs, hex, binned, mx, my])?;

    let pairs = un::<Vec<(f64, f64)>>(&outs[0]);
    let hex_cells = un::<HashMap<(i64, i64), u64>>(&outs[1]);
    let binned = un::<Vec<Vec<f64>>>(&outs[2]);
    let momx = un::<Moments>(&outs[3]);
    let momy = un::<Moments>(&outs[4]);

    let mut ims = Intermediates::new();

    // Scatter: deterministic stride thinning to the configured cap.
    let cap = ctx.config.scatter.sample;
    let sampled = pairs.len() > cap;
    let points: Vec<(f64, f64)> = if sampled {
        let stride = (pairs.len() / cap).max(1);
        pairs.iter().copied().step_by(stride).take(cap).collect()
    } else {
        pairs.clone()
    };
    ims.push("scatter_plot", Inter::Scatter { points, sampled });

    // Hexbin: axial cells back to data coordinates.
    let (sx, sy) = hex_scales(momx, momy, ctx.config.hexbin.gridsize);
    let mut cells: Vec<((i64, i64), u64)> = hex_cells.iter().map(|(k, v)| (*k, *v)).collect();
    cells.sort_unstable_by_key(|(k, _)| *k);
    let mut centers = Vec::with_capacity(cells.len());
    let mut counts = Vec::with_capacity(cells.len());
    for ((q, r), c) in cells {
        let (nx, ny) = hex_center(q, r);
        centers.push((momx.min + nx * sx, momy.min + ny * sy));
        counts.push(c);
    }
    ims.push(
        "hexbin_plot",
        Inter::Hexbin { centers, counts, radius: sx },
    );

    // Binned box plot: one box per x-bin, labelled with the bin range.
    let bins = binned.len().max(1);
    let width = (momx.max - momx.min) / bins as f64;
    let boxes: Vec<(String, BoxPlot)> = binned
        .iter()
        .enumerate()
        .filter_map(|(i, ys)| {
            let label = format!(
                "[{}, {})",
                fmt_num(momx.min + width * i as f64),
                fmt_num(momx.min + width * (i + 1) as f64)
            );
            BoxPlot::from_values(ys, ctx.config.box_plot.max_outliers).map(|bp| (label, bp))
        })
        .collect();
    ims.push("binned_box_plot", Inter::Boxes(boxes));
    Ok(ims)
}

/// N×C (either order): categorical box plot + multi-line chart.
/// `cat`/`num` are already disambiguated by the caller.
fn numeric_categorical(
    ctx: &mut ComputeContext<'_>,
    cat: &str,
    num: &str,
) -> EdaResult<Intermediates> {
    // Stage 1 (Dask phase): category frequencies.
    let freq_node = kernels::freq(ctx, cat, None);
    let outs = ctx.execute_checked(&[freq_node])?;
    // Pandas phase: tiny top-k on the reduced table.
    let freq = un::<FreqTable>(&outs[0]);
    let top: Vec<String> = freq
        .top_k(ctx.config.box_plot.ngroups.max(ctx.config.line.ngroups))
        .into_iter()
        .map(|(c, _)| c)
        .collect();

    // Stage 2: grouped kernels restricted to the chosen groups.
    let box_top: Vec<String> =
        top.iter().take(ctx.config.box_plot.ngroups).cloned().collect();
    let line_top: Vec<String> = top.iter().take(ctx.config.line.ngroups).cloned().collect();
    let grouped = kernels::grouped_numeric(ctx, cat, num, &box_top);
    let lines = kernels::multi_line(ctx, cat, num, &line_top, ctx.config.line.bins);
    let outs = ctx.execute_checked(&[grouped, lines])?;

    let groups = un::<HashMap<String, Vec<f64>>>(&outs[0]);
    let line_hists = un::<HashMap<String, Histogram>>(&outs[1]);

    let mut ims = Intermediates::new();
    let mut boxes: Vec<(String, BoxPlot)> = box_top
        .iter()
        .filter_map(|c| {
            groups
                .get(c)
                .and_then(|v| BoxPlot::from_values(v, ctx.config.box_plot.max_outliers))
                .map(|bp| (c.clone(), bp))
        })
        .collect();
    boxes.sort_by(|a, b| a.0.cmp(&b.0));
    ims.push("categorical_box_plot", Inter::Boxes(boxes));

    // Multi-line chart: shared bin centers, one count series per category.
    let mut xs: Vec<f64> = Vec::new();
    let mut series: Vec<(String, Vec<u64>)> = Vec::new();
    for c in &line_top {
        if let Some(h) = line_hists.get(c) {
            if xs.is_empty() {
                xs = h
                    .edges()
                    .windows(2)
                    .map(|w| (w[0] + w[1]) / 2.0)
                    .collect();
            }
            series.push((c.clone(), h.counts.clone()));
        }
    }
    series.sort_by(|a, b| a.0.cmp(&b.0));
    ims.push("multi_line_chart", Inter::MultiLine { xs, series });
    Ok(ims)
}

/// C×C: nested bars, stacked bars, heat map from one crosstab.
fn categorical_categorical(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
) -> EdaResult<Intermediates> {
    // Stage 1: both frequency tables.
    let fx = kernels::freq(ctx, x, None);
    let fy = kernels::freq(ctx, y, None);
    let outs = ctx.execute_checked(&[fx, fy])?;
    let keep_x: Vec<String> = un::<FreqTable>(&outs[0])
        .top_k(ctx.config.crosstab.ngroups_x)
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let keep_y: Vec<String> = un::<FreqTable>(&outs[1])
        .top_k(ctx.config.crosstab.ngroups_y)
        .into_iter()
        .map(|(c, _)| c)
        .collect();

    // Stage 2: one crosstab feeds all three charts (shared computation).
    let ct = kernels::crosstab(ctx, x, y, &keep_x, &keep_y);
    let outs = ctx.execute_checked(&[ct])?;
    let counts = un::<HashMap<(String, String), u64>>(&outs[0]);

    let mut ims = Intermediates::new();
    let values: Vec<Vec<u64>> = keep_y
        .iter()
        .map(|yc| {
            keep_x
                .iter()
                .map(|xc| counts.get(&(xc.clone(), yc.clone())).copied().unwrap_or(0))
                .collect()
        })
        .collect();
    ims.push(
        "heat_map",
        Inter::Heatmap {
            xlabels: keep_x.clone(),
            ylabels: keep_y.clone(),
            values: values.clone(),
        },
    );
    let series: Vec<(String, Vec<u64>)> = keep_y
        .iter()
        .zip(&values)
        .map(|(yc, row)| (yc.clone(), row.clone()))
        .collect();
    ims.push(
        "nested_bar_chart",
        Inter::GroupedBars {
            xlabels: keep_x.clone(),
            series: series.clone(),
            stacked: false,
        },
    );
    ims.push(
        "stacked_bar_chart",
        Inter::GroupedBars { xlabels: keep_x, series, stacked: true },
    );
    Ok(ims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::{Column, DataFrame};

    fn frame() -> DataFrame {
        let n = 400;
        DataFrame::new(vec![
            (
                "size".into(),
                Column::from_f64((0..n).map(|i| 50.0 + (i % 100) as f64).collect()),
            ),
            (
                "price".into(),
                Column::from_f64((0..n).map(|i| 1000.0 + 3.0 * (i % 100) as f64).collect()),
            ),
            (
                "city".into(),
                Column::from_string((0..n).map(|i| format!("c{}", i % 4)).collect()),
            ),
            (
                "type".into(),
                Column::from_string((0..n).map(|i| format!("t{}", i % 3)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn nn_panel_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, types) = compute_bivariate(&mut ctx, "size", "price").unwrap();
        assert_eq!(types, (SemanticType::Numerical, SemanticType::Numerical));
        for chart in ["scatter_plot", "hexbin_plot", "binned_box_plot"] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
        let Some(Inter::Scatter { points, .. }) = ims.get("scatter_plot") else {
            panic!()
        };
        assert!(points.len() <= cfg.scatter.sample);
        assert!(!points.is_empty());
        let Some(Inter::Hexbin { centers, counts, .. }) = ims.get("hexbin_plot") else {
            panic!()
        };
        assert_eq!(centers.len(), counts.len());
        assert_eq!(counts.iter().sum::<u64>(), 400);
    }

    #[test]
    fn nc_panel_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, types) = compute_bivariate(&mut ctx, "price", "city").unwrap();
        assert_eq!(types, (SemanticType::Numerical, SemanticType::Categorical));
        let Some(Inter::Boxes(boxes)) = ims.get("categorical_box_plot") else {
            panic!()
        };
        assert_eq!(boxes.len(), 4);
        let Some(Inter::MultiLine { xs, series }) = ims.get("multi_line_chart") else {
            panic!()
        };
        assert_eq!(xs.len(), cfg.line.bins);
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn cn_order_gives_same_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, types) = compute_bivariate(&mut ctx, "city", "price").unwrap();
        assert_eq!(types, (SemanticType::Categorical, SemanticType::Numerical));
        assert!(ims.get("categorical_box_plot").is_some());
        assert!(ims.get("multi_line_chart").is_some());
    }

    #[test]
    fn cc_panel_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, types) = compute_bivariate(&mut ctx, "city", "type").unwrap();
        assert_eq!(
            types,
            (SemanticType::Categorical, SemanticType::Categorical)
        );
        let Some(Inter::Heatmap { xlabels, ylabels, values }) = ims.get("heat_map") else {
            panic!()
        };
        assert_eq!(xlabels.len(), 4);
        assert_eq!(ylabels.len(), 3);
        let total: u64 = values.iter().flatten().sum();
        assert_eq!(total, 400);
        assert!(matches!(
            ims.get("nested_bar_chart"),
            Some(Inter::GroupedBars { stacked: false, .. })
        ));
        assert!(matches!(
            ims.get("stacked_bar_chart"),
            Some(Inter::GroupedBars { stacked: true, .. })
        ));
    }

    #[test]
    fn crosstab_groups_follow_config() {
        let df = frame();
        let cfg = Config::from_pairs(vec![
            ("crosstab.ngroups_x", "2"),
            ("crosstab.ngroups_y", "2"),
        ])
        .unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_bivariate(&mut ctx, "city", "type").unwrap();
        let Some(Inter::Heatmap { xlabels, ylabels, .. }) = ims.get("heat_map") else {
            panic!()
        };
        assert_eq!(xlabels.len(), 2);
        assert_eq!(ylabels.len(), 2);
    }

    #[test]
    fn binned_box_covers_x_range() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_bivariate(&mut ctx, "size", "price").unwrap();
        let Some(Inter::Boxes(boxes)) = ims.get("binned_box_plot") else { panic!() };
        assert_eq!(boxes.len(), cfg.box_plot.bins);
        // Labels are bin ranges.
        assert!(boxes[0].0.starts_with('['));
    }
}
