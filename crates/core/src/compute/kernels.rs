//! Graph-building kernels.
//!
//! Each function adds a map/tree-reduce sub-plan to the context's graph
//! and returns the node holding the reduced result. Structural keys cover
//! the kernel name, the column(s), the relevant config, and — for the
//! missing-impact variants — which column's nulls get dropped first, so
//! two visualizations needing the same statistic share one plan and
//! different configurations never collide.
//!
//! Kernels whose bin grid depends on data extrema (histogram, hexbin,
//! binned boxes, multi-line) take the reduced [`Moments`] node as an extra
//! dependency and read `min`/`max` from its payload at *execution* time,
//! which keeps everything inside one lazy graph (no eager pre-pass).

use std::collections::HashMap;
use std::sync::Arc;

use eda_dataframe::{Column, DataFrame};
use eda_stats::corr::PearsonPartial;
use eda_stats::freq::FreqTable;
use eda_stats::histogram::Histogram;
use eda_stats::moments::Moments;
use eda_stats::text::TextStats;
use eda_taskgraph::key::TaskKey;
use eda_taskgraph::morsel;
use eda_taskgraph::ops;
use eda_taskgraph::partition::payload_frame;
use eda_taskgraph::NodeId;

use super::ctx::{pl, un, ComputeContext};

/// Row/null counts for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColMeta {
    /// Total rows.
    pub len: usize,
    /// Null rows.
    pub nulls: usize,
}

/// Optionally drop rows where `drop` is null, then borrow `col`.
///
/// Shared preprocessing of every missing-impact kernel. Returns `None`
/// when the partition is left unchanged (fast path: borrow directly).
fn maybe_dropped(df: &DataFrame, drop: Option<&str>) -> Option<DataFrame> {
    drop.map(|d| df.drop_nulls_in(d).expect("column exists"))
}

fn col<'d>(df: &'d DataFrame, name: &str) -> &'d Column {
    df.column(name).expect("column exists")
}

fn drop_tag(drop: Option<&str>) -> String {
    drop.map_or_else(String::new, |d| format!("|dropna:{d}"))
}

/// The column's float buffer when every windowed row is valid — either
/// no bitmap at all, or a sliced window whose bitmap is all-set (slices
/// keep their parent's bitmap, so `validity()` alone under-reports this
/// case). This is the shape the vector kernels and the morsel engine
/// consume as whole contiguous slices.
fn all_valid_f64(c: &Column) -> Option<&[f64]> {
    let vals = c.f64_values()?;
    match c.validity() {
        None => Some(vals),
        Some(bm) if bm.all_set() => Some(vals),
        Some(_) => None,
    }
}

// ---------------------------------------------------------------------------
// Scalar / sketch kernels
// ---------------------------------------------------------------------------

/// Row/null counts of `column` (optionally after dropping rows null in
/// `drop`).
pub fn col_meta(ctx: &mut ComputeContext<'_>, column: &str, drop: Option<&str>) -> NodeId {
    let name = column.to_string();
    let dropped = drop.map(str::to_string);
    let params = ctx.params(TaskKey::params(&format!("meta:{column}{}", drop_tag(drop))));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("col_meta:{column}{}", drop_tag(drop)),
        params,
        &ctx.sources.clone(),
        move |df| {
            let filtered = maybe_dropped(df, dropped.as_deref());
            let frame = filtered.as_ref().unwrap_or(df);
            let c = col(frame, &name);
            pl(ColMeta { len: c.len(), nulls: c.null_count() })
        },
        |a, b| {
            let (a, b) = (un::<ColMeta>(a), un::<ColMeta>(b));
            pl(ColMeta { len: a.len + b.len, nulls: a.nulls + b.nulls })
        },
    )
}

/// Moments sketch over a numeric column.
pub fn moments(ctx: &mut ComputeContext<'_>, column: &str, drop: Option<&str>) -> NodeId {
    let name = column.to_string();
    let dropped = drop.map(str::to_string);
    let params = ctx.params(TaskKey::params(&format!("moments:{column}{}", drop_tag(drop))));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("moments:{column}{}", drop_tag(drop)),
        params,
        &ctx.sources.clone(),
        move |df| {
            let filtered = maybe_dropped(df, dropped.as_deref());
            let frame = filtered.as_ref().unwrap_or(df);
            let c = col(frame, &name);
            let mut m = Moments::new();
            match all_valid_f64(c) {
                // Null-free float window: feed the buffer to the sketch
                // as contiguous slices — split into stealable morsels
                // when the scheduler has engaged a morsel context.
                Some(vals) => {
                    m = morsel::run_rows(
                        vals.len(),
                        std::mem::size_of::<f64>(),
                        |r| {
                            let mut part = Moments::new();
                            part.push_slice(&vals[r]);
                            part
                        },
                        |mut a, b| {
                            a.merge(&b);
                            a
                        },
                    )
                    .unwrap_or_else(|| {
                        let mut whole = Moments::new();
                        whole.push_slice(vals);
                        whole
                    });
                }
                None => c.for_each_numeric(|v| m.push(v)).expect("numeric"),
            }
            pl(m)
        },
        |a, b| {
            let mut m = un::<Moments>(a).clone();
            m.merge(un::<Moments>(b));
            pl(m)
        },
    )
}

/// Fully sorted non-null values of a numeric column (feeds quantiles,
/// box plot, Q-Q plot — computed once, shared by all three).
pub fn sorted_values(ctx: &mut ComputeContext<'_>, column: &str, drop: Option<&str>) -> NodeId {
    let name = column.to_string();
    let dropped = drop.map(str::to_string);
    let params = ctx.params(TaskKey::params(&format!("sorted:{column}{}", drop_tag(drop))));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("sorted_values:{column}{}", drop_tag(drop)),
        params,
        &ctx.sources.clone(),
        move |df| {
            let filtered = maybe_dropped(df, dropped.as_deref());
            let frame = filtered.as_ref().unwrap_or(df);
            let c = col(frame, &name);
            let mut v: Vec<f64> = Vec::with_capacity(c.len() - c.null_count());
            c.for_each_numeric(|x| {
                if !x.is_nan() {
                    v.push(x);
                }
            })
            .expect("numeric");
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            pl(v)
        },
        |a, b| pl(merge_sorted(un::<Vec<f64>>(a), un::<Vec<f64>>(b))),
    )
}

/// Merge two ascending vectors.
fn merge_sorted(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Histogram over a numeric column. Bin range comes from the reduced
/// moments payload at execution time, so the whole thing stays lazy.
pub fn histogram(
    ctx: &mut ComputeContext<'_>,
    column: &str,
    bins: usize,
    drop: Option<&str>,
) -> NodeId {
    let m = moments(ctx, column, drop);
    histogram_with_range(ctx, column, bins, drop, m)
}

/// Histogram whose bin range comes from an explicit moments node — the
/// before/after comparisons of `plot_missing` bin both variants on the
/// *before* range so the bars are comparable.
pub fn histogram_with_range(
    ctx: &mut ComputeContext<'_>,
    column: &str,
    bins: usize,
    drop: Option<&str>,
    m: NodeId,
) -> NodeId {
    let name = column.to_string();
    let dropped = drop.map(str::to_string);
    let params = ctx.params(TaskKey::params(&format!(
        "hist:{column}:{bins}{}",
        drop_tag(drop)
    )));
    let task_name = format!("histogram:{column}{}", drop_tag(drop));
    let mapped: Vec<NodeId> = ctx
        .sources
        .clone()
        .iter()
        .map(|&p| {
            let name = name.clone();
            let dropped = dropped.clone();
            ctx.graph.op(&task_name, params, vec![p, m], move |inputs| {
                let frame_arc = payload_frame(&inputs[0]);
                let mom = un::<Moments>(&inputs[1]);
                let filtered = maybe_dropped(&frame_arc, dropped.as_deref());
                let frame = filtered.as_ref().unwrap_or(&frame_arc);
                let mut h = Histogram::new(mom.min, mom.max, bins);
                let c = col(frame, &name);
                match all_valid_f64(c) {
                    // Counts are integers, so the morsel merge is exact:
                    // splitting cannot change the histogram.
                    Some(vals) => match morsel::run_rows(
                        vals.len(),
                        std::mem::size_of::<f64>(),
                        |r| {
                            let mut part = Histogram::new(mom.min, mom.max, bins);
                            part.fill_slice(&vals[r]);
                            part
                        },
                        |mut a, b| {
                            a.merge(&b);
                            a
                        },
                    ) {
                        Some(filled) => h = filled,
                        None => h.fill_slice(vals),
                    },
                    None => c.for_each_numeric(|v| h.push(v)).expect("numeric"),
                }
                pl(h)
            })
        })
        .collect();
    ops::tree_reduce(&mut ctx.graph, &format!("histogram/reduce:{column}"), params, &mapped, |a, b| {
        let mut h = un::<Histogram>(a).clone();
        h.merge(un::<Histogram>(b));
        pl(h)
    })
}

/// Frequency table over any column's display values.
pub fn freq(ctx: &mut ComputeContext<'_>, column: &str, drop: Option<&str>) -> NodeId {
    let name = column.to_string();
    let dropped = drop.map(str::to_string);
    let params = ctx.params(TaskKey::params(&format!("freq:{column}{}", drop_tag(drop))));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("freq:{column}{}", drop_tag(drop)),
        params,
        &ctx.sources.clone(),
        move |df| {
            let filtered = maybe_dropped(df, dropped.as_deref());
            let frame = filtered.as_ref().unwrap_or(df);
            let mut t = FreqTable::new();
            for v in col(frame, &name).display_iter() {
                t.push_owned(v);
            }
            pl(t)
        },
        |a, b| {
            let mut t = un::<FreqTable>(a).clone();
            t.merge(un::<FreqTable>(b));
            pl(t)
        },
    )
}

/// Text statistics over a string column.
pub fn text_stats(ctx: &mut ComputeContext<'_>, column: &str) -> NodeId {
    let name = column.to_string();
    let params = ctx.params(TaskKey::params(&format!("text:{column}")));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("text_stats:{column}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let mut t = TextStats::new();
            let c = col(df, &name);
            match c.str_iter() {
                Ok(iter) => {
                    for v in iter {
                        t.push(v);
                    }
                }
                Err(_) => {
                    // Non-string categorical (bool / low-card int): use the
                    // display form so word stats still make sense.
                    for v in c.display_iter() {
                        t.push(v.as_deref());
                    }
                }
            }
            pl(t)
        },
        |a, b| {
            let mut t = un::<TextStats>(a).clone();
            t.merge(un::<TextStats>(b));
            pl(t)
        },
    )
}

/// Pearson co-moment partial over two numeric columns.
pub fn pearson_partial(ctx: &mut ComputeContext<'_>, x: &str, y: &str) -> NodeId {
    let (xn, yn) = (x.to_string(), y.to_string());
    let params = ctx.params(TaskKey::params(&format!("pearson:{x}:{y}")));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("pearson:{x}:{y}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let mut p = PearsonPartial::new();
            let (cx, cy) = (col(df, &xn), col(df, &yn));
            match (all_valid_f64(cx), all_valid_f64(cy)) {
                (Some(xs), Some(ys)) if xs.len() == ys.len() => {
                    p = morsel::run_rows(
                        xs.len(),
                        2 * std::mem::size_of::<f64>(),
                        |r| {
                            let mut part = PearsonPartial::new();
                            part.push_slices(&xs[r.clone()], &ys[r]);
                            part
                        },
                        |mut a, b| {
                            a.merge(&b);
                            a
                        },
                    )
                    .unwrap_or_else(|| {
                        let mut whole = PearsonPartial::new();
                        whole.push_slices(xs, ys);
                        whole
                    });
                }
                _ => {
                    let xs = cx.numeric_iter().expect("numeric");
                    let ys = cy.numeric_iter().expect("numeric");
                    for (a, b) in xs.zip(ys) {
                        if let (Some(a), Some(b)) = (a, b) {
                            p.push(a, b);
                        }
                    }
                }
            }
            pl(p)
        },
        |a, b| {
            let mut p = un::<PearsonPartial>(a).clone();
            p.merge(un::<PearsonPartial>(b));
            pl(p)
        },
    )
}

/// Gathered complete pairs of two numeric columns (feeds Spearman/Kendall
/// — rank statistics need the full columns — and the scatter sampler).
pub fn pair_values(ctx: &mut ComputeContext<'_>, x: &str, y: &str) -> NodeId {
    let (xn, yn) = (x.to_string(), y.to_string());
    let params = ctx.params(TaskKey::params(&format!("pairs:{x}:{y}")));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("pair_values:{x}:{y}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let xs = col(df, &xn).numeric_iter().expect("numeric");
            let ys = col(df, &yn).numeric_iter().expect("numeric");
            let pairs: Vec<(f64, f64)> = xs
                .zip(ys)
                .filter_map(|(a, b)| match (a, b) {
                    (Some(a), Some(b)) if !a.is_nan() && !b.is_nan() => Some((a, b)),
                    _ => None,
                })
                .collect();
            pl(pairs)
        },
        |a, b| {
            let mut v = un::<Vec<(f64, f64)>>(a).clone();
            v.extend_from_slice(un::<Vec<(f64, f64)>>(b));
            pl(v)
        },
    )
}

/// Row-aligned numeric values of a column with nulls as NaN, gathered in
/// row order. Feeds the rank correlations (Spearman/Kendall need whole
/// columns) and the eager correlation-matrix finish.
pub fn numeric_gather(ctx: &mut ComputeContext<'_>, column: &str) -> NodeId {
    let name = column.to_string();
    let params = ctx.params(TaskKey::params(&format!("gather:{column}")));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("numeric_gather:{column}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let v: Vec<f64> = col(df, &name)
                .numeric_iter()
                .expect("numeric")
                .map(|x| x.unwrap_or(f64::NAN))
                .collect();
            pl(v)
        },
        |a, b| {
            let mut v = un::<Vec<f64>>(a).clone();
            v.extend_from_slice(un::<Vec<f64>>(b));
            pl(v)
        },
    )
}

/// Null-indicator vector of a column (`true` = missing), gathered in row
/// order. Feeds the spectrum, nullity correlation, and dendrogram.
pub fn null_indicator(ctx: &mut ComputeContext<'_>, column: &str) -> NodeId {
    let name = column.to_string();
    let params = ctx.params(TaskKey::params(&format!("nulls:{column}")));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("null_indicator:{column}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let c = col(df, &name);
            // Validity scans walk the bitmap's bytes, not per-row asserts;
            // a column without a bitmap has no nulls at all, and an
            // all-set bitmap short-circuits to the same bulk fill
            // without visiting a single bit.
            let v: Vec<bool> = match c.validity() {
                None => vec![false; c.len()],
                Some(bm) if bm.all_set() => vec![false; c.len()],
                Some(bm) => {
                    let mut v = vec![true; c.len()];
                    bm.for_each_set(|i| v[i] = false);
                    v
                }
            };
            pl(v)
        },
        |a, b| {
            let mut v = un::<Vec<bool>>(a).clone();
            v.extend_from_slice(un::<Vec<bool>>(b));
            pl(v)
        },
    )
}

/// Numeric values of `num` grouped by the (display) categories of `cat`,
/// restricted to `keep` categories (the stage-one top-k — the two-phase
/// boundary in action).
pub fn grouped_numeric(
    ctx: &mut ComputeContext<'_>,
    cat: &str,
    num: &str,
    keep: &[String],
) -> NodeId {
    let (cn, nn) = (cat.to_string(), num.to_string());
    let keep_set: Arc<Vec<String>> = Arc::new(keep.to_vec());
    let params = ctx.params(TaskKey::params(&format!(
        "grouped:{cat}:{num}:{}",
        keep.join("\u{1}")
    )));
    let keep_for_map = Arc::clone(&keep_set);
    ops::map_reduce(
        &mut ctx.graph,
        &format!("grouped_numeric:{cat}:{num}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
            let cats = col(df, &cn).display_iter();
            let nums = col(df, &nn).numeric_iter().expect("numeric");
            for (c, v) in cats.zip(nums) {
                if let (Some(c), Some(v)) = (c, v) {
                    if !v.is_nan() && keep_for_map.contains(&c) {
                        groups.entry(c).or_default().push(v);
                    }
                }
            }
            pl(groups)
        },
        |a, b| {
            let mut g = un::<HashMap<String, Vec<f64>>>(a).clone();
            for (k, v) in un::<HashMap<String, Vec<f64>>>(b) {
                g.entry(k.clone()).or_default().extend_from_slice(v);
            }
            pl(g)
        },
    )
}

/// Cross-tabulated counts of two categorical columns restricted to the
/// stage-one top categories; everything else lands in the `other` bucket.
pub fn crosstab(
    ctx: &mut ComputeContext<'_>,
    c1: &str,
    c2: &str,
    keep1: &[String],
    keep2: &[String],
) -> NodeId {
    let (n1, n2) = (c1.to_string(), c2.to_string());
    let k1: Arc<Vec<String>> = Arc::new(keep1.to_vec());
    let k2: Arc<Vec<String>> = Arc::new(keep2.to_vec());
    let params = ctx.params(TaskKey::params(&format!(
        "crosstab:{c1}:{c2}:{}:{}",
        keep1.join("\u{1}"),
        keep2.join("\u{1}")
    )));
    ops::map_reduce(
        &mut ctx.graph,
        &format!("crosstab:{c1}:{c2}"),
        params,
        &ctx.sources.clone(),
        move |df| {
            let mut counts: HashMap<(String, String), u64> = HashMap::new();
            let a = col(df, &n1).display_iter();
            let b = col(df, &n2).display_iter();
            for (x, y) in a.zip(b) {
                if let (Some(x), Some(y)) = (x, y) {
                    if k1.contains(&x) && k2.contains(&y) {
                        *counts.entry((x, y)).or_insert(0) += 1;
                    }
                }
            }
            pl(counts)
        },
        |a, b| {
            let mut c = un::<HashMap<(String, String), u64>>(a).clone();
            for (k, v) in un::<HashMap<(String, String), u64>>(b) {
                *c.entry(k.clone()).or_insert(0) += v;
            }
            pl(c)
        },
    )
}

/// Per-x-bin collections of y values for the binned box plot (N×N).
/// Bin grid from x's reduced moments at execution time.
pub fn binned_numeric(
    ctx: &mut ComputeContext<'_>,
    x: &str,
    y: &str,
    bins: usize,
) -> NodeId {
    let mx = moments(ctx, x, None);
    let (xn, yn) = (x.to_string(), y.to_string());
    let params = ctx.params(TaskKey::params(&format!("binned:{x}:{y}:{bins}")));
    let task_name = format!("binned_numeric:{x}:{y}");
    let mapped: Vec<NodeId> = ctx
        .sources
        .clone()
        .iter()
        .map(|&p| {
            let xn = xn.clone();
            let yn = yn.clone();
            ctx.graph.op(&task_name, params, vec![p, mx], move |inputs| {
                let frame = payload_frame(&inputs[0]);
                let mom = un::<Moments>(&inputs[1]);
                let mut groups: Vec<Vec<f64>> = vec![Vec::new(); bins.max(1)];
                let width = (mom.max - mom.min) / bins.max(1) as f64;
                let xs = col(&frame, &xn).numeric_iter().expect("numeric");
                let ys = col(&frame, &yn).numeric_iter().expect("numeric");
                for (a, b) in xs.zip(ys) {
                    if let (Some(a), Some(b)) = (a, b) {
                        if a.is_nan() || b.is_nan() || width <= 0.0 {
                            if width <= 0.0 && !b.is_nan() {
                                groups[0].push(b);
                            }
                            continue;
                        }
                        let mut idx = ((a - mom.min) / width) as usize;
                        if idx >= groups.len() {
                            idx = groups.len() - 1;
                        }
                        groups[idx].push(b);
                    }
                }
                pl(groups)
            })
        })
        .collect();
    ops::tree_reduce(&mut ctx.graph, &format!("binned/reduce:{x}:{y}"), params, &mapped, |a, b| {
        let mut g = un::<Vec<Vec<f64>>>(a).clone();
        for (dst, src) in g.iter_mut().zip(un::<Vec<Vec<f64>>>(b)) {
            dst.extend_from_slice(src);
        }
        pl(g)
    })
}

/// Hexagonal binning of two numeric columns (pointy-top axial grid over
/// the data ranges; ranges from the reduced moments at execution time).
pub fn hexbin(ctx: &mut ComputeContext<'_>, x: &str, y: &str, gridsize: usize) -> NodeId {
    let mx = moments(ctx, x, None);
    let my = moments(ctx, y, None);
    let (xn, yn) = (x.to_string(), y.to_string());
    let params = ctx.params(TaskKey::params(&format!("hexbin:{x}:{y}:{gridsize}")));
    let task_name = format!("hexbin:{x}:{y}");
    let mapped: Vec<NodeId> = ctx
        .sources
        .clone()
        .iter()
        .map(|&p| {
            let xn = xn.clone();
            let yn = yn.clone();
            ctx.graph.op(&task_name, params, vec![p, mx, my], move |inputs| {
                let frame = payload_frame(&inputs[0]);
                let momx = un::<Moments>(&inputs[1]);
                let momy = un::<Moments>(&inputs[2]);
                let mut cells: HashMap<(i64, i64), u64> = HashMap::new();
                let xs = col(&frame, &xn).numeric_iter().expect("numeric");
                let ys = col(&frame, &yn).numeric_iter().expect("numeric");
                let (sx, sy) = hex_scales(momx, momy, gridsize);
                for (a, b) in xs.zip(ys) {
                    if let (Some(a), Some(b)) = (a, b) {
                        if a.is_nan() || b.is_nan() {
                            continue;
                        }
                        let q = hex_cell((a - momx.min) / sx, (b - momy.min) / sy);
                        *cells.entry(q).or_insert(0) += 1;
                    }
                }
                pl(cells)
            })
        })
        .collect();
    ops::tree_reduce(&mut ctx.graph, &format!("hexbin/reduce:{x}:{y}"), params, &mapped, |a, b| {
        let mut c = un::<HashMap<(i64, i64), u64>>(a).clone();
        for (k, v) in un::<HashMap<(i64, i64), u64>>(b) {
            *c.entry(*k).or_insert(0) += v;
        }
        pl(c)
    })
}

/// Data-unit scale factors for the hex grid.
pub fn hex_scales(mx: &Moments, my: &Moments, gridsize: usize) -> (f64, f64) {
    let g = gridsize.max(2) as f64;
    let sx = ((mx.max - mx.min) / g).max(f64::MIN_POSITIVE);
    let sy = ((my.max - my.min) / g).max(f64::MIN_POSITIVE);
    (sx, sy)
}

/// Map normalized coordinates to an axial hex cell (pointy-top layout,
/// cube-rounded).
pub fn hex_cell(x: f64, y: f64) -> (i64, i64) {
    // Axial coordinates for unit-size pointy-top hexagons.
    let q = (3f64.sqrt() / 3.0) * x - (1.0 / 3.0) * y;
    let r = (2.0 / 3.0) * y;
    // Cube rounding.
    let (xf, zf) = (q, r);
    let yf = -xf - zf;
    let (mut rx, mut ry, mut rz) = (xf.round(), yf.round(), zf.round());
    let (dx, dy, dz) = ((rx - xf).abs(), (ry - yf).abs(), (rz - zf).abs());
    if dx > dy && dx > dz {
        rx = -ry - rz;
    } else if dy > dz {
        ry = -rx - rz;
    } else {
        rz = -rx - ry;
    }
    let _ = ry;
    (rx as i64, rz as i64)
}

/// Center of an axial hex cell in normalized coordinates (inverse of
/// [`hex_cell`]'s lattice).
pub fn hex_center(q: i64, r: i64) -> (f64, f64) {
    (3f64.sqrt() * (q as f64 + r as f64 / 2.0), 1.5 * r as f64)
}

/// Per-category histograms over shared bins for the multi-line chart.
pub fn multi_line(
    ctx: &mut ComputeContext<'_>,
    cat: &str,
    num: &str,
    keep: &[String],
    bins: usize,
) -> NodeId {
    let m = moments(ctx, num, None);
    let (cn, nn) = (cat.to_string(), num.to_string());
    let keep: Arc<Vec<String>> = Arc::new(keep.to_vec());
    let params = ctx.params(TaskKey::params(&format!(
        "multiline:{cat}:{num}:{bins}:{}",
        keep.join("\u{1}")
    )));
    let task_name = format!("multi_line:{cat}:{num}");
    let mapped: Vec<NodeId> = ctx
        .sources
        .clone()
        .iter()
        .map(|&p| {
            let cn = cn.clone();
            let nn = nn.clone();
            let keep = Arc::clone(&keep);
            ctx.graph.op(&task_name, params, vec![p, m], move |inputs| {
                let frame = payload_frame(&inputs[0]);
                let mom = un::<Moments>(&inputs[1]);
                let mut hists: HashMap<String, Histogram> = keep
                    .iter()
                    .map(|k| (k.clone(), Histogram::new(mom.min, mom.max, bins)))
                    .collect();
                let cats = col(&frame, &cn).display_iter();
                let nums = col(&frame, &nn).numeric_iter().expect("numeric");
                for (c, v) in cats.zip(nums) {
                    if let (Some(c), Some(v)) = (c, v) {
                        if let Some(h) = hists.get_mut(&c) {
                            h.push(v);
                        }
                    }
                }
                pl(hists)
            })
        })
        .collect();
    ops::tree_reduce(&mut ctx.graph, &format!("multi_line/reduce:{cat}:{num}"), params, &mapped, |a, b| {
        let mut h = un::<HashMap<String, Histogram>>(a).clone();
        for (k, v) in un::<HashMap<String, Histogram>>(b) {
            h.get_mut(k).expect("same key set").merge(v);
        }
        pl(h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use eda_dataframe::DataFrame;

    fn frame() -> DataFrame {
        let n = 200;
        DataFrame::new(vec![
            (
                "num".into(),
                Column::from_opt_f64(
                    (0..n)
                        .map(|i| if i % 10 == 0 { None } else { Some(i as f64) })
                        .collect(),
                ),
            ),
            (
                "num2".into(),
                Column::from_f64((0..n).map(|i| (i * 2) as f64).collect()),
            ),
            (
                "cat".into(),
                Column::from_opt_string(
                    (0..n)
                        .map(|i| {
                            if i % 13 == 0 {
                                None
                            } else {
                                Some(format!("g{}", i % 4))
                            }
                        })
                        .collect(),
                ),
            ),
        ])
        .unwrap()
    }

    fn run_one<T: Send + Sync + 'static + Clone>(
        build: impl Fn(&mut ComputeContext<'_>) -> NodeId,
    ) -> T {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let node = build(&mut ctx);
        let out = ctx.execute(&[node]);
        un::<T>(&out[0]).clone()
    }

    #[test]
    fn col_meta_counts() {
        let meta: ColMeta = run_one(|ctx| col_meta(ctx, "num", None));
        assert_eq!(meta.len, 200);
        assert_eq!(meta.nulls, 20);
    }

    #[test]
    fn col_meta_after_drop() {
        // Dropping num's nulls leaves 180 rows; cat null where i%13==0.
        let meta: ColMeta = run_one(|ctx| col_meta(ctx, "cat", Some("num")));
        assert_eq!(meta.len, 180);
    }

    #[test]
    fn moments_match_direct_computation() {
        let m: Moments = run_one(|ctx| moments(ctx, "num", None));
        assert_eq!(m.count, 180);
        let direct: Vec<f64> = (0..200)
            .filter(|i| i % 10 != 0)
            .map(|i| i as f64)
            .collect();
        let dm = Moments::from_slice(&direct);
        assert!((m.mean - dm.mean).abs() < 1e-9);
        assert_eq!(m.min, dm.min);
        assert_eq!(m.max, dm.max);
    }

    #[test]
    fn sorted_values_are_sorted_and_complete() {
        let v: Vec<f64> = run_one(|ctx| sorted_values(ctx, "num", None));
        assert_eq!(v.len(), 180);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[179], 199.0);
    }

    #[test]
    fn histogram_covers_all_values() {
        let h: Histogram = run_one(|ctx| histogram(ctx, "num", 10, None));
        assert_eq!(h.total(), 180);
        assert_eq!(h.nbins(), 10);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 199.0);
    }

    #[test]
    fn freq_counts_categories() {
        let t: FreqTable = run_one(|ctx| freq(ctx, "cat", None));
        assert_eq!(t.distinct(), 4);
        assert_eq!(t.total() + t.nulls, 200);
    }

    #[test]
    fn pearson_partial_correlates_perfectly() {
        let p: PearsonPartial = run_one(|ctx| pearson_partial(ctx, "num", "num2"));
        assert!((p.finish().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_values_drop_incomplete() {
        let pairs: Vec<(f64, f64)> = run_one(|ctx| pair_values(ctx, "num", "num2"));
        assert_eq!(pairs.len(), 180);
        assert!(pairs.iter().all(|(a, b)| *b == *a * 2.0));
    }

    #[test]
    fn null_indicator_in_row_order() {
        let v: Vec<bool> = run_one(|ctx| null_indicator(ctx, "num"));
        assert_eq!(v.len(), 200);
        assert!(v[0]);
        assert!(!v[1]);
        assert!(v[10]);
        assert_eq!(v.iter().filter(|&&b| b).count(), 20);
    }

    #[test]
    fn grouped_numeric_respects_keep() {
        let keep = vec!["g0".to_string(), "g1".to_string()];
        let g: HashMap<String, Vec<f64>> =
            run_one(move |ctx| grouped_numeric(ctx, "cat", "num", &keep));
        assert_eq!(g.len(), 2);
        assert!(g.contains_key("g0"));
        assert!(!g.contains_key("g2"));
    }

    #[test]
    fn crosstab_counts() {
        let keep1 = vec!["g0".to_string(), "g1".to_string()];
        let keep2 = vec!["g2".to_string()];
        // cat × cat crosstab is degenerate but exercises the kernel:
        // cells require x∈keep1 and y∈keep2 for the same row, and a row's
        // category can't be g0 and g2 simultaneously, so all cells are 0.
        let c: HashMap<(String, String), u64> =
            run_one(move |ctx| crosstab(ctx, "cat", "cat", &keep1, &keep2));
        assert!(c.is_empty());
    }

    #[test]
    fn binned_numeric_covers_pairs() {
        let g: Vec<Vec<f64>> = run_one(|ctx| binned_numeric(ctx, "num", "num2", 5));
        assert_eq!(g.len(), 5);
        let total: usize = g.iter().map(Vec::len).sum();
        assert_eq!(total, 180);
    }

    #[test]
    fn hexbin_conserves_points() {
        let cells: HashMap<(i64, i64), u64> = run_one(|ctx| hexbin(ctx, "num", "num2", 8));
        let total: u64 = cells.values().sum();
        assert_eq!(total, 180);
        assert!(cells.len() > 1);
    }

    #[test]
    fn multi_line_shares_bins() {
        let keep = vec!["g0".to_string(), "g1".to_string()];
        let h: HashMap<String, Histogram> =
            run_one(move |ctx| multi_line(ctx, "cat", "num", &keep, 8));
        assert_eq!(h.len(), 2);
        let h0 = &h["g0"];
        let h1 = &h["g1"];
        assert_eq!(h0.min, h1.min);
        assert_eq!(h0.max, h1.max);
        assert!(h0.total() > 0);
    }

    #[test]
    fn kernels_share_nodes_across_repeat_builds() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let a = moments(&mut ctx, "num", None);
        let before = ctx.graph.len();
        let b = moments(&mut ctx, "num", None);
        assert_eq!(a, b);
        assert_eq!(ctx.graph.len(), before);
        // The histogram reuses the same moments node.
        let _h = histogram(&mut ctx, "num", 10, None);
        let c = moments(&mut ctx, "num", None);
        assert_eq!(a, c);
    }

    #[test]
    fn drop_variants_do_not_collide() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let plain = moments(&mut ctx, "num2", None);
        let dropped = moments(&mut ctx, "num2", Some("num"));
        assert_ne!(plain, dropped);
        let outs = ctx.execute(&[plain, dropped]);
        let (mp, md) = (un::<Moments>(&outs[0]), un::<Moments>(&outs[1]));
        assert_eq!(mp.count, 200);
        assert_eq!(md.count, 180);
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(
            merge_sorted(&[1.0, 3.0, 5.0], &[2.0, 4.0]),
            vec![1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(merge_sorted(&[], &[1.0]), vec![1.0]);
    }

    #[test]
    fn hex_cell_roundtrip_consistency() {
        // Points near a hex center map to that cell.
        for q in -3i64..3 {
            for r in -3i64..3 {
                let (x, y) = hex_center(q, r);
                assert_eq!(hex_cell(x, y), (q, r), "center of ({q},{r})");
            }
        }
    }
}
