//! The per-call compute context.
//!
//! A [`ComputeContext`] owns the lazy graph for one (or several) EDA calls
//! over one dataframe: the precomputed partition layout, the graph under
//! construction, and the engine settings. `create_report` reuses a single
//! context across every section, so the whole report is *one* optimized
//! graph — the paper's headline optimization.

use std::sync::Arc;

use eda_dataframe::DataFrame;
use eda_taskgraph::graph::Payload;
use eda_taskgraph::scheduler::{run_pool_observed, ProgressObserver};
use eda_taskgraph::{Engine, ExecStats, NodeId, PartitionedFrame, TaskGraph};

use crate::config::Config;

/// Graph-building and execution state for one dataframe.
pub struct ComputeContext<'a> {
    /// The source frame.
    pub df: &'a DataFrame,
    /// Resolved configuration.
    pub config: &'a Config,
    /// Partitioned view (precompute stage already done).
    pub pf: PartitionedFrame,
    /// The lazy graph under construction.
    pub graph: TaskGraph,
    /// Partition source nodes.
    pub sources: Vec<NodeId>,
    /// Cumulative stats across `execute` calls.
    pub last_stats: Option<ExecStats>,
    /// Optional progress observer (the Figure 1 progress bar).
    pub progress: Option<ProgressObserver>,
}

impl<'a> ComputeContext<'a> {
    /// Precompute the partition layout and set up an empty graph.
    pub fn new(df: &'a DataFrame, config: &'a Config) -> ComputeContext<'a> {
        // Stage 1 of Figure 4: precompute chunk-size information.
        // "Dask is slow on tiny data" (§5.2): scheduling many partitions
        // of a small frame is pure overhead, so the partition count is
        // capped at one partition per ~8K rows.
        let npartitions = config
            .engine
            .npartitions
            .min((df.nrows() / 8192).max(1));
        let pf = PartitionedFrame::from_frame(df, npartitions);
        let mut graph = if config.engine.share_computations {
            TaskGraph::new()
        } else {
            TaskGraph::without_dedup()
        };
        // Stage 2 begins: partition sources enter the graph.
        let sources = pf.source_nodes(&mut graph);
        ComputeContext { df, config, pf, graph, sources, last_stats: None, progress: None }
    }

    /// Attach a progress observer; each executed task reports
    /// `(completed, total)`.
    pub fn with_progress(mut self, observer: ProgressObserver) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Parameter-hash base mixing in the config, so config changes never
    /// share nodes with differently-configured builds.
    pub fn params(&self, extra: u64) -> u64 {
        self.config.compute_hash() ^ extra.rotate_left(17)
    }

    /// Execute the graph for `outputs` under the configured engine
    /// (stage 3 of Figure 4) and record stats.
    pub fn execute(&mut self, outputs: &[NodeId]) -> Vec<Payload> {
        let result = match &self.progress {
            Some(obs) => run_pool_observed(
                &self.graph,
                outputs,
                self.config.engine.workers,
                std::time::Duration::ZERO,
                Some(Arc::clone(obs)),
            ),
            None => Engine::LazyParallel { workers: self.config.engine.workers }
                .execute(&self.graph, outputs),
        };
        self.last_stats = Some(result.stats);
        result.outputs
    }

    /// Execute under an explicit engine (used by the engine-comparison
    /// benchmark, Figure 6a).
    pub fn execute_with(&mut self, engine: Engine, outputs: &[NodeId]) -> Vec<Payload> {
        let result = engine.execute(&self.graph, outputs);
        self.last_stats = Some(result.stats);
        result.outputs
    }
}

/// Wrap a value as a task payload.
pub fn pl<T: Send + Sync + 'static>(value: T) -> Payload {
    Arc::new(value)
}

/// Borrow a typed value out of a payload.
///
/// Panics on type mismatch — payload types are fixed by the kernel that
/// produced the node, so a mismatch is a plan-construction bug.
pub fn un<T: Send + Sync + 'static>(p: &Payload) -> &T {
    p.downcast_ref::<T>()
        .unwrap_or_else(|| panic!("payload type mismatch: expected {}", std::any::type_name::<T>()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame() -> DataFrame {
        DataFrame::new(vec![(
            "x".into(),
            Column::from_f64((0..100).map(|i| i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn context_precomputes_partitions() {
        let df = frame();
        let cfg = Config::default();
        let ctx = ComputeContext::new(&df, &cfg);
        assert_eq!(ctx.pf.nrows(), 100);
        assert_eq!(ctx.sources.len(), ctx.pf.npartitions());
        assert!(!ctx.graph.is_empty());
    }

    #[test]
    fn share_computations_flag_controls_dedup() {
        let df = frame();
        let mut cfg = Config::default();
        cfg.set("engine.share_computations", "false").unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let before = ctx.graph.len();
        // Re-adding the identical sources must duplicate without dedup.
        let again = ctx.pf.source_nodes(&mut ctx.graph);
        assert_eq!(again.len(), ctx.sources.len());
        assert_eq!(ctx.graph.len(), before + again.len());
    }

    #[test]
    fn execute_records_stats() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let outs: Vec<NodeId> = ctx.sources.clone();
        let payloads = ctx.execute(&outs);
        assert_eq!(payloads.len(), outs.len());
        assert!(ctx.last_stats.as_ref().unwrap().tasks_run >= outs.len());
    }

    #[test]
    fn progress_observer_reports_completions() {
        let df = frame();
        let cfg = Config::default();
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let mut ctx = ComputeContext::new(&df, &cfg).with_progress(Arc::new(move |done, total| {
            assert!(done <= total);
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        let outs: Vec<NodeId> = ctx.sources.clone();
        ctx.execute(&outs);
        assert_eq!(
            count.load(std::sync::atomic::Ordering::SeqCst),
            ctx.last_stats.as_ref().unwrap().tasks_run
        );
    }

    #[test]
    fn params_mixes_config() {
        let df = frame();
        let a_cfg = Config::default();
        let ctx = ComputeContext::new(&df, &a_cfg);
        let mut b_cfg = Config::default();
        b_cfg.set("hist.bins", "99").unwrap();
        let ctx2 = ComputeContext::new(&df, &b_cfg);
        assert_ne!(ctx.params(1), ctx2.params(1));
        assert_ne!(ctx.params(1), ctx.params(2));
    }

    #[test]
    fn payload_roundtrip() {
        let p = pl(42i64);
        assert_eq!(*un::<i64>(&p), 42);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn payload_type_mismatch_panics() {
        let p = pl(42i64);
        un::<String>(&p);
    }
}
