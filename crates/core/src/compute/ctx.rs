//! The per-call compute context.
//!
//! A [`ComputeContext`] owns the lazy graph for one (or several) EDA calls
//! over one dataframe: the precomputed partition layout, the graph under
//! construction, and the engine settings. `create_report` reuses a single
//! context across every section, so the whole report is *one* optimized
//! graph — the paper's headline optimization.

use std::sync::Arc;

use eda_dataframe::DataFrame;
use eda_taskgraph::graph::Payload;
use eda_taskgraph::outcome::TaskOutcome;
use eda_taskgraph::scheduler::{
    run_pool_opts, run_single_thread_opts, ExecOptions, ProgressObserver,
};
use eda_taskgraph::govern::{self, CancelToken, MemoryGauge, RetryPolicy};
use eda_taskgraph::{
    AdmissionGate, CacheHandle, Engine, ExecStats, NodeId, PartitionedFrame, PayloadSizer,
    ResultCache, TaskGraph,
};

use crate::config::Config;
use crate::error::{EdaError, EdaResult};

/// The process-wide result cache shared by every EDA call. Entries are
/// keyed by `(frame fingerprint, task key)`, so a second `plot` or
/// `create_report` over the same frame reuses the first call's
/// intermediates. Changing `engine.cache_budget_bytes` replaces the cache
/// with a fresh one of the new budget.
fn session_cache(budget: usize) -> Arc<ResultCache> {
    static CACHE: std::sync::Mutex<Option<(usize, Arc<ResultCache>)>> =
        std::sync::Mutex::new(None);
    // Recover a poisoned registry lock: the map is a (budget, cache)
    // pair that is valid at every store, so a thread that panicked while
    // holding the lock cannot have left it torn. Degrading to the
    // existing cache beats cascading the panic into every later call.
    let mut guard = CACHE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    match &*guard {
        Some((b, cache)) if *b == budget => Arc::clone(cache),
        _ => {
            let cache = Arc::new(ResultCache::new(budget));
            *guard = Some((budget, Arc::clone(&cache)));
            cache
        }
    }
}

/// The process-wide admission gate (`engine.max_concurrent_runs`).
/// Mirrors [`session_cache`]: one gate per configured capacity, replaced
/// when the capacity changes. Returns `None` when admission is off.
pub(crate) fn admission_gate(capacity: usize) -> Option<Arc<AdmissionGate>> {
    if capacity == 0 {
        return None;
    }
    static GATE: std::sync::Mutex<Option<(usize, Arc<AdmissionGate>)>> =
        std::sync::Mutex::new(None);
    let mut guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    match &*guard {
        Some((c, gate)) if *c == capacity => Some(Arc::clone(gate)),
        _ => {
            let gate = AdmissionGate::new(capacity);
            *guard = Some((capacity, Arc::clone(&gate)));
            Some(gate)
        }
    }
}

/// Domain sizer for the byte-budgeted cache: the taskgraph's structural
/// estimate only knows primitive containers and charges a pointer-sized
/// floor for opaque payloads, so the multi-megabyte correlation
/// intermediates would be billed as ~16 bytes each and never evict.
fn payload_sizer() -> PayloadSizer {
    use crate::compute::correlation::ColumnPrep;
    use eda_stats::corr::CorrMatrix;
    Arc::new(|p: &Payload| {
        if let Some(prep) = p.downcast_ref::<ColumnPrep>() {
            let kendall = prep.kendall.as_ref().map_or(0, |k| k.perm.len() * 4 + 8);
            return Some((prep.values.len() + prep.ranks.len()) * 8 + kendall);
        }
        if let Some(m) = p.downcast_ref::<CorrMatrix>() {
            let labels: usize = m.labels.iter().map(|l| l.len() + 24).sum();
            return Some(m.cells.len() * 16 + labels);
        }
        None
    })
}

/// Graph-building and execution state for one dataframe.
pub struct ComputeContext<'a> {
    /// The source frame.
    pub df: &'a DataFrame,
    /// Resolved configuration.
    pub config: &'a Config,
    /// Partitioned view (precompute stage already done).
    pub pf: PartitionedFrame,
    /// The lazy graph under construction.
    pub graph: TaskGraph,
    /// Partition source nodes.
    pub sources: Vec<NodeId>,
    /// Cumulative stats across `execute` calls.
    pub last_stats: Option<ExecStats>,
    /// Optional progress observer (the Figure 1 progress bar).
    pub progress: Option<ProgressObserver>,
    /// Result cache override; `None` uses the process-wide session cache.
    /// Tests inject a private cache here for deterministic warm/cold runs.
    pub cache_override: Option<Arc<ResultCache>>,
    /// Run-wide cancel token: present when a handle armed one
    /// ([`govern::armed_token`]) or `engine.run_deadline_ms` is set.
    /// Shared by every `execute` call of this context, so the whole
    /// report run stops together.
    pub cancel: Option<CancelToken>,
    /// Run-wide memory gauge (`engine.memory_budget_bytes`), `None` when
    /// the budget is off. Charges accumulate across `execute` calls.
    pub gauge: Option<MemoryGauge>,
}

impl<'a> ComputeContext<'a> {
    /// Precompute the partition layout and set up an empty graph.
    pub fn new(df: &'a DataFrame, config: &'a Config) -> ComputeContext<'a> {
        // Hook the dependency-free stats kernels up to the scheduler's
        // cooperative-cancellation probe, once per process. With no
        // governed run active the probe reads a thread-local `None` and
        // answers false, so ungoverned runs are unaffected.
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| eda_stats::interrupt::register(govern::interrupted));
        // Telemetry opt-in (`engine.metrics`): latch the process registry
        // on and connect the kernels' morsel probe to it. The latch stays
        // on for the process lifetime once any run opts in; runs without
        // the knob still never record scheduler-side series because those
        // paths are gated on `ExecOptions::metrics`, not the latch.
        if config.engine.metrics {
            eda_taskgraph::metrics::global().set_enabled(true);
            static MORSEL_HOOK: std::sync::Once = std::sync::Once::new();
            MORSEL_HOOK.call_once(|| {
                eda_stats::telemetry::register(|rows| {
                    let m = eda_taskgraph::metrics::global();
                    if m.enabled() {
                        m.morsels_total.incr();
                        m.morsel_rows_total.add(rows);
                    }
                });
            });
        }
        // Stage 1 of Figure 4: precompute chunk-size information.
        // "Dask is slow on tiny data" (§5.2): scheduling many partitions
        // of a small frame is pure overhead, so the partition count is
        // capped at one partition per ~8K rows.
        let npartitions = config
            .engine
            .npartitions
            .min((df.nrows() / 8192).max(1));
        let pf = PartitionedFrame::from_frame(df, npartitions);
        let mut graph = if config.engine.share_computations {
            TaskGraph::new()
        } else {
            TaskGraph::without_dedup()
        };
        // Stage 2 begins: partition sources enter the graph.
        let sources = pf.source_nodes(&mut graph);
        // The run token merges the two cancellation sources: a token the
        // caller armed via an `AnalysisHandle` (cancel()-able from
        // another thread) and the whole-run deadline. The deadline
        // anchors here — context creation is the start of the run.
        let run_deadline = match config.engine.run_deadline_ms {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        };
        let cancel = match (govern::armed_token(), run_deadline) {
            (Some(t), Some(budget)) => Some(t.capped(budget)),
            (Some(t), None) => Some(t),
            (None, Some(budget)) => Some(CancelToken::with_deadline(budget)),
            (None, None) => None,
        };
        let gauge = match config.engine.memory_budget_bytes {
            0 => None,
            budget => Some(MemoryGauge::new(budget)),
        };
        ComputeContext {
            df,
            config,
            pf,
            graph,
            sources,
            last_stats: None,
            progress: None,
            cache_override: None,
            cancel,
            gauge,
        }
    }

    /// Attach a progress observer; each executed task reports
    /// `(completed, total)`.
    pub fn with_progress(mut self, observer: ProgressObserver) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Use a private result cache instead of the process-wide one.
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache_override = Some(cache);
        self
    }

    /// Cache handle for this frame, or `None` when caching is disabled
    /// (`engine.cache_budget_bytes = 0`). The fingerprint is the frame's
    /// identity hash — already computed as the partition dataset id.
    fn cache_handle(&self) -> Option<CacheHandle> {
        match self.config.engine.cache_budget_bytes {
            0 => None,
            budget => {
                let cache = self
                    .cache_override
                    .as_ref().map_or_else(|| session_cache(budget), Arc::clone);
                Some(CacheHandle::new(cache, self.pf.dataset_id).with_sizer(payload_sizer()))
            }
        }
    }

    /// Parameter-hash base mixing in the config, so config changes never
    /// share nodes with differently-configured builds.
    pub fn params(&self, extra: u64) -> u64 {
        self.config.compute_hash() ^ extra.rotate_left(17)
    }

    /// The per-task deadline from `engine.task_deadline_ms` (0 = off).
    fn deadline(&self) -> Option<std::time::Duration> {
        match self.config.engine.task_deadline_ms {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    }

    /// Execute the graph for `outputs` under the configured engine
    /// (stage 3 of Figure 4) and record stats. Returns one outcome per
    /// output; failed tasks don't poison the rest of the graph.
    pub fn execute_outcomes(&mut self, outputs: &[NodeId]) -> Vec<TaskOutcome> {
        let opts = ExecOptions {
            per_task_latency: std::time::Duration::ZERO,
            deadline: self.deadline(),
            observer: self.progress.as_ref().map(Arc::clone),
            trace: self.config.engine.profile,
            cache: self.cache_handle(),
            cancel: self.cancel.clone(),
            gauge: self.gauge.clone(),
            retry: RetryPolicy::retries(self.config.engine.task_retries),
            // Budgets must price payloads by their real footprint even
            // when the result cache is off, so the domain sizer is always
            // passed alongside the gauge.
            sizer: self.gauge.is_some().then(payload_sizer),
            metrics: self.config.engine.metrics,
            morsel_bytes: self.config.engine.morsel_bytes,
        };
        // `engine.simd = false` forces the scalar kernels even in builds
        // carrying the `simd` feature (a process-wide latch, like the
        // metrics one: the vector/scalar choice is not part of task
        // keys, so per-run flapping would confuse cached results).
        eda_stats::vector::set_force_scalar(!self.config.engine.simd);
        // workers <= 1 means the in-place topological scheduler: no pool
        // to spin up, and fault-tolerance behaviour stays identical.
        let result = if self.config.engine.workers <= 1 {
            run_single_thread_opts(&self.graph, outputs, &opts)
        } else {
            run_pool_opts(&self.graph, outputs, self.config.engine.workers, &opts)
        };
        self.last_stats = Some(result.stats);
        result.outcomes
    }

    /// Execute and unwrap the payloads, panicking on any task failure.
    /// Kernels whose plans cannot fail structurally use this; anything
    /// user-facing goes through [`Self::execute_checked`] or
    /// [`Self::execute_outcomes`].
    pub fn execute(&mut self, outputs: &[NodeId]) -> Vec<Payload> {
        self.execute_outcomes(outputs).into_iter().map(TaskOutcome::unwrap).collect()
    }

    /// Execute and surface the first task failure as an [`EdaError`]
    /// instead of panicking — the recoverable path for `plot*` calls.
    pub fn execute_checked(&mut self, outputs: &[NodeId]) -> EdaResult<Vec<Payload>> {
        let outcomes = self.execute_outcomes(outputs);
        // Prefer a root failure (panic / timeout) over a skip so the
        // surfaced error names the actual reason.
        let errors = || outcomes.iter().filter_map(|o| o.error());
        let err = errors()
            .find(|e| !matches!(e.failure, eda_taskgraph::TaskFailure::Skipped { .. }))
            .or_else(|| errors().next());
        if let Some(err) = err {
            return Err(EdaError::from(err.as_ref()));
        }
        Ok(outcomes.into_iter().map(TaskOutcome::unwrap).collect())
    }

    /// Execute under an explicit engine (used by the engine-comparison
    /// benchmark, Figure 6a). Honours `engine.profile` so benchmark runs
    /// can emit traces too.
    pub fn execute_with(&mut self, engine: Engine, outputs: &[NodeId]) -> Vec<Payload> {
        let opts = ExecOptions {
            trace: self.config.engine.profile,
            ..ExecOptions::default()
        };
        let result = engine.execute_opts(&self.graph, outputs, &opts);
        let payloads = result.outputs();
        self.last_stats = Some(result.stats);
        payloads
    }
}

/// Wrap a value as a task payload.
pub fn pl<T: Send + Sync + 'static>(value: T) -> Payload {
    Arc::new(value)
}

/// Borrow a typed value out of a payload.
///
/// Panics on type mismatch — payload types are fixed by the kernel that
/// produced the node, so a mismatch is a plan-construction bug.
pub fn un<T: Send + Sync + 'static>(p: &Payload) -> &T {
    p.downcast_ref::<T>()
        .unwrap_or_else(|| panic!("payload type mismatch: expected {}", std::any::type_name::<T>()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame() -> DataFrame {
        DataFrame::new(vec![(
            "x".into(),
            Column::from_f64((0..100).map(|i| i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn context_precomputes_partitions() {
        let df = frame();
        let cfg = Config::default();
        let ctx = ComputeContext::new(&df, &cfg);
        assert_eq!(ctx.pf.nrows(), 100);
        assert_eq!(ctx.sources.len(), ctx.pf.npartitions());
        assert!(!ctx.graph.is_empty());
    }

    #[test]
    fn share_computations_flag_controls_dedup() {
        let df = frame();
        let mut cfg = Config::default();
        cfg.set("engine.share_computations", "false").unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let before = ctx.graph.len();
        // Re-adding the identical sources must duplicate without dedup.
        let again = ctx.pf.source_nodes(&mut ctx.graph);
        assert_eq!(again.len(), ctx.sources.len());
        assert_eq!(ctx.graph.len(), before + again.len());
    }

    #[test]
    fn execute_records_stats() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let outs: Vec<NodeId> = ctx.sources.clone();
        let payloads = ctx.execute(&outs);
        assert_eq!(payloads.len(), outs.len());
        assert!(ctx.last_stats.as_ref().unwrap().tasks_run >= outs.len());
    }

    #[test]
    fn progress_observer_reports_completions() {
        let df = frame();
        let cfg = Config::default();
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let mut ctx = ComputeContext::new(&df, &cfg).with_progress(Arc::new(move |done, total| {
            assert!(done <= total);
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        let outs: Vec<NodeId> = ctx.sources.clone();
        ctx.execute(&outs);
        assert_eq!(
            count.load(std::sync::atomic::Ordering::SeqCst),
            ctx.last_stats.as_ref().unwrap().tasks_run
        );
    }

    #[test]
    fn execute_checked_surfaces_task_failures_as_errors() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let bad = ctx.graph.op("explode", 0, vec![ctx.sources[0]], |_| -> Payload {
            panic!("kernel bug")
        });
        let good = ctx.sources[0];
        let err = ctx.execute_checked(&[bad]).unwrap_err();
        assert!(
            matches!(&err, crate::error::EdaError::TaskFailed { task, .. } if task == "explode"),
            "{err}"
        );
        // The same context still executes healthy outputs.
        assert!(ctx.execute_checked(&[good]).is_ok());
    }

    #[test]
    fn execute_outcomes_isolates_failures_per_output() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let bad = ctx.graph.op("explode", 0, vec![ctx.sources[0]], |_| -> Payload {
            panic!("kernel bug")
        });
        let outcomes = ctx.execute_outcomes(&[bad, ctx.sources[0]]);
        assert!(outcomes[0].is_failed());
        assert!(outcomes[1].is_ok());
        let stats = ctx.last_stats.as_ref().unwrap();
        assert_eq!(stats.tasks_failed, 1);
    }

    #[test]
    fn config_deadline_times_out_slow_tasks() {
        let df = frame();
        let mut cfg = Config::default();
        cfg.set("engine.task_deadline_ms", "2").unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let slow = ctx.graph.op("slow", 0, vec![ctx.sources[0]], |d| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            Arc::clone(&d[0])
        });
        let err = ctx.execute_checked(&[slow]).unwrap_err();
        assert!(matches!(err, crate::error::EdaError::Timeout { .. }), "{err}");
        assert_eq!(ctx.last_stats.as_ref().unwrap().tasks_timed_out, 1);
    }

    #[test]
    fn params_mixes_config() {
        let df = frame();
        let a_cfg = Config::default();
        let ctx = ComputeContext::new(&df, &a_cfg);
        let mut b_cfg = Config::default();
        b_cfg.set("hist.bins", "99").unwrap();
        let ctx2 = ComputeContext::new(&df, &b_cfg);
        assert_ne!(ctx.params(1), ctx2.params(1));
        assert_ne!(ctx.params(1), ctx.params(2));
    }

    #[test]
    fn payload_roundtrip() {
        let p = pl(42i64);
        assert_eq!(*un::<i64>(&p), 42);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn payload_type_mismatch_panics() {
        let p = pl(42i64);
        un::<String>(&p);
    }
}
