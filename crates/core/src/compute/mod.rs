//! The Compute module (paper §4.2.2 and Figure 4).
//!
//! Every plot function follows the same data-processing pipeline:
//!
//! 1. **Precompute stage**: chunk-size metadata is computed up front so the
//!    lazy graph can be built without inspecting delayed data (the paper's
//!    fix for `rechunk`, §5.2).
//! 2. **Graph construction**: each statistic becomes a map/tree-reduce
//!    sub-plan over the partitions; structural keys collapse shared
//!    subcomputations across visualizations.
//! 3. **Dask phase**: the engine executes the graph partition-parallel.
//! 4. **Pandas phase**: small-data finishing computations (filtering a
//!    correlation matrix, assembling chart data) run eagerly on the reduced
//!    aggregates ("Dask is slow on tiny data").
//! 5. The [`crate::intermediate::Intermediates`] are returned.

pub mod bivariate;
pub mod correlation;
pub mod ctx;
pub mod kernels;
pub mod missing;
pub mod overview;
pub mod timeseries;
pub mod univariate;

pub use ctx::ComputeContext;
