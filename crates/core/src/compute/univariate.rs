//! Univariate analysis: `plot(df, col)` (paper Figure 2, row 2).
//!
//! * Numerical column → column statistics, histogram, KDE plot, normal
//!   Q-Q plot, box plot.
//! * Categorical column → column statistics, bar chart, pie chart, word
//!   cloud, word frequencies.
//!
//! The module is split into *plan* (add graph nodes) and *assemble*
//! (turn reduced payloads into intermediates) so `create_report` can plan
//! every column into one graph, execute once, and assemble per column.

use eda_stats::freq::FreqTable;
use eda_stats::kde::kde_grid;
use eda_stats::moments::Moments;
use eda_stats::qq::{normal_quantile, normal_qq_points};
use eda_stats::quantile::{quantile_sorted, BoxPlot};
use eda_stats::text::TextStats;
use eda_taskgraph::graph::Payload;
use eda_taskgraph::NodeId;

use crate::config::Config;
use crate::dtype::{detect, SemanticType};
use crate::error::EdaResult;
use crate::insights::{categorical_insights, numeric_insights, Insight};
use crate::intermediate::{Inter, Intermediates, StatRow};

use super::ctx::{un, ComputeContext};
use super::kernels::{self, ColMeta};

/// Graph nodes of a numeric univariate panel.
#[derive(Debug, Clone, Copy)]
pub struct NumericPlan {
    /// Row/null counts.
    pub meta: NodeId,
    /// Moments sketch.
    pub moments: NodeId,
    /// Fully sorted values (shared by stats, box plot, Q-Q, KDE sample —
    /// and the distinct count, which is just the sorted vector's run
    /// count: one more visualization served by an already-shared node).
    pub sorted: NodeId,
    /// Histogram.
    pub hist: NodeId,
}

impl NumericPlan {
    /// The output nodes to request from the engine.
    pub fn outputs(&self) -> Vec<NodeId> {
        vec![self.meta, self.moments, self.sorted, self.hist]
    }
}

/// Add the numeric univariate plan for `column`.
pub fn plan_numeric(ctx: &mut ComputeContext<'_>, column: &str) -> NumericPlan {
    NumericPlan {
        meta: kernels::col_meta(ctx, column, None),
        moments: kernels::moments(ctx, column, None),
        sorted: kernels::sorted_values(ctx, column, None),
        hist: kernels::histogram(ctx, column, ctx.config.hist.bins, None),
    }
}

/// Distinct count of an ascending-sorted slice (run count).
pub fn distinct_sorted(sorted: &[f64]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0] != w[1]).count()
}

/// Graph nodes of a categorical univariate panel.
#[derive(Debug, Clone, Copy)]
pub struct CategoricalPlan {
    /// Row/null counts.
    pub meta: NodeId,
    /// Frequency table.
    pub freq: NodeId,
    /// Word/length statistics.
    pub text: NodeId,
}

impl CategoricalPlan {
    /// The output nodes to request from the engine.
    pub fn outputs(&self) -> Vec<NodeId> {
        vec![self.meta, self.freq, self.text]
    }
}

/// Add the categorical univariate plan for `column`.
pub fn plan_categorical(ctx: &mut ComputeContext<'_>, column: &str) -> CategoricalPlan {
    CategoricalPlan {
        meta: kernels::col_meta(ctx, column, None),
        freq: kernels::freq(ctx, column, None),
        text: kernels::text_stats(ctx, column),
    }
}

/// Run `plot(df, column)`: detect the type, plan, execute, assemble.
pub fn compute_univariate(
    ctx: &mut ComputeContext<'_>,
    column: &str,
) -> EdaResult<(Intermediates, Vec<Insight>, SemanticType)> {
    let col = ctx.df.column(column)?;
    let sem = detect(col, ctx.config.types.low_cardinality);
    match sem {
        SemanticType::Numerical => {
            let plan = plan_numeric(ctx, column);
            let outs = ctx.execute_checked(&plan.outputs())?;
            let (ims, insights) = assemble_numeric(column, ctx.config, &outs);
            Ok((ims, insights, sem))
        }
        SemanticType::Categorical => {
            let plan = plan_categorical(ctx, column);
            let outs = ctx.execute_checked(&plan.outputs())?;
            let (ims, insights) = assemble_categorical(column, ctx.config, &outs);
            Ok((ims, insights, sem))
        }
    }
}

/// Assemble the numeric panel from payloads ordered as
/// [`NumericPlan::outputs`]. This is the eager "Pandas phase": every input
/// is already a small aggregate (the sorted vector being the one O(n)
/// exception, exactly as in the paper's quantile pipeline).
pub fn assemble_numeric(
    column: &str,
    config: &Config,
    outs: &[Payload],
) -> (Intermediates, Vec<Insight>) {
    let meta = un::<ColMeta>(&outs[0]);
    let moments = un::<Moments>(&outs[1]);
    let sorted = un::<Vec<f64>>(&outs[2]);
    let hist = un::<eda_stats::histogram::Histogram>(&outs[3]);

    let box_plot = BoxPlot::from_sorted(sorted, config.box_plot.max_outliers);
    let insights = numeric_insights(column, meta, moments, box_plot.as_ref(), &config.insight);

    let mut ims = Intermediates::new();
    ims.push(
        "stats",
        Inter::StatsTable(numeric_stats_rows(meta, moments, sorted, &insights)),
    );
    ims.push(
        "histogram",
        Inter::Histogram { edges: hist.edges(), counts: hist.counts.clone() },
    );
    // KDE over a bounded sample of the sorted values (interactivity:
    // kernel sums over millions of points would defeat the latency goal).
    let sample = stride_sample(sorted, 5000);
    let (xs, ys) = kde_grid(&sample, config.kde.grid);
    if config.violin.enabled {
        // The violin is the same density profile mirrored by the
        // renderer — shared computation, zero extra passes.
        ims.push(
            "violin_plot",
            Inter::Violin { ys: xs.clone(), densities: ys.clone() },
        );
    }
    ims.push("kde_plot", Inter::Kde { xs, ys });
    ims.push(
        "qq_plot",
        Inter::QQ(qq_from_sorted(sorted, config.qq.points)),
    );
    if let Some(bp) = box_plot {
        ims.push("box_plot", Inter::Boxes(vec![(column.to_string(), bp)]));
    }
    (ims, insights)
}

/// Assemble the categorical panel from payloads ordered as
/// [`CategoricalPlan::outputs`].
pub fn assemble_categorical(
    column: &str,
    config: &Config,
    outs: &[Payload],
) -> (Intermediates, Vec<Insight>) {
    let meta = un::<ColMeta>(&outs[0]);
    let freq = un::<FreqTable>(&outs[1]);
    let text = un::<TextStats>(&outs[2]);

    let insights = categorical_insights(column, meta, freq, &config.insight);

    let mut ims = Intermediates::new();
    ims.push(
        "stats",
        Inter::StatsTable(categorical_stats_rows(meta, freq, text, &insights)),
    );
    ims.push("bar_chart", bar_from_freq(freq, config.bar.ngroups));
    ims.push("pie_chart", pie_from_freq(freq, config.pie.slices));
    let words = text.top_words(config.word.top);
    ims.push(
        "word_cloud",
        Inter::WordFreq {
            words: words.clone(),
            total: text.total_words(),
            distinct: text.distinct_words(),
        },
    );
    ims.push(
        "word_frequencies",
        Inter::WordFreq {
            words,
            total: text.total_words(),
            distinct: text.distinct_words(),
        },
    );
    (ims, insights)
}

// ---------------------------------------------------------------------------
// Shared assembly helpers (also used by overview/bivariate/report)
// ---------------------------------------------------------------------------

/// Bar-chart intermediate from a frequency table.
pub fn bar_from_freq(freq: &FreqTable, ngroups: usize) -> Inter {
    let top = freq.top_k(ngroups);
    let shown: u64 = top.iter().map(|(_, c)| c).sum();
    Inter::Bar {
        categories: top.iter().map(|(c, _)| c.clone()).collect(),
        counts: top.iter().map(|(_, c)| *c).collect(),
        other: freq.total() - shown,
        total_distinct: freq.distinct(),
    }
}

/// Pie-chart intermediate from a frequency table.
pub fn pie_from_freq(freq: &FreqTable, slices: usize) -> Inter {
    let total = freq.total().max(1) as f64;
    let top = freq.top_k(slices);
    Inter::Pie {
        categories: top.iter().map(|(c, _)| c.clone()).collect(),
        fractions: top.iter().map(|(_, c)| *c as f64 / total).collect(),
    }
}

/// Every `len/k`-th element of a slice (at least 1 apart).
pub fn stride_sample(values: &[f64], k: usize) -> Vec<f64> {
    if values.len() <= k {
        return values.to_vec();
    }
    let stride = values.len() / k;
    values.iter().copied().step_by(stride.max(1)).take(k).collect()
}

/// Q-Q points straight from pre-sorted data (avoids re-sorting).
pub fn qq_from_sorted(sorted: &[f64], max_points: usize) -> Vec<(f64, f64)> {
    let n = sorted.len();
    if n < 2 {
        return Vec::new();
    }
    // Reuse the generic implementation on a bounded sample when huge.
    if n > 100_000 {
        return normal_qq_points(&stride_sample(sorted, 50_000), max_points);
    }
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let std = var.sqrt();
    if std <= 0.0 {
        return Vec::new();
    }
    let k = n.min(max_points.max(2));
    (0..k)
        .map(|i| {
            let p = (i as f64 + 0.5) / k as f64;
            (
                mean + std * normal_quantile(p),
                quantile_sorted(sorted, p).expect("non-empty"),
            )
        })
        .collect()
}

/// Compact number formatting for stats tables.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.4e}")
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

fn highlighted(insights: &[Insight], label: &str) -> bool {
    insights.iter().any(|i| match i.kind {
        crate::insights::InsightKind::Missing => label == "missing",
        crate::insights::InsightKind::Skewed => label == "skewness",
        crate::insights::InsightKind::Infinite => label == "infinite",
        crate::insights::InsightKind::Zeros => label == "zeros",
        crate::insights::InsightKind::Negatives => label == "negatives",
        crate::insights::InsightKind::HighCardinality => label == "distinct",
        crate::insights::InsightKind::Outliers => label == "outliers",
        _ => false,
    })
}

fn numeric_stats_rows(
    meta: &ColMeta,
    m: &Moments,
    sorted: &[f64],
    insights: &[Insight],
) -> Vec<StatRow> {
    let q = |p: f64| quantile_sorted(sorted, p).map_or("-".into(), fmt_num);
    let opt = |v: Option<f64>| v.map_or("-".into(), fmt_num);
    let mut rows = vec![
        StatRow::new("count", meta.len.to_string()),
        StatRow::new(
            "missing",
            format!(
                "{} ({:.1}%)",
                meta.nulls,
                100.0 * meta.nulls as f64 / meta.len.max(1) as f64
            ),
        ),
        StatRow::new("distinct", distinct_sorted(sorted).to_string()),
        StatRow::new("mean", fmt_num(m.mean)),
        StatRow::new("std", opt(m.std())),
        StatRow::new("variance", opt(m.variance())),
        StatRow::new("cv", opt(m.cv())),
        StatRow::new("min", fmt_num(m.min)),
        StatRow::new("q1", q(0.25)),
        StatRow::new("median", q(0.5)),
        StatRow::new("q3", q(0.75)),
        StatRow::new("max", fmt_num(m.max)),
        StatRow::new("range", opt(m.range())),
        StatRow::new("sum", fmt_num(m.sum)),
        StatRow::new("skewness", opt(m.skewness())),
        StatRow::new("kurtosis", opt(m.kurtosis())),
        StatRow::new("zeros", m.zeros.to_string()),
        StatRow::new("negatives", m.negatives.to_string()),
        StatRow::new("infinite", m.infinites.to_string()),
    ];
    for r in &mut rows {
        r.highlight = highlighted(insights, &r.label);
    }
    rows
}

fn categorical_stats_rows(
    meta: &ColMeta,
    freq: &FreqTable,
    text: &TextStats,
    insights: &[Insight],
) -> Vec<StatRow> {
    let mode = freq.mode();
    let mut rows = vec![
        StatRow::new("count", meta.len.to_string()),
        StatRow::new(
            "missing",
            format!(
                "{} ({:.1}%)",
                meta.nulls,
                100.0 * meta.nulls as f64 / meta.len.max(1) as f64
            ),
        ),
        StatRow::new("distinct", freq.distinct().to_string()),
        StatRow::new(
            "mode",
            mode.map_or("-".into(), |(c, n)| format!("{c} ({n})")),
        ),
        StatRow::new("entropy", fmt_num(freq.entropy())),
        StatRow::new("total words", text.total_words().to_string()),
        StatRow::new("distinct words", text.distinct_words().to_string()),
        StatRow::new("mean length", fmt_num(text.lengths.mean)),
        StatRow::new(
            "min length",
            if text.lengths.count > 0 { fmt_num(text.lengths.min) } else { "-".into() },
        ),
        StatRow::new(
            "max length",
            if text.lengths.count > 0 { fmt_num(text.lengths.max) } else { "-".into() },
        ),
        StatRow::new("blank", text.blank.to_string()),
    ];
    for r in &mut rows {
        r.highlight = highlighted(insights, &r.label);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::{Column, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            (
                "price".into(),
                Column::from_opt_f64(
                    (0..500)
                        .map(|i| {
                            if i % 25 == 0 {
                                None
                            } else {
                                Some(100.0 + ((i * 37) % 200) as f64)
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "city".into(),
                Column::from_opt_string(
                    (0..500)
                        .map(|i| {
                            if i % 50 == 0 {
                                None
                            } else {
                                Some(format!("city {}", i % 7))
                            }
                        })
                        .collect(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn numeric_panel_has_all_figure2_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _insights, sem) = compute_univariate(&mut ctx, "price").unwrap();
        assert_eq!(sem, SemanticType::Numerical);
        for chart in ["stats", "histogram", "kde_plot", "qq_plot", "box_plot"] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
    }

    #[test]
    fn categorical_panel_has_all_figure2_charts() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _insights, sem) = compute_univariate(&mut ctx, "city").unwrap();
        assert_eq!(sem, SemanticType::Categorical);
        for chart in ["stats", "bar_chart", "pie_chart", "word_cloud", "word_frequencies"] {
            assert!(ims.get(chart).is_some(), "missing {chart}");
        }
    }

    #[test]
    fn numeric_stats_values_are_correct() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_univariate(&mut ctx, "price").unwrap();
        let Some(Inter::StatsTable(rows)) = ims.get("stats") else {
            panic!("stats table missing")
        };
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label}"))
                .value
                .clone()
        };
        assert_eq!(get("count"), "500");
        assert!(get("missing").starts_with("20 "));
        // i = 0 (the only index where (i*37)%200 == 0) is null, so the
        // smallest surviving value is 101.
        assert_eq!(get("min"), "101");
    }

    #[test]
    fn histogram_bins_follow_config() {
        let df = frame();
        let cfg = Config::from_pairs(vec![("hist.bins", "7")]).unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_univariate(&mut ctx, "price").unwrap();
        let Some(Inter::Histogram { counts, edges }) = ims.get("histogram") else {
            panic!()
        };
        assert_eq!(counts.len(), 7);
        assert_eq!(edges.len(), 8);
    }

    #[test]
    fn bar_chart_groups_and_other() {
        let df = frame();
        let cfg = Config::from_pairs(vec![("bar.ngroups", "3")]).unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_univariate(&mut ctx, "city").unwrap();
        let Some(Inter::Bar { categories, counts, other, total_distinct }) =
            ims.get("bar_chart")
        else {
            panic!()
        };
        assert_eq!(categories.len(), 3);
        assert_eq!(*total_distinct, 7);
        let shown: u64 = counts.iter().sum();
        assert_eq!(shown + other, 490); // 500 - 10 nulls
    }

    #[test]
    fn word_stats_tokenize_values() {
        let df = frame();
        let cfg = Config::default();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_univariate(&mut ctx, "city").unwrap();
        let Some(Inter::WordFreq { words, .. }) = ims.get("word_cloud") else {
            panic!()
        };
        // Every value contains the word "city".
        assert_eq!(words[0].0, "city");
        assert_eq!(words[0].1, 490);
    }

    #[test]
    fn missing_insight_fires_and_highlights() {
        let df = frame();
        let cfg = Config::default(); // 4% nulls < 5% threshold → no insight
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (_, insights, _) = compute_univariate(&mut ctx, "price").unwrap();
        assert!(insights
            .iter()
            .all(|i| i.kind != crate::insights::InsightKind::Missing));

        let strict = Config::from_pairs(vec![("insight.missing", "0.01")]).unwrap();
        let mut ctx = ComputeContext::new(&df, &strict);
        let (ims, insights, _) = compute_univariate(&mut ctx, "price").unwrap();
        assert!(insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::Missing));
        let Some(Inter::StatsTable(rows)) = ims.get("stats") else { panic!() };
        assert!(rows.iter().find(|r| r.label == "missing").unwrap().highlight);
    }

    #[test]
    fn stride_sample_bounds() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = stride_sample(&v, 100);
        assert!(s.len() <= 100);
        assert_eq!(stride_sample(&v, 10_000).len(), 1000);
    }

    #[test]
    fn qq_from_sorted_matches_generic() {
        let vals: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * 3.0).collect();
        let fast = qq_from_sorted(&vals, 50);
        let generic = normal_qq_points(&vals, 50);
        assert_eq!(fast.len(), generic.len());
        for (a, b) in fast.iter().zip(&generic) {
            assert!((a.0 - b.0).abs() < 1e-9);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn violin_is_opt_in() {
        let df = frame();
        let base = Config::default();
        let mut ctx = ComputeContext::new(&df, &base);
        let (ims, _, _) = compute_univariate(&mut ctx, "price").unwrap();
        assert!(ims.get("violin_plot").is_none());

        let cfg = Config::from_pairs(vec![("violin.enabled", "true")]).unwrap();
        let mut ctx = ComputeContext::new(&df, &cfg);
        let (ims, _, _) = compute_univariate(&mut ctx, "price").unwrap();
        let Some(Inter::Violin { ys, densities }) = ims.get("violin_plot") else {
            panic!("violin expected")
        };
        assert_eq!(ys.len(), densities.len());
        assert!(!ys.is_empty());
    }

    #[test]
    fn distinct_from_sorted_runs() {
        assert_eq!(distinct_sorted(&[]), 0);
        assert_eq!(distinct_sorted(&[1.0]), 1);
        assert_eq!(distinct_sorted(&[1.0, 1.0, 2.0, 2.0, 3.0]), 3);
    }

    #[test]
    fn fmt_num_forms() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(1.23456), "1.2346");
        assert!(fmt_num(1.0e9).contains('e'));
        assert!(fmt_num(f64::INFINITY).contains("inf"));
    }
}
