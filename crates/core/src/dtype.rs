//! Semantic type detection.
//!
//! Plot functions behave differently for *numerical* and *categorical*
//! columns (paper Figure 2). Physical storage type is a strong hint but
//! not the whole story: an integer column with a handful of distinct
//! values (a rating of 1–5, an encoded label) reads as categorical. The
//! detection rule matches Pandas-profiling's behaviour, which the paper's
//! comparisons assume: strings and booleans are categorical; numerics are
//! numerical unless their distinct-value count is tiny.

use eda_dataframe::{Column, DataType};

/// How a column participates in EDA tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticType {
    /// Continuous/quantitative: histogram, KDE, Q-Q, correlations, ...
    Numerical,
    /// Discrete/qualitative: bar chart, pie chart, word statistics, ...
    Categorical,
}

impl SemanticType {
    /// Single-letter code used in mapping-rule descriptions (`N`/`C`).
    pub fn code(self) -> char {
        match self {
            SemanticType::Numerical => 'N',
            SemanticType::Categorical => 'C',
        }
    }
}

impl std::fmt::Display for SemanticType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticType::Numerical => f.write_str("Numerical"),
            SemanticType::Categorical => f.write_str("Categorical"),
        }
    }
}

/// Detect the semantic type of a column.
///
/// `low_cardinality_threshold` is the largest distinct count an integer
/// column may have and still be treated as categorical (the config default
/// is 10, see [`crate::config::Config::type_detection`]). Floats always
/// read as numerical — fractional values are never category codes.
pub fn detect(column: &Column, low_cardinality_threshold: usize) -> SemanticType {
    match column.dtype() {
        DataType::Str | DataType::Bool => SemanticType::Categorical,
        DataType::Float64 => SemanticType::Numerical,
        DataType::Int64 => {
            if distinct_at_most(column, low_cardinality_threshold) {
                SemanticType::Categorical
            } else {
                SemanticType::Numerical
            }
        }
    }
}

/// Early-exit distinct counter: true when the column has at most `k`
/// distinct non-null values. Scans at most until the `k+1`-th distinct
/// value, so wide-cardinality columns bail out quickly.
fn distinct_at_most(column: &Column, k: usize) -> bool {
    let mut seen: Vec<i64> = Vec::with_capacity(k + 1);
    let Ok(iter) = column.numeric_iter() else { return false };
    for v in iter.flatten() {
        let as_int = v as i64;
        if !seen.contains(&as_int) {
            seen.push(as_int);
            if seen.len() > k {
                return false;
            }
        }
    }
    !seen.is_empty() || column.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_bools_are_categorical() {
        assert_eq!(
            detect(&Column::from_strs(&["a", "b"]), 10),
            SemanticType::Categorical
        );
        assert_eq!(
            detect(&Column::from_bool(vec![true, false]), 10),
            SemanticType::Categorical
        );
    }

    #[test]
    fn floats_are_numerical() {
        assert_eq!(
            detect(&Column::from_f64(vec![1.0, 1.0, 1.0]), 10),
            SemanticType::Numerical
        );
    }

    #[test]
    fn wide_integers_are_numerical() {
        let c = Column::from_i64((0..100).collect());
        assert_eq!(detect(&c, 10), SemanticType::Numerical);
    }

    #[test]
    fn low_cardinality_integers_are_categorical() {
        let c = Column::from_i64((0..100).map(|i| i % 4).collect());
        assert_eq!(detect(&c, 10), SemanticType::Categorical);
        // Threshold is inclusive.
        let c10 = Column::from_i64((0..100).map(|i| i % 10).collect());
        assert_eq!(detect(&c10, 10), SemanticType::Categorical);
        let c11 = Column::from_i64((0..110).map(|i| i % 11).collect());
        assert_eq!(detect(&c11, 10), SemanticType::Numerical);
    }

    #[test]
    fn threshold_zero_forces_numerical() {
        let c = Column::from_i64(vec![1, 1, 1]);
        assert_eq!(detect(&c, 0), SemanticType::Numerical);
    }

    #[test]
    fn nulls_ignored_in_cardinality() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(2), None, Some(1)]);
        assert_eq!(detect(&c, 10), SemanticType::Categorical);
    }

    #[test]
    fn empty_integer_column_is_categorical() {
        // Nothing to measure; treat as categorical like an empty string col.
        let c = Column::from_i64(vec![]);
        assert_eq!(detect(&c, 10), SemanticType::Categorical);
    }

    #[test]
    fn codes_and_display() {
        assert_eq!(SemanticType::Numerical.code(), 'N');
        assert_eq!(SemanticType::Categorical.code(), 'C');
        assert_eq!(SemanticType::Numerical.to_string(), "Numerical");
    }
}
