//! Config-routed data loading: chunked-parallel CSV ingestion and the
//! `.edaf` binary columnar format.
//!
//! [`load_data`] is the front door the CLI and library callers use: it
//! dispatches on file extension (`.edaf` → footer-driven columnar read,
//! anything else → CSV) and routes the engine knobs
//! (`engine.ingest_chunk_bytes`, `engine.workers`, `engine.mmap`) into
//! the `eda-io` pipeline. With `engine.ingest_chunk_bytes = 0` CSV
//! loads run the sequential single-pass reader, bit-identical to the
//! pre-chunk engine.

use std::path::Path;

use eda_dataframe::DataFrame;
use eda_io::chunked::{read_csv_chunked, IngestOptions};
use eda_io::edaf::{read_edaf, write_edaf, EdafInfo};

use crate::config::Config;
use crate::error::EdaResult;

/// Translate the engine knobs into ingestion options.
fn ingest_options(config: &Config) -> IngestOptions {
    IngestOptions {
        chunk_bytes: config.engine.ingest_chunk_bytes,
        workers: config.engine.workers,
        mmap: config.engine.mmap,
        ..IngestOptions::default()
    }
}

/// Load a CSV file through the chunked parallel pipeline (or the
/// sequential reader when `engine.ingest_chunk_bytes = 0`).
pub fn load_csv<P: AsRef<Path>>(path: P, config: &Config) -> EdaResult<DataFrame> {
    Ok(read_csv_chunked(path, &ingest_options(config))?)
}

/// Load a data file, dispatching on extension: `.edaf` reads the
/// binary columnar format (column blocks straight off the footer, no
/// parsing), anything else parses as CSV.
pub fn load_data<P: AsRef<Path>>(path: P, config: &Config) -> EdaResult<DataFrame> {
    let is_edaf =
        path.as_ref().extension().is_some_and(|e| e.eq_ignore_ascii_case("edaf"));
    if is_edaf {
        Ok(read_edaf(path)?)
    } else {
        load_csv(path, config)
    }
}

/// Convert a CSV file to `.edaf`: ingest through the chunked pipeline,
/// then serialise with per-column encodings and a projection footer.
/// Returns the written file's metadata (sizes, encodings, fingerprint).
pub fn convert_to_edaf<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    config: &Config,
) -> EdaResult<EdafInfo> {
    let df = load_csv(input, config)?;
    Ok(write_edaf(output, &df)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    const CSV: &str = "a,b\n1,x\n2.5,\"y,z\"\n3,NA\n";

    fn temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eda_core_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::File::create(&path).unwrap().write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn chunked_and_sequential_loads_agree() {
        let path = temp("knobs.csv", CSV);
        let mut seq_cfg = Config::default();
        seq_cfg.set("engine.ingest_chunk_bytes", "0").unwrap();
        let mut par_cfg = Config::default();
        par_cfg.set("engine.ingest_chunk_bytes", "8").unwrap();
        let seq = load_csv(&path, &seq_cfg).unwrap();
        let par = load_csv(&path, &par_cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.content_fingerprint(), par.content_fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_then_load_round_trips() {
        let csv_path = temp("convert.csv", CSV);
        let edaf_path = temp("convert.edaf", "");
        let config = Config::default();
        let info = convert_to_edaf(&csv_path, &edaf_path, &config).unwrap();
        let from_csv = load_data(&csv_path, &config).unwrap();
        let from_edaf = load_data(&edaf_path, &config).unwrap();
        assert_eq!(from_csv, from_edaf);
        assert_eq!(info.content_fingerprint, from_edaf.content_fingerprint());
        for p in [csv_path, edaf_path] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn mmap_knob_loads_identically() {
        let path = temp("mmap.csv", CSV);
        let mut cfg = Config::default();
        cfg.set("engine.mmap", "true").unwrap();
        let mapped = load_csv(&path, &cfg).unwrap();
        let buffered = load_csv(&path, &Config::default()).unwrap();
        assert_eq!(mapped, buffered);
        std::fs::remove_file(&path).ok();
    }
}
