//! The task-centric public API (paper §3.2).
//!
//! `plot_tasktype(df, col_list, config)`: the function name picks the task
//! family, the column count picks the granularity — zero columns is the
//! overview, one is detailed single-column analysis, two is pair analysis.

use eda_dataframe::DataFrame;
use eda_taskgraph::{ExecStats, MetricsSnapshot};

use crate::compute::{
    bivariate, correlation, ctx::ComputeContext, missing, overview, timeseries, univariate,
};
use crate::config::{howto_for, Config, HowToGuide};
use crate::dtype::{detect, SemanticType};
use crate::error::{EdaError, EdaResult};
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates};

/// Which EDA task an [`Analysis`] answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskKind {
    /// `plot(df)`.
    Overview,
    /// `plot(df, x)`.
    Univariate {
        /// The analyzed column.
        column: String,
        /// Its detected semantic type.
        semantic: SemanticType,
    },
    /// `plot(df, x, y)`.
    Bivariate {
        /// The column pair.
        columns: (String, String),
        /// Their detected semantic types.
        semantics: (SemanticType, SemanticType),
    },
    /// `plot_correlation(df)`.
    CorrelationOverview,
    /// `plot_correlation(df, x)`.
    CorrelationVector(String),
    /// `plot_correlation(df, x, y)`.
    CorrelationPair(String, String),
    /// `plot_missing(df)`.
    MissingOverview,
    /// `plot_missing(df, x)`.
    MissingImpact(String),
    /// `plot_missing(df, x, y)`.
    MissingPair(String, String),
    /// `plot_timeseries(df, time, value)` (the §7 extension task).
    TimeSeries(String, String),
}

/// Health of one section of an [`Analysis`] or a
/// [`crate::report::Report`].
///
/// A failing kernel no longer poisons a whole run: the scheduler isolates
/// the panic (or deadline overrun), the section that needed it degrades to
/// `Failed` with diagnostics, and everything else completes normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// Every task behind the section produced its payload.
    Ok,
    /// The section's computation failed; carries what the diagnostics
    /// panel renders.
    Failed {
        /// Human-readable description of the failure.
        error: String,
        /// Name of the root-cause task (e.g. `"moments:price"`).
        root_task: String,
        /// Wall-clock time spent before the failure was recorded.
        elapsed: std::time::Duration,
    },
}

impl SectionStatus {
    /// `true` when the section computed fully.
    pub fn is_ok(&self) -> bool {
        matches!(self, SectionStatus::Ok)
    }

    /// Build a `Failed` status from a scheduler task error, attributing
    /// skipped tasks to their transitive root cause.
    pub fn from_task_error(err: &eda_taskgraph::TaskError) -> SectionStatus {
        SectionStatus::Failed {
            error: err.to_string(),
            root_task: err.root_cause().1.to_string(),
            elapsed: err.elapsed,
        }
    }
}

/// The result of one EDA call: intermediates, insights, execution stats.
#[derive(Debug)]
pub struct Analysis {
    /// The task that was run.
    pub task: TaskKind,
    /// Everything the Render module needs.
    pub intermediates: Intermediates,
    /// Auto-detected insights.
    pub insights: Vec<Insight>,
    /// What the engine did (tasks run, CSE hits, wall time).
    pub stats: Option<ExecStats>,
    /// Whether the analysis computed fully. `Failed` analyses have empty
    /// intermediates and render as a diagnostics panel instead of charts.
    pub status: SectionStatus,
}

impl Analysis {
    /// Shortcut to one intermediate by name.
    pub fn get(&self, name: &str) -> Option<&Inter> {
        self.intermediates.get(name)
    }

    /// The how-to guide for one of this analysis' charts (paper Figure 1,
    /// part D).
    pub fn howto(&self, chart: &str) -> HowToGuide {
        // Per-column chart names carry a `:column` suffix.
        let base = chart.split(':').next().unwrap_or(chart);
        howto_for(base)
    }

    /// Names of all produced charts/tables.
    pub fn chart_names(&self) -> Vec<&str> {
        self.intermediates.names()
    }
}

/// Apply the §7 sampling extension: when `engine.sample_rows` is set and
/// the frame is larger, analyze a systematic sample and notify the user
/// via an [`crate::insights::InsightKind::Approximated`] insight.
fn maybe_sample(df: &DataFrame, config: &Config) -> Option<(DataFrame, crate::insights::Insight)> {
    let target = config.engine.sample_rows;
    if target == 0 || df.nrows() <= target {
        return None;
    }
    let stride = df.nrows().div_ceil(target);
    let sampled = df.stride(stride);
    let note = crate::insights::approximated_insight(sampled.nrows(), df.nrows());
    Some((sampled, note))
}

fn check_columns(function: &'static str, columns: &[&str], max: usize) -> EdaResult<()> {
    if columns.len() > max {
        return Err(EdaError::TooManyColumns { function, max, got: columns.len() });
    }
    Ok(())
}

/// Admission control (`engine.max_concurrent_runs`): claim a slot on the
/// process-wide gate, blocking in its bounded queue when the process is
/// at capacity and shedding with [`EdaError::Overloaded`] past the queue
/// bound. `None` (no permit to hold) when the knob is off.
fn admit(config: &Config) -> EdaResult<Option<eda_taskgraph::AdmissionPermit>> {
    match crate::compute::ctx::admission_gate(config.engine.max_concurrent_runs) {
        None => Ok(None),
        Some(gate) => match gate.try_admit() {
            Ok(permit) => Ok(Some(permit)),
            Err(over) => {
                if config.engine.metrics {
                    let m = eda_taskgraph::metrics::global();
                    m.set_enabled(true);
                    m.admission_shed_total.incr();
                }
                Err(EdaError::Overloaded { running: over.running, queued: over.queued })
            }
        },
    }
}

/// Freeze the process-lifetime telemetry registry into a
/// [`MetricsSnapshot`] (Prometheus text via
/// [`MetricsSnapshot::to_prometheus`], JSON via
/// [`MetricsSnapshot::to_json`]).
///
/// The registry only accumulates from runs configured with
/// `engine.metrics`; before any such run every series reads zero.
///
/// ```
/// let snap = eda_core::metrics_snapshot();
/// assert!(snap.to_prometheus().contains("eda_runs_total"));
/// ```
pub fn metrics_snapshot() -> MetricsSnapshot {
    eda_taskgraph::metrics::global().snapshot()
}

/// Whether a section failure is a memory-budget refusal — the trigger of
/// the degradation ladder. The phrase is pinned by `EdaError`'s (and the
/// scheduler's) budget Display forms, including skip messages that chain
/// through a budget-failed root.
fn over_budget(status: &SectionStatus) -> bool {
    matches!(status, SectionStatus::Failed { error, .. } if error.contains("memory budget"))
}

/// The degradation ladder's fallback input: a systematic quarter-sample
/// (never below 256 rows), plus the approximation notice for the output.
/// `None` when the frame is already too small to shrink meaningfully —
/// the budget failure then stands as diagnostics.
fn budget_sample(df: &DataFrame) -> Option<(DataFrame, crate::insights::Insight)> {
    let target = (df.nrows() / 4).max(256);
    if df.nrows() <= target {
        return None;
    }
    let sampled = df.stride(df.nrows().div_ceil(target));
    let note = crate::insights::approximated_insight(sampled.nrows(), df.nrows());
    Some((sampled, note))
}

/// Run an analysis; when it degrades on the run memory budget, retry once
/// over a sampled frame and flag the approximate output. A retry that
/// still fails leaves the original diagnostics in place.
fn with_budget_ladder(
    df: &DataFrame,
    run: impl Fn(&DataFrame) -> EdaResult<Analysis>,
) -> EdaResult<Analysis> {
    let analysis = run(df)?;
    if !over_budget(&analysis.status) {
        return Ok(analysis);
    }
    let Some((small, note)) = budget_sample(df) else {
        return Ok(analysis);
    };
    let mut retry = run(&small)?;
    if retry.status.is_ok() {
        retry.insights.insert(0, note);
        return Ok(retry);
    }
    Ok(analysis)
}

/// Degrade a task-level failure into an `Analysis` with a `Failed`
/// status (graceful degradation: the caller still gets stats and a
/// renderable diagnostics panel). Planning errors — unknown column, bad
/// config, wrong arity — pass through as `Err` unchanged.
fn degraded(task: TaskKind, stats: Option<ExecStats>, err: EdaError) -> EdaResult<Analysis> {
    let root_task = match &err {
        EdaError::TaskFailed { task, .. }
        | EdaError::Timeout { task, .. }
        | EdaError::Cancelled { task, .. }
        | EdaError::BudgetExceeded { task, .. } => task.clone(),
        _ => return Err(err),
    };
    // Prefer the failing task's own span duration (profiled runs) over
    // the coarse whole-run elapsed.
    let elapsed = stats
        .as_ref()
        .and_then(|s| s.trace.as_ref())
        .and_then(|t| t.elapsed_of(&root_task))
        .or_else(|| stats.as_ref().map(|s| s.elapsed))
        .unwrap_or_default();
    Ok(Analysis {
        task,
        intermediates: Intermediates::new(),
        insights: Vec::new(),
        stats,
        status: SectionStatus::Failed { error: err.to_string(), root_task, elapsed },
    })
}

/// `plot(df, cols, config)`: overview (0 columns), univariate (1), or
/// bivariate (2) analysis.
pub fn plot(df: &DataFrame, columns: &[&str], config: &Config) -> EdaResult<Analysis> {
    check_columns("plot", columns, 2)?;
    let _permit = admit(config)?;
    let sampled = maybe_sample(df, config);
    let (df, note) = match &sampled {
        Some((s, n)) => (s, Some(n.clone())),
        None => (df, None),
    };
    let mut analysis = with_budget_ladder(df, |df| plot_inner(df, columns, config))?;
    if let Some(note) = note {
        analysis.insights.insert(0, note);
    }
    Ok(analysis)
}

fn plot_inner(df: &DataFrame, columns: &[&str], config: &Config) -> EdaResult<Analysis> {
    let mut ctx = ComputeContext::new(df, config);
    match columns {
        [] => match overview::compute_overview(&mut ctx) {
            Ok((intermediates, insights)) => Ok(Analysis {
                task: TaskKind::Overview,
                intermediates,
                insights,
                stats: ctx.last_stats,
                status: SectionStatus::Ok,
            }),
            Err(e) => degraded(TaskKind::Overview, ctx.last_stats, e),
        },
        [x] => {
            // Detect up front so a degraded analysis still knows its task.
            let semantic = detect(df.column(x)?, config.types.low_cardinality);
            match univariate::compute_univariate(&mut ctx, x) {
                Ok((intermediates, insights, semantic)) => Ok(Analysis {
                    task: TaskKind::Univariate { column: x.to_string(), semantic },
                    intermediates,
                    insights,
                    stats: ctx.last_stats,
                    status: SectionStatus::Ok,
                }),
                Err(e) => degraded(
                    TaskKind::Univariate { column: x.to_string(), semantic },
                    ctx.last_stats,
                    e,
                ),
            }
        }
        [x, y] => {
            let semantics = (
                detect(df.column(x)?, config.types.low_cardinality),
                detect(df.column(y)?, config.types.low_cardinality),
            );
            match bivariate::compute_bivariate(&mut ctx, x, y) {
                Ok((intermediates, insights, semantics)) => Ok(Analysis {
                    task: TaskKind::Bivariate {
                        columns: (x.to_string(), y.to_string()),
                        semantics,
                    },
                    intermediates,
                    insights,
                    stats: ctx.last_stats,
                    status: SectionStatus::Ok,
                }),
                Err(e) => degraded(
                    TaskKind::Bivariate {
                        columns: (x.to_string(), y.to_string()),
                        semantics,
                    },
                    ctx.last_stats,
                    e,
                ),
            }
        }
        _ => unreachable!("checked above"),
    }
}

/// `plot_correlation(df, cols, config)`: matrix overview (0 columns),
/// one-vs-rest vectors (1), or pair regression (2).
pub fn plot_correlation(
    df: &DataFrame,
    columns: &[&str],
    config: &Config,
) -> EdaResult<Analysis> {
    check_columns("plot_correlation", columns, 2)?;
    let _permit = admit(config)?;
    with_budget_ladder(df, |df| plot_correlation_inner(df, columns, config))
}

fn plot_correlation_inner(
    df: &DataFrame,
    columns: &[&str],
    config: &Config,
) -> EdaResult<Analysis> {
    let mut ctx = ComputeContext::new(df, config);
    let (task, computed) = match columns {
        [] => (
            TaskKind::CorrelationOverview,
            correlation::compute_correlation_overview(&mut ctx),
        ),
        [x] => (
            TaskKind::CorrelationVector(x.to_string()),
            correlation::compute_correlation_vector(&mut ctx, x),
        ),
        [x, y] => (
            TaskKind::CorrelationPair(x.to_string(), y.to_string()),
            correlation::compute_correlation_pair(&mut ctx, x, y),
        ),
        _ => unreachable!("checked above"),
    };
    match computed {
        Ok((intermediates, insights)) => Ok(Analysis {
            task,
            intermediates,
            insights,
            stats: ctx.last_stats,
            status: SectionStatus::Ok,
        }),
        Err(e) => degraded(task, ctx.last_stats, e),
    }
}

/// `plot_missing(df, cols, config)`: nullity overview (0 columns), impact
/// of one column's missing rows on the rest (1), or on one column (2).
pub fn plot_missing(df: &DataFrame, columns: &[&str], config: &Config) -> EdaResult<Analysis> {
    check_columns("plot_missing", columns, 2)?;
    let _permit = admit(config)?;
    with_budget_ladder(df, |df| plot_missing_inner(df, columns, config))
}

fn plot_missing_inner(df: &DataFrame, columns: &[&str], config: &Config) -> EdaResult<Analysis> {
    let mut ctx = ComputeContext::new(df, config);
    let (task, computed) = match columns {
        [] => (
            TaskKind::MissingOverview,
            missing::compute_missing_overview(&mut ctx),
        ),
        [x] => (
            TaskKind::MissingImpact(x.to_string()),
            missing::compute_missing_impact(&mut ctx, x),
        ),
        [x, y] => (
            TaskKind::MissingPair(x.to_string(), y.to_string()),
            missing::compute_missing_pair(&mut ctx, x, y),
        ),
        _ => unreachable!("checked above"),
    };
    match computed {
        Ok((intermediates, insights)) => Ok(Analysis {
            task,
            intermediates,
            insights,
            stats: ctx.last_stats,
            status: SectionStatus::Ok,
        }),
        Err(e) => degraded(task, ctx.last_stats, e),
    }
}

/// `plot_timeseries(df, time, value, config)`: time-series analysis —
/// resampled line, rolling mean, autocorrelation, trend detection. This
/// implements the first future-work task of the paper's §7 with the same
/// task-centric architecture as the built-in calls.
pub fn plot_timeseries(
    df: &DataFrame,
    time: &str,
    value: &str,
    config: &Config,
) -> EdaResult<Analysis> {
    let _permit = admit(config)?;
    let sampled = maybe_sample(df, config);
    let (df, note) = match &sampled {
        Some((s, n)) => (s, Some(n.clone())),
        None => (df, None),
    };
    let mut analysis =
        with_budget_ladder(df, |df| plot_timeseries_inner(df, time, value, config))?;
    if let Some(note) = note {
        analysis.insights.insert(0, note);
    }
    Ok(analysis)
}

fn plot_timeseries_inner(
    df: &DataFrame,
    time: &str,
    value: &str,
    config: &Config,
) -> EdaResult<Analysis> {
    let mut ctx = ComputeContext::new(df, config);
    let task = TaskKind::TimeSeries(time.to_string(), value.to_string());
    let (intermediates, insights) = match timeseries::compute_timeseries(&mut ctx, time, value) {
        Ok(parts) => parts,
        Err(e) => return degraded(task, ctx.last_stats, e),
    };
    Ok(Analysis { task, intermediates, insights, stats: ctx.last_stats, status: SectionStatus::Ok })
}

/// `create_report(df, config)`: the full profile report. See
/// [`crate::report`].
///
/// Governed like the `plot*` calls: admission-controlled
/// (`engine.max_concurrent_runs`) and budget-laddered — a report whose
/// sections degrade on the run memory budget is recomputed once over a
/// sampled frame and flagged approximate.
pub fn create_report(df: &DataFrame, config: &Config) -> EdaResult<crate::report::Report> {
    let _permit = admit(config)?;
    let report = crate::report::Report::create(df, config)?;
    let budget_failed = report.failed_sections().iter().any(|(_, s)| over_budget(s));
    if budget_failed {
        if let Some((small, note)) = budget_sample(df) {
            let mut retry = crate::report::Report::create(&small, config)?;
            if !retry.failed_sections().iter().any(|(_, s)| over_budget(s)) {
                retry.insights.insert(0, note);
                return Ok(retry);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            (
                "price".into(),
                Column::from_opt_f64(
                    (0..200)
                        .map(|i| if i % 20 == 0 { None } else { Some(100.0 + (i % 50) as f64) })
                        .collect(),
                ),
            ),
            (
                "size".into(),
                Column::from_f64((0..200).map(|i| 30.0 + (i % 70) as f64).collect()),
            ),
            (
                "city".into(),
                Column::from_string((0..200).map(|i| format!("c{}", i % 5)).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn plot_dispatches_by_arity() {
        let df = frame();
        let cfg = Config::default();
        assert_eq!(plot(&df, &[], &cfg).unwrap().task, TaskKind::Overview);
        assert!(matches!(
            plot(&df, &["price"], &cfg).unwrap().task,
            TaskKind::Univariate { .. }
        ));
        assert!(matches!(
            plot(&df, &["price", "city"], &cfg).unwrap().task,
            TaskKind::Bivariate { .. }
        ));
        assert!(matches!(
            plot(&df, &["a", "b", "c"], &cfg),
            Err(EdaError::TooManyColumns { .. })
        ));
    }

    #[test]
    fn plot_unknown_column_errors() {
        let df = frame();
        let cfg = Config::default();
        assert!(matches!(
            plot(&df, &["nope"], &cfg),
            Err(EdaError::Frame(_))
        ));
    }

    #[test]
    fn correlation_dispatches() {
        let df = frame();
        let cfg = Config::default();
        assert_eq!(
            plot_correlation(&df, &[], &cfg).unwrap().task,
            TaskKind::CorrelationOverview
        );
        assert!(matches!(
            plot_correlation(&df, &["price"], &cfg).unwrap().task,
            TaskKind::CorrelationVector(_)
        ));
        assert!(matches!(
            plot_correlation(&df, &["price", "size"], &cfg).unwrap().task,
            TaskKind::CorrelationPair(..)
        ));
    }

    #[test]
    fn missing_dispatches() {
        let df = frame();
        let cfg = Config::default();
        assert_eq!(
            plot_missing(&df, &[], &cfg).unwrap().task,
            TaskKind::MissingOverview
        );
        assert!(matches!(
            plot_missing(&df, &["price"], &cfg).unwrap().task,
            TaskKind::MissingImpact(_)
        ));
        assert!(matches!(
            plot_missing(&df, &["price", "size"], &cfg).unwrap().task,
            TaskKind::MissingPair(..)
        ));
    }

    #[test]
    fn analysis_exposes_stats_and_howto() {
        let df = frame();
        let cfg = Config::default();
        let a = plot(&df, &["price"], &cfg).unwrap();
        let stats = a.stats.as_ref().unwrap();
        assert!(stats.tasks_run > 0);
        let guide = a.howto("histogram");
        assert!(guide.entries.iter().any(|e| e.spec.key == "hist.bins"));
        // Suffixed chart names resolve to their base guide.
        let g2 = a.howto("histogram:price");
        assert_eq!(g2.entries.len(), guide.entries.len());
        assert!(!a.chart_names().is_empty());
    }

    #[test]
    fn timeseries_task() {
        let n = 300;
        let df = DataFrame::new(vec![
            ("t".into(), Column::from_f64((0..n).map(|i| i as f64).collect())),
            (
                "v".into(),
                Column::from_f64((0..n).map(|i| 10.0 + 0.1 * i as f64).collect()),
            ),
        ])
        .unwrap();
        let cfg = Config::default();
        let a = plot_timeseries(&df, "t", "v", &cfg).unwrap();
        assert!(matches!(a.task, TaskKind::TimeSeries(..)));
        for chart in ["line", "rolling_mean", "acf", "stats"] {
            assert!(a.get(chart).is_some(), "missing {chart}");
        }
        // A pure trend must be flagged.
        assert!(a
            .insights
            .iter()
            .any(|i| i.kind == crate::insights::InsightKind::Trend));
    }

    #[test]
    fn sampling_extension_flags_approximation() {
        let df = frame();
        // frame() has 200 rows; sample down to ~50.
        let cfg = Config::from_pairs(vec![("engine.sample_rows", "50")]).unwrap();
        let a = plot(&df, &["price"], &cfg).unwrap();
        let note = a
            .insights
            .iter()
            .find(|i| i.kind == crate::insights::InsightKind::Approximated)
            .expect("approximation notice");
        assert!(note.message.contains("50 of 200"));
        // Stats reflect the sample, not the full frame.
        let Some(Inter::StatsTable(rows)) = a.get("stats") else { panic!() };
        let count = rows.iter().find(|r| r.label == "count").unwrap();
        assert_eq!(count.value, "50");
        // Without the option, no notice.
        let exact = plot(&df, &["price"], &Config::default()).unwrap();
        assert!(exact
            .insights
            .iter()
            .all(|i| i.kind != crate::insights::InsightKind::Approximated));
    }

    #[test]
    fn sampling_noop_when_frame_small_enough() {
        let df = frame();
        let cfg = Config::from_pairs(vec![("engine.sample_rows", "100000")]).unwrap();
        let a = plot(&df, &["price"], &cfg).unwrap();
        assert!(a
            .insights
            .iter()
            .all(|i| i.kind != crate::insights::InsightKind::Approximated));
    }

    #[test]
    fn fine_grained_call_avoids_unrelated_work() {
        // plot(df, price) must not compute city's frequency table: the
        // graph contains only price-related kernels.
        let df = frame();
        let cfg = Config::default();
        let a = plot(&df, &["price"], &cfg).unwrap();
        let stats = a.stats.unwrap();
        // Rough bound: 5 kernels × (npartitions maps + reduces) + sources.
        let nparts = cfg.engine.npartitions;
        assert!(
            stats.tasks_run <= 5 * (2 * nparts) + nparts,
            "ran {} tasks",
            stats.tasks_run
        );
    }

    #[test]
    fn repeated_plot_reuses_cached_intermediates() {
        let df = frame();
        let cfg = Config::default();
        let cold = plot(&df, &["price"], &cfg).unwrap();
        let warm = plot(&df, &["price"], &cfg).unwrap();
        assert_eq!(cold.intermediates, warm.intermediates);
        let cold_stats = cold.stats.unwrap();
        let warm_stats = warm.stats.unwrap();
        assert!(warm_stats.cache_hits > 0, "second call over the same frame must hit");
        assert!(
            warm_stats.tasks_run < cold_stats.tasks_run,
            "warm {} vs cold {}",
            warm_stats.tasks_run,
            cold_stats.tasks_run
        );
        assert!(warm_stats.cache_bytes_saved > 0);
    }

    #[test]
    fn make_unique_invalidates_cached_results() {
        let mut df = frame();
        let cfg = Config::default();
        plot(&df, &["size"], &cfg).unwrap();
        // Copy-on-write: the column moves to fresh buffers, so the frame
        // fingerprint changes and none of the warm entries may serve.
        df.make_unique("size").unwrap();
        let after = plot(&df, &["size"], &cfg).unwrap();
        let stats = after.stats.unwrap();
        assert_eq!(stats.cache_hits, 0, "stale entries must not survive make_unique");
    }

    #[test]
    fn disabled_cache_output_is_identical() {
        let df = frame();
        let cached_cfg = Config::default();
        let uncached_cfg =
            Config::from_pairs(vec![("engine.cache_budget_bytes", "0")]).unwrap();
        // Warm the cache, then compare a cache-served analysis against the
        // uncached path bit for bit.
        plot(&df, &["price", "size"], &cached_cfg).unwrap();
        let cached = plot(&df, &["price", "size"], &cached_cfg).unwrap();
        let uncached = plot(&df, &["price", "size"], &uncached_cfg).unwrap();
        assert_eq!(
            crate::json::intermediates_to_json(&cached.intermediates),
            crate::json::intermediates_to_json(&uncached.intermediates)
        );
        let stats = uncached.stats.unwrap();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
    }

    #[test]
    fn morsels_and_simd_off_reproduce_scalar_reference() {
        use eda_stats::histogram::Histogram;
        use eda_stats::moments::Moments;

        // Large enough that the morsel engine engages under the default
        // 256 KiB budget (100k f64 rows ≈ 780 KiB), single partition so
        // the scalar reference below replays the exact legacy fold.
        let n = 100_000usize;
        let vals: Vec<f64> =
            (0..n as u64).map(|i| ((i * 2654435761) % 10_000) as f64 / 7.0 - 500.0).collect();
        let df =
            DataFrame::new(vec![("v".into(), Column::from_f64(vals.clone()))]).unwrap();
        let base = vec![
            ("engine.npartitions", "1"),
            ("engine.cache_budget_bytes", "0"),
        ];
        let cfg_of = |extra: &[(&str, &str)]| {
            let mut pairs = base.clone();
            pairs.extend_from_slice(extra);
            Config::from_pairs(pairs).unwrap()
        };
        let legacy = cfg_of(&[("engine.morsel_bytes", "0"), ("engine.simd", "false")]);

        // Golden: with both knobs off the pipeline must reproduce the
        // sequential scalar sketches bit for bit.
        let a = plot(&df, &["v"], &legacy).unwrap();
        let mut m = Moments::new();
        for &v in &vals {
            m.push(v);
        }
        let mut h = Histogram::new(m.min, m.max, 50);
        for &v in &vals {
            h.push(v);
        }
        let Some(Inter::Histogram { edges, counts }) = a.get("histogram") else {
            panic!("univariate analysis must produce a histogram");
        };
        let expect_edges = h.edges();
        assert_eq!(edges.len(), expect_edges.len());
        for (got, want) in edges.iter().zip(&expect_edges) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(counts, &h.counts);

        // Turning morsels (and compiled-in SIMD) back on may reassociate
        // float sums, but every integer-exact output — bin counts and
        // the extrema-derived edges — must not move.
        let fast = cfg_of(&[]);
        let b = plot(&df, &["v"], &fast).unwrap();
        let Some(Inter::Histogram { edges: fe, counts: fc }) = b.get("histogram") else {
            panic!("univariate analysis must produce a histogram");
        };
        for (got, want) in fe.iter().zip(&expect_edges) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(fc, &h.counts);

        // Worker count and steal interleavings must never reach the
        // output bytes: the morsel fold is in index order by design.
        let w1 = plot(&df, &["v"], &cfg_of(&[("engine.workers", "1")])).unwrap();
        let w4 = plot(&df, &["v"], &cfg_of(&[("engine.workers", "4")])).unwrap();
        assert_eq!(
            crate::json::intermediates_to_json(&w1.intermediates),
            crate::json::intermediates_to_json(&w4.intermediates)
        );
        // And the legacy path itself is reproducible byte for byte.
        let a2 = plot(&df, &["v"], &legacy).unwrap();
        assert_eq!(
            crate::json::intermediates_to_json(&a.intermediates),
            crate::json::intermediates_to_json(&a2.intermediates)
        );
    }

    #[test]
    fn cache_spans_sections_of_create_report() {
        // plot() warms per-column intermediates; the full report then
        // reuses them — the cross-call sharing the cache exists for.
        let df = frame();
        let cfg = Config::default();
        plot(&df, &["price"], &cfg).unwrap();
        let report = crate::report::Report::create(&df, &cfg).unwrap();
        assert!(
            report.stats.cache_hits > 0,
            "report must reuse intermediates computed by the earlier plot call"
        );
    }
}
