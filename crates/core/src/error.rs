//! Error type for EDA computations.

use std::fmt;

/// Convenience alias.
pub type EdaResult<T> = std::result::Result<T, EdaError>;

/// Errors surfaced by the EDA API.
#[derive(Debug, Clone, PartialEq)]
pub enum EdaError {
    /// Underlying dataframe failure (missing column, type error, ...).
    Frame(eda_dataframe::Error),
    /// Too many columns were passed to a plot function.
    TooManyColumns {
        /// The function that was called.
        function: &'static str,
        /// How many columns it accepts at most.
        max: usize,
        /// How many were passed.
        got: usize,
    },
    /// An operation required a numeric column.
    NotNumeric(String),
    /// A configuration string could not be parsed.
    Config {
        /// The config key.
        key: String,
        /// The problem.
        message: String,
    },
    /// The frame has no columns / rows where some are required.
    EmptyInput(&'static str),
    /// A graph task panicked during execution (the panic was isolated;
    /// this error carries its message).
    TaskFailed {
        /// Name of the failing task (e.g. `"moments:price"`).
        task: String,
        /// The captured panic message.
        message: String,
    },
    /// A graph task exceeded its per-task wall-clock budget
    /// (`engine.task_deadline_ms`).
    Timeout {
        /// Name of the over-budget task.
        task: String,
        /// The configured budget.
        budget: std::time::Duration,
    },
    /// The run was cancelled — by `AnalysisHandle::cancel()` or because
    /// the whole-run deadline (`engine.run_deadline_ms`) fired.
    Cancelled {
        /// The task whose cancellation was observed first.
        task: String,
        /// Why the run stopped ("cancellation requested" /
        /// "run deadline exceeded").
        reason: String,
    },
    /// A task's result did not fit the run memory budget
    /// (`engine.memory_budget_bytes`). The public API reacts by
    /// re-running the affected analysis over a sampled frame.
    BudgetExceeded {
        /// The task whose result charge was refused.
        task: String,
        /// Bytes the refused charge requested.
        requested: usize,
        /// Bytes already charged when the refusal happened.
        used: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The process is at `engine.max_concurrent_runs` and the admission
    /// queue is full; the call was shed without running.
    Overloaded {
        /// Analyses running when the call was shed.
        running: usize,
        /// Callers already queued when the call was shed.
        queued: usize,
    },
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::Frame(e) => write!(f, "dataframe error: {e}"),
            EdaError::TooManyColumns { function, max, got } => {
                write!(f, "{function} accepts at most {max} columns, got {got}")
            }
            EdaError::NotNumeric(col) => {
                write!(f, "column {col:?} is not numeric, but the task requires it")
            }
            EdaError::Config { key, message } => write!(f, "config {key:?}: {message}"),
            EdaError::EmptyInput(what) => write!(f, "empty input: {what}"),
            EdaError::TaskFailed { task, message } => {
                write!(f, "task {task:?} failed: {message}")
            }
            EdaError::Timeout { task, budget } => {
                write!(f, "task {task:?} exceeded its {budget:?} deadline")
            }
            EdaError::Cancelled { task, reason } => {
                write!(f, "analysis cancelled at task {task:?}: {reason}")
            }
            EdaError::BudgetExceeded { task, requested, used, budget } => write!(
                f,
                "task {task:?} exceeded the run memory budget: \
                 {requested} bytes requested, {used} of {budget} bytes used"
            ),
            EdaError::Overloaded { running, queued } => write!(
                f,
                "analysis shed: {running} runs active and {queued} queued \
                 (engine.max_concurrent_runs)"
            ),
        }
    }
}

impl std::error::Error for EdaError {}

impl From<eda_dataframe::Error> for EdaError {
    fn from(e: eda_dataframe::Error) -> Self {
        EdaError::Frame(e)
    }
}

impl From<&eda_taskgraph::TaskError> for EdaError {
    /// Convert a scheduler-level failure, attributing skipped tasks to
    /// their transitive root cause (callers care about the kernel that
    /// broke, not the node that inherited the breakage).
    fn from(e: &eda_taskgraph::TaskError) -> Self {
        use eda_taskgraph::TaskFailure;
        match &e.failure {
            TaskFailure::Panicked(message) => {
                EdaError::TaskFailed { task: e.name.clone(), message: message.clone() }
            }
            TaskFailure::TimedOut { budget, .. } => {
                EdaError::Timeout { task: e.name.clone(), budget: *budget }
            }
            TaskFailure::Skipped { root_name, root_failure, .. } => EdaError::TaskFailed {
                task: root_name.clone(),
                message: format!(
                    "{root_failure} (dependent task {:?} was skipped)",
                    e.name
                ),
            },
            TaskFailure::Cancelled(reason) => {
                EdaError::Cancelled { task: e.name.clone(), reason: reason.to_string() }
            }
            TaskFailure::BudgetExceeded { budget, used, requested } => EdaError::BudgetExceeded {
                task: e.name.clone(),
                requested: *requested,
                used: *used,
                budget: *budget,
            },
            TaskFailure::Internal(message) => EdaError::TaskFailed {
                task: e.name.clone(),
                message: format!("scheduler invariant violated: {message}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EdaError::TooManyColumns { function: "plot", max: 2, got: 3 };
        assert!(e.to_string().contains("at most 2"));
        let e = EdaError::NotNumeric("city".into());
        assert!(e.to_string().contains("city"));
    }

    #[test]
    fn display_task_failed_and_timeout() {
        let e = EdaError::TaskFailed { task: "moments:price".into(), message: "boom".into() };
        let s = e.to_string();
        assert!(s.contains("moments:price") && s.contains("boom"), "{s}");
        let e = EdaError::Timeout {
            task: "hist:price".into(),
            budget: std::time::Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("hist:price") && s.contains("250ms") && s.contains("deadline"), "{s}");
    }

    #[test]
    fn task_error_converts_with_root_cause_attribution() {
        use eda_taskgraph::{TaskError, TaskFailure};
        use std::time::Duration;
        let panicked = TaskError {
            task: 3,
            name: "moments:price".into(),
            failure: TaskFailure::Panicked("bad float".into()),
            elapsed: Duration::ZERO,
        };
        assert_eq!(
            EdaError::from(&panicked),
            EdaError::TaskFailed { task: "moments:price".into(), message: "bad float".into() }
        );
        let timed_out = TaskError {
            task: 4,
            name: "hist:price".into(),
            failure: TaskFailure::TimedOut {
                budget: Duration::from_millis(5),
                elapsed: Duration::from_millis(9),
            },
            elapsed: Duration::from_millis(9),
        };
        assert_eq!(
            EdaError::from(&timed_out),
            EdaError::Timeout { task: "hist:price".into(), budget: Duration::from_millis(5) }
        );
        let skipped = TaskError {
            task: 5,
            name: "kde:price".into(),
            failure: TaskFailure::Skipped {
                root_cause: 3,
                root_name: "moments:price".into(),
                root_failure: "panicked: boom".into(),
            },
            elapsed: Duration::ZERO,
        };
        // Attribution lands on the root cause, not the skipped node.
        match EdaError::from(&skipped) {
            EdaError::TaskFailed { task, message } => {
                assert_eq!(task, "moments:price");
                assert!(message.contains("panicked: boom"), "{message}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn governance_failures_convert_and_display() {
        use eda_taskgraph::{CancelReason, TaskError, TaskFailure};
        use std::time::Duration;
        let cancelled = TaskError {
            task: 1,
            name: "hist:price".into(),
            failure: TaskFailure::Cancelled(CancelReason::DeadlineExceeded),
            elapsed: Duration::ZERO,
        };
        let e = EdaError::from(&cancelled);
        assert!(matches!(&e, EdaError::Cancelled { task, .. } if task == "hist:price"));
        assert!(e.to_string().contains("run deadline exceeded"), "{e}");

        let over = TaskError {
            task: 2,
            name: "corr:matrix".into(),
            failure: TaskFailure::BudgetExceeded { budget: 100, used: 90, requested: 64 },
            elapsed: Duration::ZERO,
        };
        let e = EdaError::from(&over);
        // The "memory budget" phrase is load-bearing: the degradation
        // ladder in the public API detects budget failures through it.
        assert!(e.to_string().contains("memory budget"), "{e}");

        let shed = EdaError::Overloaded { running: 2, queued: 4 };
        let s = shed.to_string();
        assert!(s.contains("2 runs") && s.contains("4 queued"), "{s}");
    }

    #[test]
    fn frame_error_converts() {
        let fe = eda_dataframe::Error::ColumnNotFound("x".into());
        let e: EdaError = fe.clone().into();
        assert_eq!(e, EdaError::Frame(fe));
    }

    #[test]
    fn malformed_csv_surfaces_as_frame_error() {
        let fe = eda_dataframe::Error::Malformed {
            line: 3,
            offset: Some(8),
            column: Some("price".into()),
            message: "expected 2 fields, found 1".into(),
        };
        let e: EdaError = fe.into();
        let s = e.to_string();
        assert!(s.contains("dataframe error"), "{s}");
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("price"), "{s}");
    }
}
