//! Error type for EDA computations.

use std::fmt;

/// Convenience alias.
pub type EdaResult<T> = std::result::Result<T, EdaError>;

/// Errors surfaced by the EDA API.
#[derive(Debug, Clone, PartialEq)]
pub enum EdaError {
    /// Underlying dataframe failure (missing column, type error, ...).
    Frame(eda_dataframe::Error),
    /// Too many columns were passed to a plot function.
    TooManyColumns {
        /// The function that was called.
        function: &'static str,
        /// How many columns it accepts at most.
        max: usize,
        /// How many were passed.
        got: usize,
    },
    /// An operation required a numeric column.
    NotNumeric(String),
    /// A configuration string could not be parsed.
    Config {
        /// The config key.
        key: String,
        /// The problem.
        message: String,
    },
    /// The frame has no columns / rows where some are required.
    EmptyInput(&'static str),
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::Frame(e) => write!(f, "dataframe error: {e}"),
            EdaError::TooManyColumns { function, max, got } => {
                write!(f, "{function} accepts at most {max} columns, got {got}")
            }
            EdaError::NotNumeric(col) => {
                write!(f, "column {col:?} is not numeric, but the task requires it")
            }
            EdaError::Config { key, message } => write!(f, "config {key:?}: {message}"),
            EdaError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for EdaError {}

impl From<eda_dataframe::Error> for EdaError {
    fn from(e: eda_dataframe::Error) -> Self {
        EdaError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EdaError::TooManyColumns { function: "plot", max: 2, got: 3 };
        assert!(e.to_string().contains("at most 2"));
        let e = EdaError::NotNumeric("city".into());
        assert!(e.to_string().contains("city"));
    }

    #[test]
    fn frame_error_converts() {
        let fe = eda_dataframe::Error::ColumnNotFound("x".into());
        let e: EdaError = fe.clone().into();
        assert_eq!(e, EdaError::Frame(fe));
    }
}
