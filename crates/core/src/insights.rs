//! The auto-insight engine (paper §4.2.2).
//!
//! "A data fact is classified as an insight if its value is above a
//! threshold (each insight has its own, user-definable threshold)." The
//! thresholds live in [`crate::config::InsightConfig`]; this module turns
//! aggregates into [`Insight`] values and tells the stats tables which
//! rows to highlight (the red entries in the paper's Figure 1).

use eda_stats::freq::FreqTable;
use eda_stats::hypothesis::{chi_square_pvalue, chi_square_uniform};
use eda_stats::moments::Moments;
use eda_stats::quantile::BoxPlot;

use crate::compute::kernels::ColMeta;
use crate::config::InsightConfig;

/// The kinds of insights DataPrep.EDA reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsightKind {
    /// Data-quality: column has a notable missing rate.
    Missing,
    /// Data-quality: column contains infinite values.
    Infinite,
    /// Data-quality: column is dominated by zeros.
    Zeros,
    /// Data-quality: column contains negative values.
    Negatives,
    /// Data-quality: column is constant.
    Constant,
    /// Distribution shape: notable skewness.
    Skewed,
    /// Distribution shape: indistinguishable from uniform.
    Uniform,
    /// Distribution shape: outlier-heavy.
    Outliers,
    /// Categorical: distinct count close to the row count.
    HighCardinality,
    /// Two columns are highly correlated.
    HighCorrelation,
    /// Two distributions are similar (missing-impact panel: dropping the
    /// other column's nulls barely changes this distribution).
    SimilarDistribution,
    /// Time series shows a clear upward/downward trend.
    Trend,
    /// Time series is strongly autocorrelated (possible seasonality).
    Autocorrelated,
    /// The analysis was computed on a sample, not the full data
    /// (the §7 sampling extension's user notification).
    Approximated,
}

impl InsightKind {
    /// Stable identifier used in rendered output.
    pub fn name(self) -> &'static str {
        match self {
            InsightKind::Missing => "missing",
            InsightKind::Infinite => "infinite",
            InsightKind::Zeros => "zeros",
            InsightKind::Negatives => "negatives",
            InsightKind::Constant => "constant",
            InsightKind::Skewed => "skewed",
            InsightKind::Uniform => "uniform",
            InsightKind::Outliers => "outliers",
            InsightKind::HighCardinality => "high_cardinality",
            InsightKind::HighCorrelation => "high_correlation",
            InsightKind::SimilarDistribution => "similar_distribution",
            InsightKind::Trend => "trend",
            InsightKind::Autocorrelated => "autocorrelated",
            InsightKind::Approximated => "approximated",
        }
    }
}

/// One detected insight.
#[derive(Debug, Clone, PartialEq)]
pub struct Insight {
    /// What was detected.
    pub kind: InsightKind,
    /// The column(s) involved.
    pub columns: Vec<String>,
    /// The statistic that crossed its threshold.
    pub value: f64,
    /// Human-readable message.
    pub message: String,
}

/// Insights derivable from a column's meta + moments (numeric columns).
pub fn numeric_insights(
    column: &str,
    meta: &ColMeta,
    moments: &Moments,
    box_plot: Option<&BoxPlot>,
    cfg: &InsightConfig,
) -> Vec<Insight> {
    let mut out = Vec::new();
    missing_insight(column, meta, cfg, &mut out);
    let total = moments.count + moments.nans + moments.infinites;
    if total == 0 {
        return out;
    }
    let frac = |n: u64| n as f64 / total as f64;
    if frac(moments.infinites) > cfg.infinite {
        out.push(Insight {
            kind: InsightKind::Infinite,
            columns: vec![column.to_string()],
            value: frac(moments.infinites),
            message: format!(
                "{column} has {} infinite values ({:.1}%)",
                moments.infinites,
                100.0 * frac(moments.infinites)
            ),
        });
    }
    if frac(moments.zeros) > cfg.zeros {
        out.push(Insight {
            kind: InsightKind::Zeros,
            columns: vec![column.to_string()],
            value: frac(moments.zeros),
            message: format!(
                "{column} is {:.1}% zeros",
                100.0 * frac(moments.zeros)
            ),
        });
    }
    if frac(moments.negatives) > cfg.negatives && moments.negatives > 0 {
        out.push(Insight {
            kind: InsightKind::Negatives,
            columns: vec![column.to_string()],
            value: frac(moments.negatives),
            message: format!(
                "{column} has {} negative values",
                moments.negatives
            ),
        });
    }
    if moments.count > 1 && moments.variance() == Some(0.0) {
        out.push(Insight {
            kind: InsightKind::Constant,
            columns: vec![column.to_string()],
            value: 0.0,
            message: format!("{column} is constant"),
        });
    }
    if let Some(skew) = moments.skewness() {
        if skew.abs() > cfg.skew {
            out.push(Insight {
                kind: InsightKind::Skewed,
                columns: vec![column.to_string()],
                value: skew,
                message: format!("{column} is skewed (γ₁ = {skew:.2})"),
            });
        }
    }
    if let Some(bp) = box_plot {
        if bp.n > 0 {
            let frac = bp.n_outliers as f64 / bp.n as f64;
            if frac > cfg.outlier {
                out.push(Insight {
                    kind: InsightKind::Outliers,
                    columns: vec![column.to_string()],
                    value: frac,
                    message: format!(
                        "{column} has {} outliers ({:.1}%)",
                        bp.n_outliers,
                        100.0 * frac
                    ),
                });
            }
        }
    }
    out
}

/// Insights derivable from a categorical column's frequency table.
pub fn categorical_insights(
    column: &str,
    meta: &ColMeta,
    freq: &FreqTable,
    cfg: &InsightConfig,
) -> Vec<Insight> {
    let mut out = Vec::new();
    missing_insight(column, meta, cfg, &mut out);
    let total = freq.total();
    if total == 0 {
        return out;
    }
    let distinct_frac = freq.distinct() as f64 / total as f64;
    if distinct_frac > cfg.high_cardinality && freq.distinct() > 1 {
        out.push(Insight {
            kind: InsightKind::HighCardinality,
            columns: vec![column.to_string()],
            value: distinct_frac,
            message: format!(
                "{column} has a high cardinality: {} distinct values",
                freq.distinct()
            ),
        });
    }
    if freq.distinct() == 1 {
        out.push(Insight {
            kind: InsightKind::Constant,
            columns: vec![column.to_string()],
            value: 0.0,
            message: format!("{column} is constant"),
        });
    }
    // Uniformity via chi-square over the observed category counts.
    let counts: Vec<u64> = freq.sorted().iter().map(|(_, c)| *c).collect();
    if let Some((stat, df)) = chi_square_uniform(&counts) {
        let p = chi_square_pvalue(stat, df);
        if p > cfg.uniform_p {
            out.push(Insight {
                kind: InsightKind::Uniform,
                columns: vec![column.to_string()],
                value: p,
                message: format!("{column} is uniformly distributed (χ² p = {p:.3})"),
            });
        }
    }
    out
}

/// The shared missing-rate check.
fn missing_insight(column: &str, meta: &ColMeta, cfg: &InsightConfig, out: &mut Vec<Insight>) {
    if meta.len == 0 {
        return;
    }
    let rate = meta.nulls as f64 / meta.len as f64;
    if rate > cfg.missing {
        out.push(Insight {
            kind: InsightKind::Missing,
            columns: vec![column.to_string()],
            value: rate,
            message: format!(
                "{column} has {} ({:.1}%) missing values",
                meta.nulls,
                100.0 * rate
            ),
        });
    }
}

/// Correlation insight over a coefficient.
pub fn correlation_insight(
    a: &str,
    b: &str,
    method: &str,
    r: f64,
    cfg: &InsightConfig,
) -> Option<Insight> {
    (r.abs() >= cfg.correlation).then(|| Insight {
        kind: InsightKind::HighCorrelation,
        columns: vec![a.to_string(), b.to_string()],
        value: r,
        message: format!("{a} and {b} are highly correlated ({method} r = {r:.2})"),
    })
}

/// Trend insight from a normalized slope (value change over the full
/// time range divided by the value's standard deviation).
pub fn trend_insight(column: &str, normalized_slope: f64, cfg: &InsightConfig) -> Option<Insight> {
    (normalized_slope.abs() >= cfg.trend).then(|| Insight {
        kind: InsightKind::Trend,
        columns: vec![column.to_string()],
        value: normalized_slope,
        message: format!(
            "{column} shows a {} trend ({:+.2} σ over the range)",
            if normalized_slope > 0.0 { "rising" } else { "falling" },
            normalized_slope
        ),
    })
}

/// Autocorrelation insight from the strongest lag.
pub fn autocorr_insight(
    column: &str,
    lag: usize,
    r: f64,
    cfg: &InsightConfig,
) -> Option<Insight> {
    (r.abs() >= cfg.autocorr).then(|| Insight {
        kind: InsightKind::Autocorrelated,
        columns: vec![column.to_string()],
        value: r,
        message: format!("{column} is autocorrelated at lag {lag} (r = {r:.2})"),
    })
}

/// The sampling notification the paper's §7 calls for.
pub fn approximated_insight(sampled_rows: usize, total_rows: usize) -> Insight {
    Insight {
        kind: InsightKind::Approximated,
        columns: Vec::new(),
        value: sampled_rows as f64 / total_rows.max(1) as f64,
        message: format!(
            "computed on a systematic sample of {sampled_rows} of {total_rows} rows; statistics are approximate"
        ),
    }
}

/// Distribution-similarity insight from a KS distance (missing impact).
pub fn similarity_insight(column: &str, ks: f64, cfg: &InsightConfig) -> Option<Insight> {
    (ks <= cfg.similarity_ks).then(|| Insight {
        kind: InsightKind::SimilarDistribution,
        columns: vec![column.to_string()],
        value: ks,
        message: format!(
            "dropping the missing rows barely changes {column} (KS = {ks:.3})"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn cfg() -> InsightConfig {
        Config::default().insight
    }

    #[test]
    fn missing_flagged_above_threshold() {
        let meta = ColMeta { len: 100, nulls: 20 };
        let m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let ins = numeric_insights("x", &meta, &m, None, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Missing));
        let fine = ColMeta { len: 100, nulls: 1 };
        let ins = numeric_insights("x", &fine, &m, None, &cfg());
        assert!(!ins.iter().any(|i| i.kind == InsightKind::Missing));
    }

    #[test]
    fn skew_and_constant() {
        let meta = ColMeta { len: 5, nulls: 0 };
        let skewed = Moments::from_slice(&[1.0, 1.0, 1.0, 2.0, 50.0]);
        let ins = numeric_insights("x", &meta, &skewed, None, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Skewed));

        let constant = Moments::from_slice(&[3.0; 5]);
        let ins = numeric_insights("x", &meta, &constant, None, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Constant));
    }

    #[test]
    fn infinite_and_zeros() {
        let meta = ColMeta { len: 4, nulls: 0 };
        let m = Moments::from_slice(&[0.0, 0.0, 0.0, f64::INFINITY]);
        let ins = numeric_insights("x", &meta, &m, None, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Infinite));
        assert!(ins.iter().any(|i| i.kind == InsightKind::Zeros));
    }

    #[test]
    fn outlier_insight_uses_boxplot() {
        let meta = ColMeta { len: 12, nulls: 0 };
        let mut vals = vec![0.0; 100];
        vals.extend([1000.0; 10]);
        let bp = BoxPlot::from_values(&vals, 10).unwrap();
        let m = Moments::from_slice(&vals);
        let ins = numeric_insights("x", &meta, &m, Some(&bp), &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Outliers));
    }

    #[test]
    fn high_cardinality_and_uniform() {
        let meta = ColMeta { len: 10, nulls: 0 };
        // 10 distinct values over 10 rows → high cardinality; also uniform.
        let mut f = FreqTable::new();
        for i in 0..10 {
            f.push_owned(Some(format!("v{i}")));
        }
        let ins = categorical_insights("c", &meta, &f, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::HighCardinality));
    }

    #[test]
    fn uniform_detected_for_balanced_counts() {
        let meta = ColMeta { len: 400, nulls: 0 };
        let mut f = FreqTable::new();
        for i in 0..400 {
            f.push(Some(["a", "b", "c", "d"][i % 4]));
        }
        let ins = categorical_insights("c", &meta, &f, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Uniform));
    }

    #[test]
    fn constant_categorical() {
        let meta = ColMeta { len: 5, nulls: 0 };
        let f = FreqTable::from_iter(vec![Some("x"); 5]);
        let ins = categorical_insights("c", &meta, &f, &cfg());
        assert!(ins.iter().any(|i| i.kind == InsightKind::Constant));
    }

    #[test]
    fn correlation_and_similarity_helpers() {
        assert!(correlation_insight("a", "b", "Pearson", 0.95, &cfg()).is_some());
        assert!(correlation_insight("a", "b", "Pearson", 0.5, &cfg()).is_none());
        assert!(similarity_insight("y", 0.01, &cfg()).is_some());
        assert!(similarity_insight("y", 0.5, &cfg()).is_none());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(InsightKind::Missing.name(), "missing");
        assert_eq!(InsightKind::HighCorrelation.name(), "high_correlation");
    }
}
