//! JSON export of intermediates.
//!
//! Paper §4.2: separating Compute from Render means "the intermediate
//! computations can be exposed to the user. This allows the user to
//! create the visualizations with her desired plotting library." This
//! module is that export path: every intermediate serializes to plain
//! JSON that any plotting stack (d3, Vega, matplotlib, gnuplot) can
//! consume. Hand-rolled emitter — no serialization dependencies.

use std::fmt::Write as _;

use crate::api::Analysis;
use crate::insights::Insight;
use crate::intermediate::{Inter, Intermediates};

/// A minimal JSON writer (namespace for the emit helpers).
pub struct JsonWriter;

impl JsonWriter {
    /// Escape and quote a string.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Render a float (JSON has no NaN/Infinity: they become null).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    fn opt_number(v: Option<f64>) -> String {
        v.map_or("null".to_string(), Self::number)
    }

    fn array<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
        let parts: Vec<String> = items.iter().map(f).collect();
        format!("[{}]", parts.join(","))
    }

    fn object(fields: &[(&str, String)]) -> String {
        let parts: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", Self::string(k)))
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Serialize one intermediate.
pub fn inter_to_json(inter: &Inter) -> String {
    use JsonWriter as W;
    let typed = |kind: &str, fields: Vec<(&str, String)>| {
        let mut all = vec![("type", W::string(kind))];
        all.extend(fields);
        W::object(&all)
    };
    match inter {
        Inter::StatsTable(rows) => typed(
            "stats_table",
            vec![(
                "rows",
                W::array(rows, |r| {
                    W::object(&[
                        ("label", W::string(&r.label)),
                        ("value", W::string(&r.value)),
                        ("highlight", r.highlight.to_string()),
                    ])
                }),
            )],
        ),
        Inter::Histogram { edges, counts } => typed(
            "histogram",
            vec![
                ("edges", W::array(edges, |v| W::number(*v))),
                ("counts", W::array(counts, u64::to_string)),
            ],
        ),
        Inter::Bar { categories, counts, other, total_distinct } => typed(
            "bar",
            vec![
                ("categories", W::array(categories, |c| W::string(c))),
                ("counts", W::array(counts, u64::to_string)),
                ("other", other.to_string()),
                ("total_distinct", total_distinct.to_string()),
            ],
        ),
        Inter::Pie { categories, fractions } => typed(
            "pie",
            vec![
                ("categories", W::array(categories, |c| W::string(c))),
                ("fractions", W::array(fractions, |v| W::number(*v))),
            ],
        ),
        Inter::Kde { xs, ys } | Inter::Line { xs, ys } => typed(
            if matches!(inter, Inter::Kde { .. }) { "kde" } else { "line" },
            vec![
                ("xs", W::array(xs, |v| W::number(*v))),
                ("ys", W::array(ys, |v| W::number(*v))),
            ],
        ),
        Inter::QQ(points) => typed(
            "qq",
            vec![(
                "points",
                W::array(points, |(a, b)| format!("[{},{}]", W::number(*a), W::number(*b))),
            )],
        ),
        Inter::Boxes(boxes) => typed(
            "boxes",
            vec![(
                "boxes",
                W::array(boxes, |(label, b)| {
                    W::object(&[
                        ("label", W::string(label)),
                        ("q1", W::number(b.q1)),
                        ("median", W::number(b.median)),
                        ("q3", W::number(b.q3)),
                        ("whisker_low", W::number(b.whisker_low)),
                        ("whisker_high", W::number(b.whisker_high)),
                        ("outliers", W::array(&b.outliers, |v| W::number(*v))),
                        ("n_outliers", b.n_outliers.to_string()),
                        ("n", b.n.to_string()),
                    ])
                }),
            )],
        ),
        Inter::Scatter { points, sampled } => typed(
            "scatter",
            vec![
                (
                    "points",
                    W::array(points, |(a, b)| {
                        format!("[{},{}]", W::number(*a), W::number(*b))
                    }),
                ),
                ("sampled", sampled.to_string()),
            ],
        ),
        Inter::RegressionScatter { points, slope, intercept, r2 } => typed(
            "regression_scatter",
            vec![
                (
                    "points",
                    W::array(points, |(a, b)| {
                        format!("[{},{}]", W::number(*a), W::number(*b))
                    }),
                ),
                ("slope", W::number(*slope)),
                ("intercept", W::number(*intercept)),
                ("r2", W::number(*r2)),
            ],
        ),
        Inter::Hexbin { centers, counts, radius } => typed(
            "hexbin",
            vec![
                (
                    "centers",
                    W::array(centers, |(a, b)| {
                        format!("[{},{}]", W::number(*a), W::number(*b))
                    }),
                ),
                ("counts", W::array(counts, u64::to_string)),
                ("radius", W::number(*radius)),
            ],
        ),
        Inter::Heatmap { xlabels, ylabels, values } => typed(
            "heatmap",
            vec![
                ("xlabels", W::array(xlabels, |c| W::string(c))),
                ("ylabels", W::array(ylabels, |c| W::string(c))),
                (
                    "values",
                    W::array(values, |row| W::array(row, u64::to_string)),
                ),
            ],
        ),
        Inter::GroupedBars { xlabels, series, stacked } => typed(
            "grouped_bars",
            vec![
                ("xlabels", W::array(xlabels, |c| W::string(c))),
                (
                    "series",
                    W::array(series, |(name, counts)| {
                        W::object(&[
                            ("name", W::string(name)),
                            ("counts", W::array(counts, u64::to_string)),
                        ])
                    }),
                ),
                ("stacked", stacked.to_string()),
            ],
        ),
        Inter::MultiLine { xs, series } => typed(
            "multi_line",
            vec![
                ("xs", W::array(xs, |v| W::number(*v))),
                (
                    "series",
                    W::array(series, |(name, counts)| {
                        W::object(&[
                            ("name", W::string(name)),
                            ("counts", W::array(counts, u64::to_string)),
                        ])
                    }),
                ),
            ],
        ),
        Inter::Correlation(m) => typed(
            "correlation_matrix",
            vec![
                ("method", W::string(m.method.name())),
                ("labels", W::array(&m.labels, |c| W::string(c))),
                ("cells", W::array(&m.cells, |c| W::opt_number(*c))),
            ],
        ),
        Inter::CorrVectors(vectors) => typed(
            "correlation_vectors",
            vec![(
                "methods",
                W::array(vectors, |(method, entries)| {
                    W::object(&[
                        ("method", W::string(method)),
                        (
                            "entries",
                            W::array(entries, |(name, r)| {
                                W::object(&[
                                    ("column", W::string(name)),
                                    ("r", W::opt_number(*r)),
                                ])
                            }),
                        ),
                    ])
                }),
            )],
        ),
        Inter::MissingBars(bars) => typed(
            "missing_bars",
            vec![(
                "columns",
                W::array(bars, |b| {
                    W::object(&[
                        ("label", W::string(&b.label)),
                        ("nulls", b.nulls.to_string()),
                        ("total", b.total.to_string()),
                    ])
                }),
            )],
        ),
        Inter::Spectrum(s) => typed(
            "missing_spectrum",
            vec![
                ("labels", W::array(&s.labels, |c| W::string(c))),
                (
                    "row_ranges",
                    W::array(&s.row_ranges, |(a, b)| format!("[{a},{b}]")),
                ),
                (
                    "counts",
                    W::array(&s.counts, |row| W::array(row, usize::to_string)),
                ),
            ],
        ),
        Inter::NullityCorr { labels, cells } => typed(
            "nullity_correlation",
            vec![
                ("labels", W::array(labels, |c| W::string(c))),
                (
                    "cells",
                    W::array(cells, |row| W::array(row, |c| W::opt_number(*c))),
                ),
            ],
        ),
        Inter::Dendrogram { labels, merges } => typed(
            "dendrogram",
            vec![
                ("labels", W::array(labels, |c| W::string(c))),
                (
                    "merges",
                    W::array(merges, |m| {
                        W::object(&[
                            ("left", m.left.to_string()),
                            ("right", m.right.to_string()),
                            ("distance", W::number(m.distance)),
                            ("size", m.size.to_string()),
                        ])
                    }),
                ),
            ],
        ),
        Inter::Violin { ys, densities } => typed(
            "violin",
            vec![
                ("ys", W::array(ys, |v| W::number(*v))),
                ("densities", W::array(densities, |v| W::number(*v))),
            ],
        ),
        Inter::WordFreq { words, total, distinct } => typed(
            "word_freq",
            vec![
                (
                    "words",
                    W::array(words, |(w, c)| {
                        format!("[{},{c}]", W::string(w))
                    }),
                ),
                ("total", total.to_string()),
                ("distinct", distinct.to_string()),
            ],
        ),
        Inter::CompareHistogram { edges, before, after } => typed(
            "compare_histogram",
            vec![
                ("edges", W::array(edges, |v| W::number(*v))),
                ("before", W::array(before, u64::to_string)),
                ("after", W::array(after, u64::to_string)),
            ],
        ),
        Inter::CompareBars { categories, before, after } => typed(
            "compare_bars",
            vec![
                ("categories", W::array(categories, |c| W::string(c))),
                ("before", W::array(before, u64::to_string)),
                ("after", W::array(after, u64::to_string)),
            ],
        ),
    }
}

/// Serialize a full set of intermediates as `{"name": {...}, ...}` pairs
/// (an array of `[name, value]` to keep repeated names).
pub fn intermediates_to_json(ims: &Intermediates) -> String {
    let entries: Vec<String> = ims
        .iter()
        .map(|(name, inter)| format!("[{},{}]", JsonWriter::string(name), inter_to_json(inter)))
        .collect();
    format!("[{}]", entries.join(","))
}

/// Serialize insights.
pub fn insights_to_json(insights: &[Insight]) -> String {
    JsonWriter::array(insights, |i| {
        JsonWriter::object(&[
            ("kind", JsonWriter::string(i.kind.name())),
            (
                "columns",
                JsonWriter::array(&i.columns, |c| JsonWriter::string(c)),
            ),
            ("value", JsonWriter::number(i.value)),
            ("message", JsonWriter::string(&i.message)),
        ])
    })
}

impl Analysis {
    /// Export this analysis — task, intermediates, insights — as JSON, so
    /// the data can feed any external plotting library (paper §4.2).
    pub fn to_json(&self) -> String {
        JsonWriter::object(&[
            ("task", JsonWriter::string(&format!("{:?}", self.task))),
            ("charts", intermediates_to_json(&self.intermediates)),
            ("insights", insights_to_json(&self.insights)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intermediate::StatRow;

    #[test]
    fn string_escaping() {
        assert_eq!(JsonWriter::string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(JsonWriter::string("\u{1}"), r#""\u0001""#);
    }

    #[test]
    fn numbers_and_non_finite() {
        assert_eq!(JsonWriter::number(1.5), "1.5");
        assert_eq!(JsonWriter::number(f64::NAN), "null");
        assert_eq!(JsonWriter::number(f64::INFINITY), "null");
    }

    #[test]
    fn histogram_roundtrippable_shape() {
        let j = inter_to_json(&Inter::Histogram {
            edges: vec![0.0, 1.0, 2.0],
            counts: vec![3, 4],
        });
        assert_eq!(
            j,
            r#"{"type":"histogram","edges":[0,1,2],"counts":[3,4]}"#
        );
    }

    #[test]
    fn stats_table_json() {
        let j = inter_to_json(&Inter::StatsTable(vec![StatRow {
            label: "missing".into(),
            value: "20%".into(),
            highlight: true,
        }]));
        assert!(j.contains(r#""highlight":true"#));
        assert!(j.contains(r#""type":"stats_table""#));
    }

    #[test]
    fn every_variant_serializes_to_balanced_json() {
        // Reuse the renderer test corpus shape: a few representative
        // variants with tricky content.
        let inters = vec![
            Inter::Bar {
                categories: vec!["a\"b".into()],
                counts: vec![1],
                other: 0,
                total_distinct: 1,
            },
            Inter::QQ(vec![(f64::NAN, 1.0)]),
            Inter::Scatter { points: vec![(1.0, 2.0)], sampled: true },
            Inter::Correlation(eda_stats::corr::CorrMatrix::compute(
                &[("x".into(), vec![1.0, 2.0]), ("y".into(), vec![2.0, 1.0])],
                eda_stats::corr::CorrMethod::Pearson,
            )),
        ];
        for inter in &inters {
            let j = inter_to_json(inter);
            assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
            assert_eq!(j.matches('[').count(), j.matches(']').count(), "{j}");
            assert!(!j.contains("NaN"));
        }
    }

    #[test]
    fn analysis_to_json_end_to_end() {
        use eda_dataframe::{Column, DataFrame};
        let df = DataFrame::new(vec![(
            "x".into(),
            Column::from_f64((0..50).map(|i| i as f64).collect()),
        )])
        .unwrap();
        let a = crate::plot(&df, &["x"], &crate::Config::default()).unwrap();
        let j = a.to_json();
        assert!(j.contains("\"charts\""));
        assert!(j.contains("histogram"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
