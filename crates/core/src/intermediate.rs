//! Intermediates: the Compute → Render contract (paper §4.2.2).
//!
//! The Compute module never builds plot objects — it emits plain data
//! ("the results of all the computations on the data that are required to
//! generate the visualizations"), keyed by chart name. Separating the two
//! lets shared statistics feed several charts and lets users take the
//! intermediates into their own plotting stack.

use eda_stats::corr::CorrMatrix;
use eda_stats::missing::{DendrogramMerge, MissingSpectrum, MissingSummary};
use eda_stats::quantile::BoxPlot;

/// Correlation vectors grouped by method:
/// `(method name, [(column, coefficient)])`.
pub type CorrVectorsByMethod = Vec<(String, Vec<(String, Option<f64>)>)>;

/// One computed intermediate, ready to be rendered.
#[derive(Debug, Clone, PartialEq)]
pub enum Inter {
    /// A table of `(label, formatted value, highlight)` rows. `highlight`
    /// marks rows the insight engine flagged (the red entries of Figure 1).
    StatsTable(Vec<StatRow>),
    /// Histogram data: `edges.len() == counts.len() + 1`.
    Histogram {
        /// Bin boundaries.
        edges: Vec<f64>,
        /// Bin counts.
        counts: Vec<u64>,
    },
    /// Bar chart over top categories.
    Bar {
        /// Category labels, descending count.
        categories: Vec<String>,
        /// Counts per category.
        counts: Vec<u64>,
        /// Count aggregated into "Other" (categories beyond the top-k).
        other: u64,
        /// Total distinct categories in the column.
        total_distinct: usize,
    },
    /// Pie chart over top categories (fractions of the non-null total).
    Pie {
        /// Slice labels.
        categories: Vec<String>,
        /// Slice fractions (sum ≤ 1; remainder is "Other").
        fractions: Vec<f64>,
    },
    /// KDE curve.
    Kde {
        /// Evaluation grid.
        xs: Vec<f64>,
        /// Densities.
        ys: Vec<f64>,
    },
    /// Normal Q-Q points `(theoretical, sample)`.
    QQ(Vec<(f64, f64)>),
    /// One or more box plots, each labelled (a single box for univariate,
    /// one per category/bin for the grouped variants).
    Boxes(Vec<(String, BoxPlot)>),
    /// Scatter points (possibly thinned).
    Scatter {
        /// The points.
        points: Vec<(f64, f64)>,
        /// Whether thinning dropped points.
        sampled: bool,
    },
    /// Scatter with a fitted regression line.
    RegressionScatter {
        /// The (possibly thinned) points.
        points: Vec<(f64, f64)>,
        /// Line slope.
        slope: f64,
        /// Line intercept.
        intercept: f64,
        /// Coefficient of determination.
        r2: f64,
    },
    /// Hexagonal binning (pointy-top axial grid).
    Hexbin {
        /// Hexagon centers in data coordinates.
        centers: Vec<(f64, f64)>,
        /// Point count per hexagon.
        counts: Vec<u64>,
        /// Hexagon circumradius in x-data units.
        radius: f64,
    },
    /// Heat map over two categorical axes.
    Heatmap {
        /// X-axis labels.
        xlabels: Vec<String>,
        /// Y-axis labels.
        ylabels: Vec<String>,
        /// `ylabels.len()` rows × `xlabels.len()` columns of counts.
        values: Vec<Vec<u64>>,
    },
    /// Grouped/nested or stacked bars over two categorical axes: for each
    /// x-category, one count per y-category.
    GroupedBars {
        /// X-axis labels.
        xlabels: Vec<String>,
        /// Series: `(y label, counts aligned with xlabels)`.
        series: Vec<(String, Vec<u64>)>,
        /// Whether the renderer should stack (true) or nest (false).
        stacked: bool,
    },
    /// Multi-line chart: per-category histograms over shared bins.
    MultiLine {
        /// Bin centers along the numeric axis.
        xs: Vec<f64>,
        /// Series: `(category, counts aligned with xs)`.
        series: Vec<(String, Vec<u64>)>,
    },
    /// A generic line (PDF/CDF curves of the missing-impact panel).
    Line {
        /// X values.
        xs: Vec<f64>,
        /// Y values.
        ys: Vec<f64>,
    },
    /// Correlation matrix.
    Correlation(CorrMatrix),
    /// One-vs-rest correlation vectors: `(method, [(column, r)])`.
    CorrVectors(CorrVectorsByMethod),
    /// Per-column missing summaries (bar chart of plot_missing(df)).
    MissingBars(Vec<MissingSummary>),
    /// The missing spectrum.
    Spectrum(MissingSpectrum),
    /// Nullity correlation heatmap: labels plus a full matrix.
    NullityCorr {
        /// Column labels.
        labels: Vec<String>,
        /// Symmetric matrix; `None` where undefined.
        cells: Vec<Vec<Option<f64>>>,
    },
    /// Nullity dendrogram.
    Dendrogram {
        /// Leaf labels (column names).
        labels: Vec<String>,
        /// Merge steps (SciPy linkage convention).
        merges: Vec<DendrogramMerge>,
    },
    /// Violin plot: a KDE profile along the value axis, mirrored by the
    /// renderer (the community-requested extension the paper's §3.2
    /// mentions for `plot(df, x)`).
    Violin {
        /// Value-axis grid.
        ys: Vec<f64>,
        /// Density at each grid point.
        densities: Vec<f64>,
    },
    /// Word frequencies (backs both the word cloud and the table).
    WordFreq {
        /// `(word, count)` descending.
        words: Vec<(String, u64)>,
        /// Total words.
        total: u64,
        /// Distinct words.
        distinct: usize,
    },
    /// Before/after comparison of a numeric distribution (missing impact):
    /// shared bin edges, counts with all rows vs. rows surviving the drop.
    CompareHistogram {
        /// Shared bin edges.
        edges: Vec<f64>,
        /// Counts over all rows.
        before: Vec<u64>,
        /// Counts after dropping the other column's missing rows.
        after: Vec<u64>,
    },
    /// Before/after comparison of categorical counts (missing impact).
    CompareBars {
        /// Category labels.
        categories: Vec<String>,
        /// Counts over all rows.
        before: Vec<u64>,
        /// Counts after dropping the other column's missing rows.
        after: Vec<u64>,
    },
}

/// One row of a stats table.
#[derive(Debug, Clone, PartialEq)]
pub struct StatRow {
    /// Statistic name.
    pub label: String,
    /// Formatted value.
    pub value: String,
    /// Whether the insight engine flagged this row.
    pub highlight: bool,
}

impl StatRow {
    /// An unhighlighted row.
    pub fn new(label: impl Into<String>, value: impl Into<String>) -> StatRow {
        StatRow { label: label.into(), value: value.into(), highlight: false }
    }
}

/// Ordered, named intermediates of one EDA call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Intermediates {
    items: Vec<(String, Inter)>,
}

impl Intermediates {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named intermediate (names may repeat across columns —
    /// lookups return the first match, iteration sees all).
    pub fn push(&mut self, name: impl Into<String>, inter: Inter) {
        self.items.push((name.into(), inter));
    }

    /// First intermediate with this name.
    pub fn get(&self, name: &str) -> Option<&Inter> {
        self.items
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| i)
    }

    /// All intermediates with this name prefix (e.g. every per-column
    /// histogram of an overview).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a Inter)> {
        self.items
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, i)| (n.as_str(), i))
    }

    /// Iterate all `(name, intermediate)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Inter)> {
        self.items.iter().map(|(n, i)| (n.as_str(), i))
    }

    /// Number of intermediates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no intermediates.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.items.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut ims = Intermediates::new();
        ims.push("histogram", Inter::Histogram { edges: vec![0.0, 1.0], counts: vec![3] });
        ims.push("kde_plot", Inter::Kde { xs: vec![], ys: vec![] });
        assert_eq!(ims.len(), 2);
        assert!(matches!(ims.get("histogram"), Some(Inter::Histogram { .. })));
        assert!(ims.get("nope").is_none());
        assert_eq!(ims.names(), vec!["histogram", "kde_plot"]);
    }

    #[test]
    fn prefix_lookup() {
        let mut ims = Intermediates::new();
        ims.push("histogram:a", Inter::Kde { xs: vec![], ys: vec![] });
        ims.push("histogram:b", Inter::Kde { xs: vec![], ys: vec![] });
        ims.push("bar:a", Inter::Kde { xs: vec![], ys: vec![] });
        assert_eq!(ims.with_prefix("histogram:").count(), 2);
    }

    #[test]
    fn stat_row_helper() {
        let r = StatRow::new("mean", "4.5");
        assert!(!r.highlight);
        assert_eq!(r.label, "mean");
    }
}
