//! Cancellable background analyses.
//!
//! [`AnalysisHandle`] runs an EDA call on its own thread with a
//! run-wide [`CancelToken`] armed: [`AnalysisHandle::cancel`] flips the
//! token, the scheduler stops dispatching, in-flight kernels observe the
//! flag at morsel boundaries and bail, and the call returns promptly
//! with cancellation diagnostics (sections that already completed are
//! kept — see [`crate::api::SectionStatus`]).
//!
//! The token travels thread-locally: the spawned thread arms it before
//! entering the API, and `ComputeContext::new` picks it up as the run
//! token. Calls made without a handle are unaffected.

use std::thread::JoinHandle;

use eda_dataframe::DataFrame;
use eda_taskgraph::govern::{self, CancelToken};

use crate::api::Analysis;
use crate::config::Config;
use crate::error::{EdaError, EdaResult};
use crate::report::Report;

/// A running analysis that can be cancelled from another thread.
#[derive(Debug)]
pub struct AnalysisHandle<T> {
    token: CancelToken,
    thread: Option<JoinHandle<EdaResult<T>>>,
}

impl<T: Send + 'static> AnalysisHandle<T> {
    /// Run `work` on a new thread with a fresh cancel token armed.
    fn spawn(work: impl FnOnce() -> EdaResult<T> + Send + 'static) -> AnalysisHandle<T> {
        let token = CancelToken::new();
        let armed = token.clone();
        let thread = std::thread::spawn(move || {
            let _arm = govern::arm_token(armed);
            work()
        });
        AnalysisHandle { token, thread: Some(thread) }
    }
}

impl<T> AnalysisHandle<T> {
    /// Ask the analysis to stop. Cooperative and idempotent: the
    /// scheduler cancels remaining tasks and in-flight kernels bail at
    /// their next morsel boundary, after which [`Self::join`] returns.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether the analysis thread has finished (successfully, degraded,
    /// or after a cancellation).
    pub fn is_finished(&self) -> bool {
        self.thread.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Wait for the analysis and return its result. A panic on the
    /// analysis thread (a bug — kernel panics are isolated per task)
    /// surfaces as [`EdaError::TaskFailed`] rather than propagating.
    pub fn join(mut self) -> EdaResult<T> {
        let thread = self.thread.take().expect("thread present until join");
        thread.join().unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "analysis thread panicked".to_string());
            Err(EdaError::TaskFailed { task: "analysis-thread".into(), message })
        })
    }
}

impl<T> Drop for AnalysisHandle<T> {
    /// Dropping an unjoined handle cancels the run (no orphaned
    /// full-speed computation) and detaches the thread, which winds down
    /// at its next cancellation checkpoint.
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.token.cancel();
        }
    }
}

/// [`crate::api::create_report`] on a background thread, cancellable via
/// the returned handle. The frame clone is cheap (shared column buffers).
pub fn create_report_handle(df: &DataFrame, config: &Config) -> AnalysisHandle<Report> {
    let df = df.clone();
    let config = config.clone();
    AnalysisHandle::spawn(move || crate::api::create_report(&df, &config))
}

/// [`crate::api::plot`] on a background thread, cancellable via the
/// returned handle.
pub fn plot_handle(df: &DataFrame, columns: &[&str], config: &Config) -> AnalysisHandle<Analysis> {
    let df = df.clone();
    let config = config.clone();
    let columns: Vec<String> = columns.iter().map(|c| (*c).to_string()).collect();
    AnalysisHandle::spawn(move || {
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
        crate::api::plot(&df, &cols, &config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_dataframe::Column;

    fn frame(n: usize) -> DataFrame {
        DataFrame::new(vec![
            (
                "a".into(),
                Column::from_f64((0..n).map(|i| (i % 997) as f64).collect()),
            ),
            (
                "b".into(),
                Column::from_f64((0..n).map(|i| ((i * 31) % 1009) as f64).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn uncancelled_handle_completes_normally() {
        let df = frame(2000);
        let handle = plot_handle(&df, &["a"], &Config::default());
        let analysis = handle.join().unwrap();
        assert!(analysis.status.is_ok());
        assert!(analysis.get("histogram").is_some());
    }

    #[test]
    fn cancelled_report_stops_and_reports_cancellation() {
        let df = frame(50_000);
        let handle = create_report_handle(&df, &Config::default());
        handle.cancel();
        let report = handle.join().unwrap();
        // Either the run finished before the cancel landed (tiny frame,
        // fast machine) or some sections report the cancellation.
        for (_, status) in report.failed_sections() {
            if let crate::api::SectionStatus::Failed { error, .. } = status {
                assert!(error.contains("cancel"), "{error}");
            }
        }
    }

    #[test]
    fn dropping_a_handle_cancels_its_token() {
        let df = frame(2000);
        let handle = plot_handle(&df, &["a"], &Config::default());
        let token = handle.token.clone();
        drop(handle);
        assert!(token.is_cancelled());
    }
}
