//! # eda-core
//!
//! The task-centric EDA engine — the primary contribution of *DataPrep.EDA:
//! Task-Centric Exploratory Data Analysis for Statistical Modeling in
//! Python* (SIGMOD 2021), reproduced in Rust.
//!
//! One function call = one EDA task (paper §3.2):
//!
//! | call | task |
//! |------|------|
//! | [`plot`]`(df, &[], cfg)` | dataset overview |
//! | [`plot`]`(df, &["x"], cfg)` | univariate analysis of `x` |
//! | [`plot`]`(df, &["x", "y"], cfg)` | bivariate analysis |
//! | [`plot_correlation`] | correlation overview / vector / pair |
//! | [`plot_missing`] | missing-value overview / impact |
//! | [`create_report`] | the full profile report |
//!
//! Architecture mirrors the paper's Figure 3: the **Config Manager**
//! ([`config::Config`]) resolves user parameters and powers the how-to
//! guides; the **Compute module** ([`compute`]) builds one lazy
//! [`eda_taskgraph::TaskGraph`] per call, shares subcomputations via
//! structural keys, executes it partition-parallel, and emits
//! *intermediates*; the **Render module** lives in the sibling
//! `eda-render` crate and consumes those intermediates. Insights
//! ([`insights`]) are computed from intermediates against configurable
//! thresholds.
//!
//! ```
//! use eda_core::{plot, Config};
//! use eda_dataframe::{Column, DataFrame};
//!
//! let df = DataFrame::new(vec![
//!     ("price".into(), Column::from_f64(vec![310.0, 450.0, 250.0, 380.0, 290.0])),
//! ]).unwrap();
//! let analysis = plot(&df, &["price"], &Config::default()).unwrap();
//! assert!(analysis.get("histogram").is_some());
//! assert!(analysis.get("box_plot").is_some());
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod compute;
pub mod config;
pub mod dtype;
pub mod error;
pub mod handle;
pub mod insights;
pub mod intermediate;
pub mod json;
pub mod load;
pub mod report;

pub use api::{
    create_report, metrics_snapshot, plot, plot_correlation, plot_missing, plot_timeseries,
    Analysis, SectionStatus, TaskKind,
};
pub use eda_taskgraph::MetricsSnapshot;
pub use config::Config;
pub use handle::{create_report_handle, plot_handle, AnalysisHandle};
pub use dtype::SemanticType;
pub use error::{EdaError, EdaResult};
pub use insights::{Insight, InsightKind};
pub use load::{convert_to_edaf, load_csv, load_data};
pub use intermediate::{Inter, Intermediates};
pub use report::{Report, VariableSection};
