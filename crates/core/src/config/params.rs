//! The parameter registry: one descriptor per configurable key.
//!
//! The how-to guide (paper Figure 1, part D) is generated from this table,
//! so documentation can never drift from what [`super::Config::set`]
//! actually accepts.

/// Descriptor of one configuration parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// The `section.key` string accepted by `Config::set`.
    pub key: &'static str,
    /// Default value, formatted.
    pub default: &'static str,
    /// One-line description shown in the how-to guide.
    pub description: &'static str,
}

/// Every configurable parameter.
pub const PARAMS: &[ParamSpec] = &[
    ParamSpec { key: "hist.bins", default: "50", description: "Number of histogram bins" },
    ParamSpec { key: "kde.grid", default: "200", description: "Grid resolution of the KDE curve" },
    ParamSpec { key: "qq.points", default: "100", description: "Maximum points on the normal Q-Q plot" },
    ParamSpec { key: "box.max_outliers", default: "50", description: "Maximum outlier points drawn per box" },
    ParamSpec { key: "box.bins", default: "10", description: "Number of x-bins for the binned box plot" },
    ParamSpec { key: "box.ngroups", default: "10", description: "Maximum category groups in the categorical box plot" },
    ParamSpec { key: "bar.ngroups", default: "10", description: "Number of bars; remaining categories group into 'Other'" },
    ParamSpec { key: "pie.slices", default: "6", description: "Number of pie slices; remaining categories group into 'Other'" },
    ParamSpec { key: "word.top", default: "30", description: "Number of top words in the word cloud / frequency table" },
    ParamSpec { key: "scatter.sample", default: "1000", description: "Maximum points drawn in a scatter plot" },
    ParamSpec { key: "hexbin.gridsize", default: "20", description: "Number of hexagons across the x-range" },
    ParamSpec { key: "crosstab.ngroups_x", default: "10", description: "Category groups on the x side of heat map / nested / stacked bars" },
    ParamSpec { key: "crosstab.ngroups_y", default: "5", description: "Category groups on the y side of heat map / nested / stacked bars" },
    ParamSpec { key: "line.ngroups", default: "5", description: "Number of lines in the multi-line chart" },
    ParamSpec { key: "line.bins", default: "20", description: "Histogram bins along the numeric axis of the multi-line chart" },
    ParamSpec { key: "spectrum.bins", default: "20", description: "Row bins of the missing spectrum" },
    ParamSpec { key: "ts.points", default: "100", description: "Resampled points on the time-series line" },
    ParamSpec { key: "ts.window", default: "7", description: "Rolling-mean window (in resampled points)" },
    ParamSpec { key: "ts.max_lag", default: "24", description: "Maximum autocorrelation lag" },
    ParamSpec { key: "violin.enabled", default: "false", description: "Add a violin plot to the univariate numeric panel" },
    ParamSpec { key: "insight.missing", default: "0.05", description: "Missing-rate fraction that triggers the missing insight" },
    ParamSpec { key: "insight.skew", default: "1.0", description: "|skewness| that triggers the skewed insight" },
    ParamSpec { key: "insight.uniform_p", default: "0.99", description: "Chi-square p-value above which a distribution is flagged uniform" },
    ParamSpec { key: "insight.high_cardinality", default: "0.5", description: "Distinct fraction that triggers the high-cardinality insight" },
    ParamSpec { key: "insight.correlation", default: "0.8", description: "|r| that triggers the highly-correlated insight" },
    ParamSpec { key: "insight.outlier", default: "0.05", description: "Outlier fraction that triggers the outlier insight" },
    ParamSpec { key: "insight.similarity_ks", default: "0.05", description: "KS distance below which two distributions count as similar" },
    ParamSpec { key: "insight.infinite", default: "0.0", description: "Infinite-value fraction that triggers the infinite insight" },
    ParamSpec { key: "insight.zeros", default: "0.5", description: "Zero fraction that triggers the zeros insight" },
    ParamSpec { key: "insight.negatives", default: "0.0", description: "Negative fraction that triggers the negatives insight" },
    ParamSpec { key: "insight.trend", default: "0.3", description: "Normalized |trend slope| that triggers the trend insight" },
    ParamSpec { key: "insight.autocorr", default: "0.5", description: "|autocorrelation| that triggers the autocorrelated insight" },
    ParamSpec { key: "types.low_cardinality", default: "10", description: "Max distinct values for an integer column to be categorical" },
    ParamSpec { key: "engine.npartitions", default: "2*cores", description: "Data partitions for the parallel phase" },
    ParamSpec { key: "engine.workers", default: "cores", description: "Worker threads" },
    ParamSpec { key: "engine.share_computations", default: "true", description: "Deduplicate shared computations across visualizations" },
    ParamSpec { key: "engine.eager_finish", default: "true", description: "Run small-data finishing steps eagerly (two-phase pipeline)" },
    ParamSpec { key: "engine.sample_rows", default: "0", description: "Compute on ~this many sampled rows when the frame is larger (0 = exact)" },
    ParamSpec { key: "engine.task_deadline_ms", default: "0", description: "Per-task wall-clock budget in ms; over-budget tasks degrade their section (0 = unlimited)" },
    ParamSpec { key: "engine.profile", default: "false", description: "Trace every task and add a Performance tab (worker Gantt, slowest tasks) to HTML output" },
    ParamSpec { key: "engine.cache_budget_bytes", default: "268435456", description: "Byte budget for the cross-call result cache; LRU-evicted past it (0 = caching off)" },
    ParamSpec { key: "engine.memory_budget_bytes", default: "0", description: "Per-run memory budget; over-budget tasks degrade to a sampled approximation (0 = unlimited)" },
    ParamSpec { key: "engine.run_deadline_ms", default: "0", description: "Whole-run wall-clock deadline in ms; cancels in-flight work cooperatively (0 = unlimited)" },
    ParamSpec { key: "engine.task_retries", default: "0", description: "Retries for transiently-failing tasks, with exponential backoff (0 = none)" },
    ParamSpec { key: "engine.max_concurrent_runs", default: "0", description: "Max analyses running at once; queued past that, shed past a bounded queue (0 = unlimited)" },
    ParamSpec { key: "engine.metrics", default: "false", description: "Record runs into the process-lifetime telemetry registry (Prometheus/JSON exportable)" },
    ParamSpec { key: "engine.morsel_bytes", default: "262144", description: "Morsel size for intra-task work stealing; idle workers steal morsels from skewed partitions (0 = off, bit-identical whole-slice kernels)" },
    ParamSpec { key: "engine.simd", default: "true", description: "Use the lane-parallel vector kernels (AVX2 in simd-feature builds; ignored without the feature)" },
    ParamSpec { key: "engine.ingest_chunk_bytes", default: "8388608", description: "Chunk size for parallel CSV ingestion; the file parses as concurrent ~N-byte chunks with O(chunk x workers) staging memory (0 = sequential single-pass reader, bit-identical)" },
    ParamSpec { key: "engine.mmap", default: "false", description: "Memory-map input files during ingestion for zero-copy chunk access (falls back to buffered positional reads where unsupported; results identical)" },
    ParamSpec { key: "display.width", default: "450", description: "Figure width in pixels" },
    ParamSpec { key: "display.height", default: "300", description: "Figure height in pixels" },
];

/// Look up one parameter's descriptor.
pub fn describe(key: &str) -> Option<&'static ParamSpec> {
    PARAMS.iter().find(|p| p.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    #[test]
    fn every_registered_key_is_settable() {
        let mut cfg = Config::default();
        for p in PARAMS {
            // Use a valid value per type family.
            let value = if p.key.starts_with("insight.") {
                "0.5"
            } else if p.key.ends_with("share_computations")
                || p.key.ends_with("eager_finish")
                || p.key.ends_with("profile")
                || p.key.ends_with("metrics")
                || p.key.ends_with("simd")
                || p.key.ends_with("engine.mmap")
                || p.key.ends_with("violin.enabled")
                || p.key == "violin.enabled"
            {
                "true"
            } else {
                "7"
            };
            cfg.set(p.key, value)
                .unwrap_or_else(|e| panic!("{}: {e}", p.key));
        }
    }

    #[test]
    fn describe_finds_keys() {
        assert!(describe("hist.bins").is_some());
        assert_eq!(describe("hist.bins").unwrap().default, "50");
        assert!(describe("made.up").is_none());
    }

    #[test]
    fn keys_are_unique() {
        for (i, a) in PARAMS.iter().enumerate() {
            for b in &PARAMS[i + 1..] {
                assert_ne!(a.key, b.key);
            }
        }
    }
}
